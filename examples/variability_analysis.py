"""Robustness under timing variability (Section 5.2).

Every propagation delay can be perturbed with Gaussian noise by passing
``variability=...`` to ``simulate()``. This example sweeps the noise level
on the 8-input bitonic sorter and reports when the design starts to fail —
either by mis-sorting or by raising a timing violation — the dynamic
robustness evaluation described in the paper.

Run:  python examples/variability_analysis.py
"""

import repro as pylse
from repro.designs import bitonic_sorter

VALUES = [20, 70, 10, 45, 5, 90, 33, 60]
SEEDS = range(25)


def run_once(sigma: float, seed: int) -> str:
    pylse.reset_working_circuit()
    inputs = [pylse.inp_at(t, name=f"i{k}") for k, t in enumerate(VALUES)]
    bitonic_sorter(inputs, output_names=[f"o{k}" for k in range(8)])
    try:
        events = pylse.Simulation().simulate(
            variability={"stddev": sigma}, seed=seed
        )
    except pylse.SimulationError:
        return "violation"
    firsts = [events[f"o{k}"][0] for k in range(8)]
    counts_ok = all(len(events[f"o{k}"]) == 1 for k in range(8))
    return "ok" if counts_ok and firsts == sorted(firsts) else "mis-sorted"


print(f"{'sigma (ps)':>10} {'ok':>4} {'mis-sorted':>11} {'violation':>10}")
for sigma in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
    outcomes = [run_once(sigma, seed) for seed in SEEDS]
    print(
        f"{sigma:>10.2f} {outcomes.count('ok'):>4} "
        f"{outcomes.count('mis-sorted'):>11} {outcomes.count('violation'):>10}"
    )

print("\nSmall variability is absorbed by the network's slack; larger noise")
print("first breaks rank order, exactly the failure mode Section 5.2 targets.")
