"""Formal verification (Section 5.3): PyLSE -> Timed Automata -> queries.

Translates a min-max pair into a network of timed automata, exports UPPAAL
XML, auto-generates Query 1 (outputs only at simulation-observed times) and
Query 2 (timing-error locations unreachable), and decides both with the
bundled zone-graph model checker.

Run:  python examples/formal_verification.py
"""

import repro as pylse
from repro.designs import min_max
from repro.mc import verify_design
from repro.ta import save_uppaal_xml, translate_circuit

pylse.reset_working_circuit()
a = pylse.inp_at(115, 215, 315, name="A")
b = pylse.inp_at(64, 184, 304, name="B")
low, high = min_max(a, b)
low.observe("low")
high.observe("high")

report = verify_design(time_limit=300)

print("simulated events:", {k: v for k, v in report.events.items()
                            if k in ("low", "high")})
print("\nQuery 1 (TCTL):")
print(report.query1.to_tctl())
print("\nQuery 2 (TCTL):")
q2 = report.query2.to_tctl()
print(q2[:200] + (" ..." if len(q2) > 200 else ""))
print("\nmodel checking:", report.summary())
assert report.ok, report.result.violations

# The same network as a UPPAAL 4.x XML artifact, loadable by verifyta.
translation = translate_circuit(pylse.working_circuit())
save_uppaal_xml(
    translation.network,
    "min_max.xml",
    queries=[report.query1.to_tctl(), report.query2.to_tctl()],
)
print("\nwrote min_max.xml for UPPAAL")
