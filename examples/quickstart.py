"""Quickstart: the paper's Figure 12, end to end.

Builds a Synchronous And Element, drives it with the published stimulus,
verifies the output pulse times, and prints the waveform.

Run:  python examples/quickstart.py
"""

import repro as pylse

# Two data inputs and a periodic clock (times in picoseconds).
a = pylse.inp_at(125, 175, 225, 275, name="A")
b = pylse.inp_at(75, 185, 225, 265, name="B")
clk = pylse.inp(start=50, period=50, n=6, name="CLK")

# The AND fires q a firing-delay (9.2 ps) after a clock pulse that closes a
# period in which both A and B pulsed.
out = pylse.and_s(a, b, clk, name="Q")

sim = pylse.Simulation()
events = sim.simulate()

# Line 8 of Figure 12a: exact output times.
assert events["Q"] == [209.2, 259.2, 309.2], events["Q"]
print("Q pulses at:", events["Q"])
sim.plot()

# Timing checks are always on: shifting B's first pulse to 99 ps violates
# the AND's 2.8 ps setup time (Figure 13).
pylse.reset_working_circuit()
a = pylse.inp_at(125, 175, 225, 275, name="A")
b = pylse.inp_at(99, 185, 225, 265, name="B")
clk = pylse.inp(start=50, period=50, n=6, name="CLK")
out = pylse.and_s(a, b, clk, name="Q")
try:
    pylse.Simulation().simulate()
except pylse.PriorInputViolation as err:
    print("\nCaught the Figure 13 setup violation:")
    print(err)
