"""Race-logic toolkit: temporal encoding, min/max trees, winner-take-all,
and energy accounting.

Race logic encodes values as pulse arrival times; the toolkit in
``repro.temporal`` builds on the paper's cells (Inverted C = MIN,
C = MAX, JTL = +constant, INH = inhibit). This example computes the min,
max, and argmin of a value vector entirely in the temporal domain, then
prints the estimated switching energy of the run.

Run:  python examples/race_logic_toolkit.py
"""

import repro as pylse
from repro.core.energy import energy_report
from repro.sfq import C
from repro.temporal import TemporalCode, max_n, min_n, tree_latency, winner_take_all

VALUES = [6.0, 2.0, 9.0, 4.0]
code = TemporalCode(offset=10.0, unit=5.0)

# --- MIN --------------------------------------------------------------------
pylse.reset_working_circuit()
min_n(code.encode_inputs(VALUES), name="MIN")
events = pylse.Simulation().simulate()
decoded_min = code.from_time(events["MIN"][0], tree_latency(len(VALUES)))
print(f"min{tuple(VALUES)} = {decoded_min}")
assert decoded_min == min(VALUES)

# --- MAX --------------------------------------------------------------------
pylse.reset_working_circuit()
max_n(code.encode_inputs(VALUES), name="MAX")
events = pylse.Simulation().simulate()
decoded_max = code.from_time(events["MAX"][0], tree_latency(len(VALUES), C))
print(f"max{tuple(VALUES)} = {decoded_max}")
assert decoded_max == max(VALUES)

# --- ARGMIN (winner-take-all) ------------------------------------------------
pylse.reset_working_circuit()
labels = [f"w{k}" for k in range(len(VALUES))]
winner_take_all(code.encode_inputs(VALUES), names=labels)
sim = pylse.Simulation()
events = sim.simulate()
winners = [k for k, label in enumerate(labels) if events[label]]
print(f"argmin{tuple(VALUES)} = {winners}")
assert winners == [VALUES.index(min(VALUES))]

# --- energy ------------------------------------------------------------------
report = energy_report(sim)
print(f"\nswitching energy of the winner-take-all run: "
      f"{report.total_attojoules:.2f} aJ over {len(report.cells)} cells")
print("hottest cells:")
for cell in sorted(report.cells, key=lambda c: -c.energy_joules)[:3]:
    print(f"  {cell.node} ({cell.cell}): {cell.energy_attojoules:.2f} aJ")
