"""A clock-free 4-bit dual-rail (xSFQ-style) ripple-carry adder.

Demonstrates the asynchronous alternative to RSFQ: every bit travels as a
pulse on its true or false rail, logic is built from 2x2 Joins and mergers
(no clock network anywhere), and correctness follows from dual-rail
completion rather than clock windows. Verifies 4-bit addition against
Python's ``+`` across a sample of operand pairs, then reports the design's
size, path balance, and switching energy.

Run:  python examples/dual_rail_adder.py
"""

import repro as pylse
from repro.core.energy import energy_report
from repro.designs import xsfq_ripple_adder

BITS = 4


def rail(bit: int, name: str, at: float = 10.0):
    true = pylse.inp_at(*([at] if bit else []), name=f"{name}_t")
    false = pylse.inp_at(*([] if bit else [at]), name=f"{name}_f")
    return (true, false)


def add(a_val: int, b_val: int):
    """One addition on a freshly elaborated adder; returns (sum, sim)."""
    pylse.reset_working_circuit()
    a_bits = [rail((a_val >> k) & 1, f"a{k}") for k in range(BITS)]
    b_bits = [rail((b_val >> k) & 1, f"b{k}") for k in range(BITS)]
    sums, carry = xsfq_ripple_adder(a_bits, b_bits, rail(0, "cin"))
    for k, (true, false) in enumerate(sums):
        true.observe(f"s{k}_t")
        false.observe(f"s{k}_f")
    carry[0].observe("cout_t")
    carry[1].observe("cout_f")

    sim = pylse.Simulation()
    events = sim.simulate()
    total = sum((1 << k) * len(events[f"s{k}_t"]) for k in range(BITS))
    total += (1 << BITS) * len(events["cout_t"])
    # Dual-rail completion: exactly one rail fired per output signal.
    for k in range(BITS):
        assert len(events[f"s{k}_t"]) + len(events[f"s{k}_f"]) == 1
    assert len(events["cout_t"]) + len(events["cout_f"]) == 1
    return total, sim


PAIRS = [(0, 0), (1, 1), (5, 10), (15, 15), (7, 9), (12, 3), (15, 1), (8, 8)]
for a_val, b_val in PAIRS:
    total, sim = add(a_val, b_val)
    print(f"  {a_val:2} + {b_val:2} = {total:2}", end="")
    assert total == a_val + b_val, (a_val, b_val, total)
    print("  ok")

cells = pylse.working_circuit().cells()
report = energy_report(sim)
print(f"\n{BITS}-bit adder: {len(cells)} cells, {pylse.total_jjs()} JJs, "
      f"no clock; last run used {report.total_attojoules:.1f} aJ")
