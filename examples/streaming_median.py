"""A streaming median filter on a re-armed bitonic sorter.

Because the C and Inverted C elements return to idle after every pair of
pulses, the sorting network is *re-usable*: successive value vectors can be
streamed through the same hardware, one per window period, with no clocks
or resets. This example median-filters a noisy signal by sliding 4-sample
windows through a single bitonic-4 sorter and reading the second-ranked
output (lower median).

Run:  python examples/streaming_median.py
"""

import repro as pylse
from repro.designs import bitonic_delay, bitonic_sorter
from repro.temporal import TemporalCode

SIGNAL = [12, 11, 13, 12, 48, 12, 13, 11, 12, 13]   # one impulse-noise spike
WINDOW = 4
PERIOD = 400.0               # ps between windows: lets every cell re-arm
code = TemporalCode(offset=10.0, unit=5.0)

windows = [SIGNAL[i:i + WINDOW] for i in range(len(SIGNAL) - WINDOW + 1)]

pylse.reset_working_circuit()
inputs = []
for lane in range(WINDOW):
    times = [
        code.to_time(window[lane]) + PERIOD * w
        for w, window in enumerate(windows)
    ]
    inputs.append(pylse.inp_at(*times, name=f"i{lane}"))
bitonic_sorter(inputs, output_names=[f"o{k}" for k in range(WINDOW)])

events = pylse.Simulation().simulate()
latency = bitonic_delay(WINDOW)

filtered = []
for w, window in enumerate(windows):
    # o1 is the second-smallest arrival: the lower median of the window.
    pulse = events["o1"][w]
    value = code.from_time(pulse - PERIOD * w, latency)
    filtered.append(value)
    assert value == sorted(window)[1], (window, value)

print("signal:  ", SIGNAL)
print("medians: ", [f"{v:g}" for v in filtered])
spike_windows = [w for w in windows if 48 in w]
assert all(sorted(w)[1] != 48 for w in spike_windows)
print(f"\nthe 48 ps noise spike never reaches the median output;")
print(f"{len(windows)} windows streamed through one {WINDOW}-input sorter "
      f"({len(pylse.working_circuit().cells())} cells, re-armed each window)")
