"""Temporal sorting: min-max pairs and the 8-input bitonic sorter.

In temporal (race) logic a value is encoded as a pulse's arrival time. A
min-max pair (Figure 11) is a comparator: its "low" output pulses at the
earlier arrival + 25 ps and its "high" output at the later arrival + 25 ps.
Twenty-four of them form the 8-input bitonic sorting network of Figure 15.

Run:  python examples/temporal_sorting.py
"""

import random

import repro as pylse
from repro.designs import bitonic_delay, bitonic_sorter, min_max

# --- a single comparator --------------------------------------------------
a = pylse.inp_at(115, name="A")
b = pylse.inp_at(64, name="B")
low, high = min_max(a, b)
low.observe("low")
high.observe("high")
events = pylse.Simulation().simulate()
print("comparator:", events["low"], events["high"])
assert events["low"] == [64 + 25] and events["high"] == [115 + 25]

# --- the full sorter --------------------------------------------------------
pylse.reset_working_circuit()
values = random.Random(7).sample(range(5, 95), 8)
print("\nsorting arrival times:", values)
inputs = [pylse.inp_at(t, name=f"i{k}") for k, t in enumerate(values)]
bitonic_sorter(inputs, output_names=[f"o{k}" for k in range(8)])

sim = pylse.Simulation()
events = sim.simulate()
ranked = [events[f"o{k}"][0] for k in range(8)]
print("output times:        ", [round(t, 1) for t in ranked])
assert ranked == sorted(ranked), "outputs must appear in rank order"
assert abs(ranked[0] - (min(values) + bitonic_delay(8))) < 1e-9
print(f"rank order verified; network delay = {bitonic_delay(8)} ps")
sim.plot()
