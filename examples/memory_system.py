"""Mixing abstraction levels: a memory hole driving transition-level cells.

The Hole Description level (Figure 9) wraps plain Python in a pulse
interface so unfinished blocks can be modeled abstractly while the rest of
the design stays at the pulse-transfer level. Here the 16x2 memory hole's
read port feeds real DRO cells, demonstrating holes and cells interoperate.

Run:  python examples/memory_system.py
"""

import repro as pylse
from repro.designs import make_memory

pylse.reset_working_circuit()
memory = make_memory()


def address_bits(prefix: str, address: int, at: float):
    """Four input wires encoding ``address``, pulsing at time ``at``."""
    return [
        pylse.inp_at(*([at] if (address >> k) & 1 else []), name=f"{prefix}{k}")
        for k in reversed(range(4))
    ]


# Period 1 (clk @ 25): write 0b11 to address 9.
# Period 2 (clk @ 75): read address 9 -> both bits pulse.
# Period 3 (clk @ 125): read address 0 (never written) -> no pulses.
ra = address_bits("ra", 9, at=60.0)
wa = address_bits("wa", 9, at=10.0)
d1 = pylse.inp_at(10.0, name="d1")
d0 = pylse.inp_at(10.0, name="d0")
we = pylse.inp_at(10.0, name="we")
clk = pylse.inp(start=25.0, period=50.0, n=3, name="clk")

q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
pylse.inspect(q1, "q1")
pylse.inspect(q0, "q0")

# Latch the read bits into real transition-level DRO cells, read out by a
# later readout strobe: holes and PyLSE Machines share one circuit.
readout = pylse.inp(start=100.0, period=50.0, n=2, name="readout")
r1, r0 = pylse.split(readout)
bit1 = pylse.dro(q1, r1, name="bit1")
bit0 = pylse.dro(q0, r0, name="bit0")

sim = pylse.Simulation()
events = sim.simulate()

print("memory outputs: q1 =", events["q1"], " q0 =", events["q0"])
print("DRO readouts:   bit1 =", events["bit1"], " bit0 =", events["bit0"])
assert len(events["q1"]) == 1 and len(events["q0"]) == 1
assert len(events["bit1"]) == 1 and len(events["bit0"]) == 1
sim.plot()
