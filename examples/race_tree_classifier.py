"""A race-logic decision-tree classifier (Section 5.2's race tree).

Feature values are encoded as pulse delays; each decision node is a DRO_C
read out by a threshold pulse; leaves AND the path decisions with C
elements. Exactly one of the four labels fires per evaluation.

Run:  python examples/race_tree_classifier.py
"""

import repro as pylse
from repro.designs import expected_label, race_tree, race_tree_inputs

SAMPLES = [(3.0, 4.0), (3.0, 15.0), (14.0, 2.0), (16.0, 17.0), (0.0, 19.0)]

for x1, x2 in SAMPLES:
    pylse.reset_working_circuit()
    times = race_tree_inputs(x1, x2)
    wires = {name: pylse.inp_at(t, name=name) for name, t in times.items()}
    leaves = race_tree(
        wires["x1"], wires["t1"], wires["x2a"], wires["t2"],
        wires["x2b"], wires["t3"],
    )
    for leaf, label in zip(leaves, "abcd"):
        leaf.observe(label)

    events = pylse.Simulation().simulate()
    winners = [label for label in "abcd" if events[label]]
    fired = sum(len(events[label]) for label in "abcd")
    assert fired == 1, f"expected one winner, got {fired}"
    assert winners == [expected_label(x1, x2)]
    print(f"features ({x1:4}, {x2:4}) -> label {winners[0]!r} "
          f"at {events[winners[0]][0]:.1f} ps")

print("\nall evaluations produced exactly one (correct) label")
