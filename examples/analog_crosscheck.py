"""Cross-checking abstraction levels: PyLSE vs junction-level simulation.

Runs the min-max pair at both levels (Section 5.1 / Figure 16): the
pulse-transfer simulation completes in microseconds; the RCSJ transient
simulation integrates hundreds of thousands of time steps. Functional
behavior must agree; absolute delays differ — the composability discrepancy
the paper discusses (their circuit min-max is 22 ps vs the 25 ps
compositional model; ours shows the same effect).

Run:  python examples/analog_crosscheck.py
"""

import time

import repro as pylse
from repro.analog import min_max_netlist, pulse_map, simulate as analog_simulate
from repro.designs import min_max

A_TIMES, B_TIMES = [115, 215, 315], [64, 184, 304]

# --- pulse-transfer level ---------------------------------------------------
pylse.reset_working_circuit()
a = pylse.inp_at(*A_TIMES, name="A")
b = pylse.inp_at(*B_TIMES, name="B")
low, high = min_max(a, b)
low.observe("low")
high.observe("high")
start = time.perf_counter()
events = pylse.Simulation().simulate()
pylse_seconds = time.perf_counter() - start

# --- junction level ---------------------------------------------------------
netlist = min_max_netlist(A_TIMES, B_TIMES)
start = time.perf_counter()
analog = pulse_map(analog_simulate(netlist, 420.0))
analog_seconds = time.perf_counter() - start

print(f"PyLSE   ({pylse_seconds * 1e3:8.3f} ms): low={events['low']} "
      f"high={events['high']}")
print(f"analog  ({analog_seconds * 1e3:8.1f} ms, {netlist.n_junctions} JJs): "
      f"low={analog['low']} high={analog['high']}")

for name in ("low", "high"):
    assert len(events[name]) == len(analog[name]), name
pylse_delay = events["low"][0] - min(A_TIMES[0], B_TIMES[0])
analog_delay = analog["low"][0] - min(A_TIMES[0], B_TIMES[0])
print(f"\nmin-path delay: {pylse_delay:.1f} ps compositional vs "
      f"{analog_delay:.1f} ps at circuit level")
print(f"speedup from abstraction: {analog_seconds / pylse_seconds:.0f}x")
