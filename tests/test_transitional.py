"""Tests for the Cell Definition level: dict parsing and well-formedness."""

import pytest

from repro.core.errors import WellFormednessError
from repro.core.transitional import Transitional, parse_transitions
from repro.sfq import AND, SFQ


class Toggle(Transitional):
    name = "TOGGLE"
    inputs = ["a"]
    outputs = ["q"]
    firing_delay = 3.0
    transitions = [
        {"src": "idle", "trigger": "a", "dst": "set"},
        {"src": "set", "trigger": "a", "dst": "idle", "firing": "q"},
    ]


class TestParsing:
    def test_trigger_list_expands(self):
        parsed = parse_transitions(
            "X", ["q"],
            [
                {"src": "idle", "trigger": ["a", "b"], "dst": "idle",
                 "firing": {"q": 1.0}},
            ],
        )
        assert [(t.trigger, t.id) for t in parsed] == [("a", 0), ("b", 1)]
        assert all(t.priority == 0 for t in parsed)  # same raw index

    def test_priority_defaults_to_listing_order(self):
        parsed = parse_transitions(
            "X", ["q"],
            [
                {"src": "idle", "trigger": "a", "dst": "x", "firing": {"q": 1}},
                {"src": "idle", "trigger": "b", "dst": "y"},
            ],
        )
        assert parsed[0].priority == 0
        assert parsed[1].priority == 1

    def test_explicit_priority_wins(self):
        parsed = parse_transitions(
            "X", ["q"],
            [{"src": "i", "trigger": "a", "dst": "i", "priority": 7,
              "firing": {"q": 1}}],
        )
        assert parsed[0].priority == 7

    def test_firing_string_uses_default_delay(self):
        parsed = parse_transitions(
            "X", ["q"],
            [{"src": "i", "trigger": "a", "dst": "i", "firing": "q"}],
            firing_delay=4.5,
        )
        assert parsed[0].firing == {"q": 4.5}

    def test_firing_list_uses_default_delay(self):
        parsed = parse_transitions(
            "X", ["l", "r"],
            [{"src": "i", "trigger": "a", "dst": "i", "firing": ["l", "r"]}],
            firing_delay=2.0,
        )
        assert parsed[0].firing == {"l": 2.0, "r": 2.0}

    def test_firing_dict_gives_explicit_delays(self):
        parsed = parse_transitions(
            "X", ["q"],
            [{"src": "i", "trigger": "a", "dst": "i", "firing": {"q": 9.9}}],
        )
        assert parsed[0].firing == {"q": 9.9}

    def test_per_output_delay_dict(self):
        parsed = parse_transitions(
            "X", ["l", "r"],
            [{"src": "i", "trigger": "a", "dst": "i", "firing": ["l", "r"]}],
            firing_delay={"l": 1.0, "r": 2.0},
        )
        assert parsed[0].firing == {"l": 1.0, "r": 2.0}

    def test_scalar_past_constraint_becomes_wildcard(self):
        parsed = parse_transitions(
            "X", ["q"],
            [{"src": "i", "trigger": "a", "dst": "i", "firing": {"q": 1},
              "past_constraints": 2.8}],
        )
        assert parsed[0].past_constraints == {"*": 2.8}

    def test_transition_time_override_by_src_trigger(self):
        parsed = parse_transitions(
            "X", ["q"],
            [{"src": "i", "trigger": "a", "dst": "i",
              "transition_time": 1.0, "firing": {"q": 1}}],
            transition_time_overrides={("i", "a"): 7.0},
        )
        assert parsed[0].transition_time == 7.0

    def test_unrecognized_field_rejected(self):
        with pytest.raises(WellFormednessError, match="unrecognized field"):
            parse_transitions(
                "X", ["q"],
                [{"src": "i", "trigger": "a", "dst": "i", "bogus": 1}],
            )

    def test_missing_trigger_rejected(self):
        with pytest.raises(WellFormednessError, match="missing its 'trigger'"):
            parse_transitions("X", ["q"], [{"src": "i", "dst": "i"}])

    def test_firing_without_delay_source_rejected(self):
        with pytest.raises(WellFormednessError, match="no 'firing_delay'"):
            parse_transitions(
                "X", ["q"],
                [{"src": "i", "trigger": "a", "dst": "i", "firing": "q"}],
            )

    def test_delay_dict_missing_output_rejected(self):
        with pytest.raises(WellFormednessError, match="no entry for output"):
            parse_transitions(
                "X", ["l", "r"],
                [{"src": "i", "trigger": "a", "dst": "i", "firing": ["l", "r"]}],
                firing_delay={"l": 1.0},
            )

    def test_bad_priority_rejected(self):
        with pytest.raises(WellFormednessError, match="priority"):
            parse_transitions(
                "X", ["q"],
                [{"src": "i", "trigger": "a", "dst": "i", "priority": -1,
                  "firing": {"q": 1}}],
            )

    def test_empty_trigger_list_rejected(self):
        with pytest.raises(WellFormednessError, match="empty trigger"):
            parse_transitions(
                "X", ["q"], [{"src": "i", "trigger": [], "dst": "i"}]
            )


class TestTransitionalClass:
    def test_machine_shared_across_instances(self):
        assert Toggle().machine is Toggle().machine

    def test_instance_override_builds_private_machine(self):
        fast = Toggle(firing_delay=1.0)
        assert fast.machine is not Toggle().machine
        transition = fast.machine.delta("set", "a")
        assert transition.firing == {"q": 1.0}

    def test_handle_inputs_mutates_state(self):
        cell = Toggle()
        assert cell.state == "idle"
        assert cell.handle_inputs(["a"], 1.0) == []
        assert cell.state == "set"
        assert cell.handle_inputs(["a"], 2.0) == [("q", 3.0)]
        assert cell.state == "idle"

    def test_reset_restores_initial_configuration(self):
        cell = Toggle()
        cell.handle_inputs(["a"], 1.0)
        cell.reset()
        assert cell.state == "idle"

    def test_missing_class_attribute_rejected(self):
        class Broken(Transitional):
            name = "B"
            inputs = ["a"]
            outputs = ["q"]
            # no transitions

        with pytest.raises(WellFormednessError, match="transitions"):
            Broken()

    def test_unknown_init_option_rejected(self):
        with pytest.raises(WellFormednessError, match="unknown instantiation"):
            Toggle(bogus=3)

    def test_transition_time_override_applies(self):
        slow = Toggle(transition_time={("idle", "a"): 9.0})
        assert slow.machine.delta("idle", "a").transition_time == 9.0


class TestSFQ:
    def test_and_matches_figure8(self):
        cell = AND()
        machine = cell.machine
        assert machine.inputs == ("a", "b", "clk")
        assert machine.outputs == ("q",)
        assert len(machine.states) == 4
        assert len(machine.transitions) == 12
        assert AND.dsl_size() == 11
        assert cell.jjs == 11
        assert AND.firing_delay == 9.2

    def test_figure13_transition_id_is_seven(self):
        """The b_arr --clk--> idle edge must be transition 7 (Figure 13)."""
        transition = AND().machine.delta("b_arr", "clk")
        assert transition.id == 7

    def test_jjs_override(self):
        assert AND(jjs=15).jjs == 15

    def test_bad_jjs_override_rejected(self):
        with pytest.raises(WellFormednessError, match="jjs"):
            AND(jjs=-2)

    def test_bool_jjs_override_rejected(self):
        # bool is an int subclass: AND(jjs=True) would silently become
        # jjs=1 and corrupt every area/energy metric downstream.
        with pytest.raises(WellFormednessError, match="jjs"):
            AND(jjs=True)
        with pytest.raises(WellFormednessError, match="jjs"):
            AND(jjs=False)

    def test_sfq_requires_jjs(self):
        class NoJJ(SFQ):
            name = "NOJJ"
            inputs = ["a"]
            outputs = ["q"]
            firing_delay = 1.0
            transitions = [
                {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
            ]

        with pytest.raises(WellFormednessError, match="jjs"):
            NoJJ()

    def test_sfq_requires_firing_delay(self):
        class NoDelay(SFQ):
            name = "NOD"
            inputs = ["a"]
            outputs = ["q"]
            jjs = 2
            transitions = [
                {"src": "idle", "trigger": "a", "dst": "idle",
                 "firing": {"q": 1.0}},
            ]

        with pytest.raises(WellFormednessError, match="firing_delay"):
            NoDelay()
