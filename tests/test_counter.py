"""Tests for the T1-based binary counter design."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs.counter import binary_counter, divider_chain


def read_count(n_pulses: int, bits: int, period: float = 25.0) -> int:
    with fresh_circuit() as circuit:
        times = [10.0 + period * k for k in range(n_pulses)]
        a = inp_at(*times, name="a")
        strobe_at = 10.0 + period * n_pulses + 100.0
        clk = inp_at(strobe_at, name="clk")
        for k, wire in enumerate(binary_counter(a, clk, bits=bits)):
            wire.observe(f"bit{k}")
    events = Simulation(circuit).simulate()
    return sum((1 << k) * len(events[f"bit{k}"]) for k in range(bits))


class TestDividerChain:
    def test_divide_by_powers_of_two(self):
        with fresh_circuit() as circuit:
            a = inp(start=10, period=20, n=16, name="a")
            for k, wire in enumerate(divider_chain(a, 3)):
                wire.observe(f"d{k}")
        events = Simulation(circuit).simulate()
        assert [len(events[f"d{k}"]) for k in range(3)] == [8, 4, 2]

    def test_needs_a_stage(self):
        with fresh_circuit():
            a = inp_at(10.0, name="a")
            with pytest.raises(PylseError):
                divider_chain(a, 0)


class TestBinaryCounter:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_three_bit_counts(self, n):
        assert read_count(n, bits=3) == n

    def test_wraps_modulo_2_pow_bits(self):
        assert read_count(9, bits=3) == 1      # 9 mod 8

    def test_single_bit(self):
        assert read_count(1, bits=1) == 1
        assert read_count(2, bits=1) == 0

    def test_zero_bits_rejected(self):
        with fresh_circuit():
            a = inp_at(10.0, name="a")
            clk = inp_at(100.0, name="clk")
            with pytest.raises(PylseError):
                binary_counter(a, clk, bits=0)

    @given(n=st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_four_bit_counts_property(self, n):
        assert read_count(n, bits=4) == n
