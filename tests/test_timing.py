"""Tests for delay distributions and the variability machinery."""

import random

import pytest

from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.core.timing import (
    Normal,
    Uniform,
    VariabilitySpec,
    nominal_delay,
    sample_delay,
)
from repro.sfq import jtl


class TestDistributions:
    def test_normal_nominal_is_mean(self):
        assert Normal(9.2, 0.5).nominal() == 9.2

    def test_normal_sampling_varies(self):
        rng = random.Random(0)
        dist = Normal(10.0, 1.0)
        samples = {dist.sample(rng) for _ in range(10)}
        assert len(samples) > 1
        assert all(s >= 0 for s in samples)

    def test_normal_truncates_at_zero(self):
        rng = random.Random(0)
        dist = Normal(0.1, 100.0)
        assert all(dist.sample(rng) >= 0 for _ in range(50))

    def test_normal_rejects_negative_params(self):
        with pytest.raises(PylseError):
            Normal(-1.0, 1.0)
        with pytest.raises(PylseError):
            Normal(1.0, -1.0)

    def test_uniform_mean_and_bounds(self):
        dist = Uniform(2.0, 4.0)
        assert dist.mean == 3.0
        rng = random.Random(1)
        assert all(2.0 <= dist.sample(rng) <= 4.0 for _ in range(50))

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(PylseError):
            Uniform(4.0, 2.0)

    def test_nominal_delay_validates(self):
        assert nominal_delay(5) == 5.0
        with pytest.raises(PylseError):
            nominal_delay(-1.0)
        with pytest.raises(PylseError):
            nominal_delay(float("nan"))
        with pytest.raises(PylseError):
            nominal_delay(float("inf"))

    def test_sample_delay_passes_scalars_through(self):
        assert sample_delay(3.0, random.Random(0)) == 3.0


class TestVariabilitySpec:
    def test_false_is_disabled(self):
        spec = VariabilitySpec.normalize(False)
        assert not spec.enabled
        assert not spec.applies_to("JTL", "jtl0")

    def test_true_applies_everywhere(self):
        spec = VariabilitySpec.normalize(True, seed=1)
        assert spec.applies_to("JTL", "jtl0")
        assert spec.applies_to("AND", "and3")

    def test_dict_cell_types_filter(self):
        spec = VariabilitySpec.normalize({"cell_types": ["JTL"]}, seed=1)
        assert spec.applies_to("JTL", "jtl0")
        assert not spec.applies_to("AND", "and0")

    def test_dict_instances_filter(self):
        spec = VariabilitySpec.normalize({"instances": ["jtl1"]}, seed=1)
        assert spec.applies_to("JTL", "jtl1")
        assert not spec.applies_to("JTL", "jtl0")

    def test_unknown_key_rejected(self):
        with pytest.raises(PylseError, match="Unknown variability"):
            VariabilitySpec.normalize({"bogus": 1})

    def test_bad_type_rejected(self):
        with pytest.raises(PylseError):
            VariabilitySpec.normalize(42)  # type: ignore[arg-type]

    def test_callable_used_directly(self):
        spec = VariabilitySpec.normalize(lambda d, node: d + 1.0)
        assert spec.perturb(4.0, None) == 5.0

    def test_perturb_never_negative(self):
        spec = VariabilitySpec.normalize(lambda d, node: -10.0)
        assert spec.perturb(4.0, None) == 0.0

    def test_stddev_controls_spread(self):
        spec = VariabilitySpec.normalize({"stddev": 0.0}, seed=1)
        assert spec.perturb(4.0, None) == 4.0


class TestSimulationVariability:
    def test_deterministic_without_variability(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        assert Simulation().simulate() == Simulation().simulate()

    def test_variability_perturbs_delays(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        events = Simulation().simulate(variability=True, seed=3)
        assert events["Q"] != [15.0]
        assert 10.0 < events["Q"][0] < 20.0

    def test_seed_makes_variability_reproducible(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        sim = Simulation()
        first = sim.simulate(variability=True, seed=42)
        second = sim.simulate(variability=True, seed=42)
        assert first == second

    def test_cell_type_scoped_variability(self):
        a = inp_at(10.0, name="A")
        q = jtl(a)
        jtl(q, name="Q")
        events = Simulation().simulate(
            variability={"cell_types": ["AND"]}, seed=1
        )
        assert events["Q"] == [20.0]     # JTLs untouched

    def test_custom_function_variability(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        events = Simulation().simulate(
            variability=lambda delay, node: delay * 2, seed=1
        )
        assert events["Q"] == [20.0]     # 10 + 5*2

    def test_distribution_delay_samples_even_without_variability(self):
        a = inp_at(10.0, name="A")
        jtl(a, firing_delay=Normal(5.0, 1.0), name="Q")
        events = Simulation().simulate(seed=5)
        assert events["Q"] != [15.0]

    def test_distribution_delay_nominal_in_machine(self):
        a = inp_at(10.0, name="A")
        jtl(a, firing_delay=Normal(5.0, 0.0), name="Q")
        events = Simulation().simulate(seed=5)
        assert events["Q"] == [15.0]
