"""Disk-tier failure modes and store maintenance (:mod:`repro.cache.disk`).

The persistent tier's contract is "never worse than no cache": corrupt,
truncated, or foreign files are misses that get quarantined (and never
crash a consumer), concurrent same-key writers race harmlessly through
the atomic temp-file + rename protocol, and ``gc()`` bounds the store by
evicting least-recently-accessed entries first. The store-level helpers
(`store_stats`/`gc_store`/`clear_store`) power ``python -m repro cache``.
"""

import json
import multiprocessing
import os

import pytest

from repro.cache import (
    DiskCache,
    MISSING,
    STORE_FORMAT,
    TieredCache,
    LRUCache,
    canonical_key,
    clear_store,
    gc_store,
    key_digest,
    store_stats,
)
from repro.cache.cli import parse_size
from repro.core.errors import PylseError

KEY = ("repro-ir-v1", "a" * 64, 0.5, 25, 0, "auto")
VALUE = {"yield": 0.8, "runs": 25, "failures": {"3": "timing"}}


# -- round trip and addressing -----------------------------------------
def test_put_get_round_trip(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get(KEY) is MISSING
    cache.put(KEY, VALUE)
    assert cache.get(KEY) == VALUE
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["writes"] == 1


def test_entries_survive_a_fresh_instance(tmp_path):
    DiskCache(tmp_path).put(KEY, VALUE)
    assert DiskCache(tmp_path).get(KEY) == VALUE


def test_canonical_key_tuples_and_lists_address_the_same_entry(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, VALUE)
    assert cache.get(list(KEY)) == VALUE
    assert canonical_key(KEY) == canonical_key(list(KEY))
    assert key_digest(KEY) == key_digest(list(KEY))


def test_unjsonable_key_raises(tmp_path):
    cache = DiskCache(tmp_path)
    with pytest.raises(PylseError, match="JSON-representable"):
        cache.put((object(),), VALUE)


def test_unjsonable_value_raises(tmp_path):
    cache = DiskCache(tmp_path)
    with pytest.raises(PylseError, match="JSON-representable"):
        cache.put(KEY, {"bad": object()})


def test_invalid_namespace_rejected(tmp_path):
    with pytest.raises(PylseError, match="namespace"):
        DiskCache(tmp_path, namespace="../escape")
    with pytest.raises(PylseError, match="namespace"):
        DiskCache(tmp_path, namespace="")


def test_invalid_max_bytes_rejected(tmp_path):
    with pytest.raises(PylseError, match="max_bytes"):
        DiskCache(tmp_path, max_bytes=-1)
    with pytest.raises(PylseError, match="max_bytes"):
        DiskCache(tmp_path, max_bytes=True)


# -- corruption: always a miss, always quarantined, never a crash ------
@pytest.mark.parametrize(
    "payload",
    [
        "",                                 # empty file
        "{\"format\": \"repro-cache",       # truncated JSON
        "not json at all \x00\x01",         # garbage
        "[1, 2, 3]",                        # valid JSON, wrong shape
        json.dumps({"format": "other-v9", "key": list(KEY), "value": 1}),
    ],
    ids=["empty", "truncated", "garbage", "wrong-shape", "wrong-format"],
)
def test_corrupt_entry_is_quarantined_miss(tmp_path, payload):
    cache = DiskCache(tmp_path)
    cache.put(KEY, VALUE)
    cache.path_for(KEY).write_text(payload)
    assert cache.get(KEY) is MISSING
    assert cache.stats()["quarantined"] == 1
    # The bad file moved out of the namespace: a re-read is a plain miss,
    # not a second parse of the same corruption.
    assert not cache.path_for(KEY).exists()
    assert cache.get(KEY) is MISSING
    assert cache.stats()["quarantined"] == 1
    assert store_stats(tmp_path)["quarantined"] == 1


def test_key_mismatch_is_quarantined(tmp_path):
    """A file stored under the wrong address can never be served."""
    cache = DiskCache(tmp_path)
    other_key = ("repro-ir-v1", "b" * 64, 1.0, 10, 0, "auto")
    cache.put(other_key, VALUE)
    path = cache.path_for(KEY)
    path.parent.mkdir(parents=True, exist_ok=True)
    os.replace(cache.path_for(other_key), path)
    assert cache.get(KEY) is MISSING
    assert cache.stats()["quarantined"] == 1


def test_quarantine_after_reinstall_serves_again(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, VALUE)
    cache.path_for(KEY).write_text("{")
    assert cache.get(KEY) is MISSING
    cache.put(KEY, VALUE)  # recompute-and-rewrite path
    assert cache.get(KEY) == VALUE


# -- concurrent writers ------------------------------------------------
def _writer(root, start, results):
    cache = DiskCache(root)
    start.wait()
    for i in range(20):
        cache.put(KEY, VALUE)
    results.put(cache.stats()["write_errors"])


def test_concurrent_same_key_writers_never_corrupt(tmp_path):
    """N processes hammering one key leave exactly one valid document."""
    ctx = multiprocessing.get_context("spawn")
    start = ctx.Event()
    results = ctx.Queue()
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), start, results))
        for _ in range(4)
    ]
    for p in procs:
        p.start()
    start.set()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert sum(results.get() for _ in procs) == 0  # no write errors
    reader = DiskCache(tmp_path)
    assert reader.get(KEY) == VALUE
    assert reader.stats() == dict(reader.stats(), entries=1, quarantined=0)
    # No temp-file litter from the racing installs.
    leftovers = [
        p for p in tmp_path.rglob(".tmp-*") if p.is_file()
    ]
    assert leftovers == []


# -- gc: size bound, MRU survival --------------------------------------
def test_gc_respects_bound_and_keeps_mru(tmp_path):
    cache = DiskCache(tmp_path)
    keys = [("k", i) for i in range(10)]
    for i, key in enumerate(keys):
        cache.put(key, {"i": i, "pad": "x" * 50})
        # Strictly increasing access clock, robust to coarse mtime ticks.
        os.utime(cache.path_for(key), (i, i))
    entry_size = cache.path_for(keys[0]).stat().st_size
    # Touch the two *oldest* entries so recency, not insertion order,
    # decides survival.
    now = len(keys) + 10
    os.utime(cache.path_for(keys[0]), (now, now))
    os.utime(cache.path_for(keys[1]), (now + 1, now + 1))
    bound = entry_size * 4
    summary = cache.gc(max_bytes=bound)
    assert summary["kept_bytes"] <= bound
    assert summary["removed_entries"] == 6
    assert cache.get(keys[0]) is not MISSING
    assert cache.get(keys[1]) is not MISSING
    assert cache.get(keys[2]) is MISSING  # oldest un-touched: evicted


def test_gc_noop_under_bound(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, VALUE)
    summary = cache.gc(max_bytes=10**9)
    assert summary["removed_entries"] == 0
    assert cache.get(KEY) == VALUE


def test_opportunistic_gc_keeps_store_bounded(tmp_path):
    from repro.cache.disk import GC_EVERY_WRITES

    entry_bytes = 220  # generous upper bound for one small entry
    cache = DiskCache(tmp_path, max_bytes=entry_bytes * 4)
    # The opportunistic gc fires on every GC_EVERY_WRITES-th write, so
    # after exactly that many writes the store is back under its bound.
    for i in range(GC_EVERY_WRITES):
        cache.put(("k", i), {"i": i})
    assert cache.stats()["bytes"] <= entry_bytes * 4


# -- store-level helpers (the `python -m repro cache` engine) ----------
def test_store_stats_and_clear_cover_namespaces(tmp_path):
    DiskCache(tmp_path, "results").put(KEY, VALUE)
    DiskCache(tmp_path, "lint").put(("lint-key",), {"states": 5})
    stats = store_stats(tmp_path)
    assert set(stats["namespaces"]) == {"results", "lint"}
    assert stats["entries"] == 2
    assert clear_store(tmp_path, namespace="lint") == 1
    assert store_stats(tmp_path)["entries"] == 1
    assert clear_store(tmp_path) == 1
    assert store_stats(tmp_path)["entries"] == 0


def test_gc_store_bounds_across_namespaces(tmp_path):
    results = DiskCache(tmp_path, "results")
    lint = DiskCache(tmp_path, "lint")
    for i in range(5):
        results.put(("r", i), {"i": i})
        lint.put(("l", i), {"i": i})
    total = store_stats(tmp_path)["bytes"]
    summary = gc_store(tmp_path, total // 2)
    assert summary["kept_bytes"] <= total // 2
    assert summary["removed_entries"] > 0
    assert store_stats(tmp_path)["bytes"] <= total // 2


def test_parse_size():
    assert parse_size("1048576") == 1024 ** 2
    assert parse_size("512K") == 512 * 1024
    assert parse_size("64M") == 64 * 1024 ** 2
    assert parse_size("1G") == 1024 ** 3
    assert parse_size("2kb") == 2048
    with pytest.raises(PylseError):
        parse_size("lots")
    with pytest.raises(PylseError):
        parse_size("-5M")


# -- tiered composition ------------------------------------------------
def test_tiered_promotes_disk_hit_into_memory(tmp_path):
    disk = DiskCache(tmp_path)
    disk.put(KEY, VALUE)
    tiered = TieredCache(LRUCache(4), DiskCache(tmp_path))
    assert tiered.get(KEY) == VALUE
    assert tiered.memory.peek(KEY) == VALUE  # promoted
    stats = tiered.stats()
    assert stats["memory"]["misses"] == 1
    assert stats["disk"]["hits"] == 1


def test_tiered_write_through_and_memory_only(tmp_path):
    tiered = TieredCache(LRUCache(4), DiskCache(tmp_path))
    tiered.put(KEY, VALUE)
    assert DiskCache(tmp_path).get(KEY) == VALUE
    memory_only = TieredCache(LRUCache(4))
    memory_only.put(KEY, VALUE)
    assert memory_only.get(KEY) == VALUE
    assert memory_only.stats()["disk"] is None


def test_tiered_get_or_compute_counts_one_computation(tmp_path):
    tiered = TieredCache(LRUCache(4), DiskCache(tmp_path))
    calls = []

    def compute():
        calls.append(1)
        return VALUE

    value, cached = tiered.get_or_compute(KEY, compute)
    assert (value, cached) == (VALUE, False)
    value, cached = tiered.get_or_compute(KEY, compute)
    assert (value, cached) == (VALUE, True)
    assert len(calls) == 1


def test_tiered_decode_failure_quarantines_and_recomputes(tmp_path):
    def encode(value):
        return {"wrapped": value}

    def decode(doc):
        raise PylseError("pretend this document's shape is unknown")

    tiered = TieredCache(
        LRUCache(4), DiskCache(tmp_path), encode=encode, decode=decode
    )
    tiered.put(KEY, VALUE)
    tiered.memory.clear()  # force the disk path
    value, cached = tiered.get_or_compute(KEY, lambda: "recomputed")
    assert (value, cached) == ("recomputed", False)
    assert store_stats(tmp_path)["quarantined"] == 1


def test_stored_document_shape_is_versioned(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, VALUE)
    doc = json.loads(cache.path_for(KEY).read_text())
    assert doc["format"] == STORE_FORMAT
    assert doc["namespace"] == "results"
    assert doc["key"] == canonical_key(KEY)
    assert doc["value"] == VALUE
