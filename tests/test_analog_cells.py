"""Functional tests for the junction-level analog cell library."""

import pytest

from repro.analog import (
    Netlist,
    add_c_element,
    add_input_stage,
    add_inv_c,
    add_jtl,
    add_splitter,
    check_behaviors,
    connect,
    measure_cell_delays,
    simulate,
)

DT = 0.1  # coarser step for test speed; behavior is step-robust


def single_cell(cell, a_times, b_times):
    nl = Netlist("probe")
    sa = add_input_stage(nl, a_times)
    sb = add_input_stage(nl, b_times)
    ja, oa = add_jtl(nl)
    jb, ob = add_jtl(nl)
    connect(nl, sa, ja)
    connect(nl, sb, jb)
    in_a, in_b, out = cell(nl)
    connect(nl, oa, in_a)
    connect(nl, ob, in_b)
    jo, oo = add_jtl(nl)
    connect(nl, out, jo)
    nl.mark_output(oo, "q")
    return nl


class TestJTL:
    def test_propagates_every_pulse(self):
        nl = Netlist("jtl")
        src = add_input_stage(nl, [20.0, 60.0, 100.0])
        i1, o1 = add_jtl(nl, 4)
        connect(nl, src, i1)
        nl.mark_output(o1, "q")
        pulses = simulate(nl, 150, DT).pulses["q"]
        assert len(pulses) == 3

    def test_delay_grows_with_stages(self):
        delays = []
        for stages in (2, 6):
            nl = Netlist("jtl")
            src = add_input_stage(nl, [20.0])
            i1, o1 = add_jtl(nl, stages)
            connect(nl, src, i1)
            nl.mark_output(o1, "q")
            delays.append(simulate(nl, 100, DT).pulses["q"][0])
        assert delays[1] > delays[0]

    def test_quiet_without_input(self):
        nl = Netlist("jtl")
        i1, o1 = add_jtl(nl, 4)
        nl.mark_output(o1, "q")
        assert simulate(nl, 100, DT).pulses["q"] == []


class TestSplitter:
    def test_duplicates_once_per_pulse(self):
        nl = Netlist("split")
        src = add_input_stage(nl, [20.0, 70.0])
        drv, left, right = add_splitter(nl)
        connect(nl, src, drv)
        nl.mark_output(left, "l")
        nl.mark_output(right, "r")
        res = simulate(nl, 130, DT)
        assert len(res.pulses["l"]) == 2
        assert len(res.pulses["r"]) == 2

    def test_outputs_simultaneous(self):
        nl = Netlist("split")
        src = add_input_stage(nl, [20.0])
        drv, left, right = add_splitter(nl)
        connect(nl, src, drv)
        nl.mark_output(left, "l")
        nl.mark_output(right, "r")
        res = simulate(nl, 80, DT)
        assert res.pulses["l"][0] == pytest.approx(res.pulses["r"][0], abs=0.5)


class TestCElement:
    def test_fires_after_second_input(self):
        pulses = simulate(single_cell(add_c_element, [20.0], [50.0]), 130, DT).pulses["q"]
        assert len(pulses) == 1
        assert pulses[0] > 50.0

    def test_symmetric_in_inputs(self):
        first = simulate(single_cell(add_c_element, [20.0], [50.0]), 130, DT).pulses["q"]
        second = simulate(single_cell(add_c_element, [50.0], [20.0]), 130, DT).pulses["q"]
        assert first[0] == pytest.approx(second[0], abs=0.5)

    def test_holds_on_single_input(self):
        pulses = simulate(single_cell(add_c_element, [20.0], [900.0]), 300, DT).pulses["q"]
        assert pulses == []

    def test_rearms_for_second_round(self):
        pulses = simulate(
            single_cell(add_c_element, [20.0, 100.0], [50.0, 130.0]), 220, DT
        ).pulses["q"]
        assert len(pulses) == 2


class TestInvertedC:
    def test_fires_after_first_input(self):
        pulses = simulate(single_cell(add_inv_c, [20.0], [50.0]), 130, DT).pulses["q"]
        assert len(pulses) == 1
        assert pulses[0] < 50.0 + 10.0

    def test_absorbs_second_input(self):
        early = simulate(single_cell(add_inv_c, [20.0], [50.0]), 200, DT).pulses["q"]
        late = simulate(single_cell(add_inv_c, [20.0], [150.0]), 250, DT).pulses["q"]
        assert len(early) == len(late) == 1
        assert early[0] == pytest.approx(late[0], abs=0.5)

    def test_rearms_for_second_round(self):
        pulses = simulate(
            single_cell(add_inv_c, [20.0, 110.0], [50.0, 140.0]), 240, DT
        ).pulses["q"]
        assert len(pulses) == 2


class TestTuneHarness:
    def test_all_behaviors_pass(self):
        outcomes = check_behaviors(dt=DT)
        failed = [c for c in outcomes if not c.passed]
        assert not failed, failed

    def test_measured_delays_positive_and_ordered(self):
        delays = measure_cell_delays(dt=DT)
        assert delays["jtl_stage"] > 0
        assert delays["splitter"] > delays["jtl_stage"]
        # C and InvC are multi-junction paths: slower than a JTL stage.
        assert delays["c_after_second"] > delays["jtl_stage"]
        assert delays["inv_c_after_first"] > delays["jtl_stage"]
