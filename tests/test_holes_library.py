"""Tests for the reusable behavioral-hole library."""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs.holes import (
    make_accumulator,
    make_comparator,
    make_counter,
    make_shift_register,
)


def simulate(build):
    with fresh_circuit() as circuit:
        build()
    return Simulation(circuit).simulate()


class TestCounter:
    def test_counts_and_emits_binary(self):
        def build():
            counter = make_counter(bits=3)
            inc = inp_at(10.0, 20.0, 30.0, name="inc")   # 3 pulses
            clk = inp_at(50.0, name="clk")
            bits = counter(inc, clk, names="b2 b1 b0")
            del bits

        events = simulate(build)
        # count == 3 == 0b011
        assert events["b2"] == []
        assert events["b1"] == [55.0]
        assert events["b0"] == [55.0]

    def test_accumulates_across_periods(self):
        def build():
            counter = make_counter(bits=3)
            inc = inp_at(10.0, 60.0, 70.0, name="inc")
            clk = inp(start=50, period=50, n=2, name="clk")
            counter(inc, clk, names="b2 b1 b0")

        events = simulate(build)
        # period 1: count 1 (b0); period 2: count 3 (b1, b0).
        assert events["b0"] == [55.0, 105.0]
        assert events["b1"] == [105.0]

    def test_wraparound(self):
        def build():
            counter = make_counter(bits=2)
            inc = inp_at(*[float(t) for t in range(10, 10 + 5 * 4, 4)], name="inc")
            clk = inp_at(50.0, name="clk")
            counter(inc, clk, names="b1 b0")

        events = simulate(build)
        # 5 mod 4 == 1
        assert events["b1"] == []
        assert events["b0"] == [55.0]


class TestShiftRegister:
    def test_bit_emerges_after_n_clocks(self):
        def build():
            sr = make_shift_register(stages=3)
            d = inp_at(10.0, name="d")
            clk = inp(start=20, period=20, n=4, name="clk")
            q = sr(d, clk)
            q.observe("q")

        events = simulate(build)
        # Shifted in at clk@20; emerges on the 3rd following clock (t=80).
        assert events["q"] == [85.0]

    def test_zero_stream_is_silent(self):
        def build():
            sr = make_shift_register(stages=2)
            d = inp_at(name="d")
            clk = inp(start=20, period=20, n=5, name="clk")
            q = sr(d, clk)
            q.observe("q")

        assert simulate(build)["q"] == []


class TestAccumulator:
    def test_fires_at_threshold(self):
        def build():
            acc = make_accumulator(threshold=3)
            x = inp_at(10.0, 20.0, 30.0, name="x")
            clk = inp(start=40, period=40, n=2, name="clk")
            spike = acc(x, clk)
            spike.observe("spike")

        events = simulate(build)
        assert events["spike"] == [45.0]    # fires once, then reset

    def test_below_threshold_is_silent(self):
        def build():
            acc = make_accumulator(threshold=3)
            x = inp_at(10.0, name="x")
            clk = inp(start=40, period=40, n=3, name="clk")
            spike = acc(x, clk)
            spike.observe("spike")

        assert simulate(build)["spike"] == []


class TestComparator:
    def test_all_three_verdicts(self):
        def build():
            cmp_hole = make_comparator()
            a = inp_at(10.0, 20.0, 60.0, name="a")
            b = inp_at(15.0, 65.0, 70.0, name="b")
            clk = inp(start=40, period=40, n=3, name="clk")
            gt, eq, lt = cmp_hole(a, b, clk, names="gt eq lt")
            del gt, eq, lt

        events = simulate(build)
        assert events["gt"] == [45.0]            # window 1: a=2, b=1
        assert events["lt"] == [85.0]            # window 2: a=1, b=2
        assert events["eq"] == [125.0]           # window 3: 0 == 0

    def test_independent_instances(self):
        """Factories must not share state between instantiations."""
        first = make_counter(bits=2)
        second = make_counter(bits=2)
        assert first.state is not second.state
