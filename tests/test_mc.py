"""End-to-end model-checking tests (Section 5.3's Queries 1 and 2)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.helpers import inp, inp_at
from repro.designs import min_max
from repro.mc import ModelChecker, verify_design
from repro.sfq import and_s, c, dro, jtl
from repro.ta import (
    OutputTimesProperty,
    Query,
    no_error_query,
    translate_circuit,
)


class TestVerifyDesign:
    def test_jtl_satisfies_both_queries(self):
        a = inp_at(100.0, 200.0, name="A")
        jtl(a, name="Q")
        report = verify_design(time_limit=60)
        assert report.ok
        assert report.result.states_explored > 0
        assert report.events["Q"] == [105.0, 205.0]

    def test_and_figure12_satisfies(self):
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
        report = verify_design(time_limit=120)
        assert report.ok, report.result.violations

    def test_c_element_satisfies(self):
        a = inp_at(30.0, 110.0, name="A")
        b = inp_at(60.0, 140.0, name="B")
        c(a, b, name="Q")
        report = verify_design(time_limit=60)
        assert report.ok

    def test_min_max_satisfies_with_paper_times(self):
        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        report = verify_design(time_limit=300)
        assert report.ok
        assert report.events["low"] == [89.0, 209.0, 329.0]

    def test_budget_exhaustion_reports_incomplete(self):
        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        report = verify_design(max_states=20)
        assert not report.result.completed
        assert not report.ok
        assert "INCOMPLETE" in report.summary()


class TestQueryViolations:
    def test_wrong_output_times_detected(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        translation = translate_circuit(working_circuit())
        bad = Query(
            kind="output_times",
            properties=[
                OutputTimesProperty(name, "fta_end", (9999,))
                for name in translation.firing_tas_by_channel["Q"]
            ],
        )
        result = ModelChecker(translation.network, time_limit=30).run([bad])
        assert result.completed
        assert result.violations_for("query1")

    def test_setup_violation_reaches_error_state(self):
        """Figure 13's stimulus makes an AND error location reachable."""
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(99, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
        translation = translate_circuit(working_circuit())
        result = ModelChecker(translation.network, time_limit=60).run(
            [no_error_query(translation)]
        )
        violations = result.violations_for("query2")
        assert violations
        assert any("AND_err_b" in v.location for v in violations)

    def test_hold_violation_reaches_error_state(self):
        a = inp_at(30.0, 51.0, name="A")      # 51 inside DRO's hold window
        clk = inp_at(50.0, name="CLK")
        dro(a, clk, name="Q")
        translation = translate_circuit(working_circuit())
        result = ModelChecker(translation.network, time_limit=30).run(
            [no_error_query(translation)]
        )
        violations = result.violations_for("query2")
        assert violations
        assert any("_h" in v.location or "err" in v.location for v in violations)

    def test_clean_stimulus_has_unreachable_errors(self):
        a = inp_at(30.0, name="A")
        clk = inp_at(50.0, name="CLK")
        dro(a, clk, name="Q")
        translation = translate_circuit(working_circuit())
        result = ModelChecker(translation.network, time_limit=30).run(
            [no_error_query(translation)]
        )
        assert result.satisfied


class TestCheckerMechanics:
    def test_inclusion_pruning_explores_fewer_states(self):
        a = inp_at(100.0, 200.0, 300.0, name="A")
        jtl(a, name="Q")
        translation = translate_circuit(working_circuit())
        with_pruning = ModelChecker(translation.network).run([])
        without = ModelChecker(translation.network, use_inclusion=False).run([])
        assert with_pruning.states_explored <= without.states_explored

    def test_mc_agrees_with_simulation_timing(self):
        """Query 1 built from simulation events is satisfied: the TA
        semantics and the discrete-event semantics agree on output times."""
        a = inp_at(40.0, 90.0, name="A")
        b = inp_at(60.0, 120.0, name="B")
        c(a, b, name="Q")
        report = verify_design(time_limit=60)
        assert report.ok
        # and the query actually constrains something:
        assert any(p.allowed_times for p in report.query1.properties)

    def test_tctl_rendering(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        report = verify_design(time_limit=30)
        tctl1 = report.query1.to_tctl()
        assert tctl1.startswith("A[] (")
        assert "fta_end imply" in tctl1
        assert "global == 1050" in tctl1
        tctl2 = report.query2.to_tctl()
        assert tctl2.startswith("A[] not (")
