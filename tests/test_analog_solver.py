"""Physics-level tests for the RCSJ transient solver."""

import numpy as np
import pytest

from repro.analog import (
    DEFAULT_JUNCTION,
    JunctionParams,
    Netlist,
    PHI0,
    TransientSolver,
    add_input_stage,
    add_jtl,
    connect,
    simulate,
)
from repro.core.errors import PylseError


class TestNetlistBuilder:
    def test_nodes_and_branches_counted(self):
        nl = Netlist("t")
        a = nl.add_node()
        b = nl.add_node()
        nl.add_branch(a, b, 10.0)
        assert nl.n_nodes == 2
        assert len(nl.branches) == 1

    def test_self_branch_rejected(self):
        nl = Netlist("t")
        a = nl.add_node()
        with pytest.raises(PylseError):
            nl.add_branch(a, a, 10.0)

    def test_unknown_node_rejected(self):
        nl = Netlist("t")
        a = nl.add_node()
        with pytest.raises(PylseError):
            nl.add_branch(a, 99, 10.0)

    def test_nonpositive_inductance_rejected(self):
        nl = Netlist("t")
        a, b = nl.add_node(), nl.add_node()
        with pytest.raises(PylseError):
            nl.add_branch(a, b, 0.0)

    def test_duplicate_output_rejected(self):
        nl = Netlist("t")
        a = nl.add_node()
        nl.mark_output(a, "q")
        with pytest.raises(PylseError):
            nl.mark_output(a, "r")

    def test_lines_listing_shape(self):
        nl = Netlist("t")
        a = nl.add_node()
        b = nl.add_node()
        nl.add_branch(a, b, 10.0)
        nl.add_pulse_input(a, [5.0])
        nl.mark_output(b, "q")
        text = "\n".join(nl.lines())
        assert text.startswith("* t")
        assert "jj ic=" in text
        assert ".probe" in text
        assert text.rstrip().endswith(".end")
        # junction + bias per node, inductor, source, probe, tran, end, title
        assert len(nl.lines()) == 2 * 2 + 1 + 1 + 1 + 2 + 1


class TestJunctionPhysics:
    def test_mccumber_near_unity(self):
        """The default junction is near critical damping (clean pulses)."""
        assert 0.5 < DEFAULT_JUNCTION.mccumber() < 2.5

    def test_scaled_junction_preserves_ic_r_product(self):
        big = DEFAULT_JUNCTION.scaled(2.0)
        assert big.ic == pytest.approx(0.2)
        assert big.ic * big.r == pytest.approx(
            DEFAULT_JUNCTION.ic * DEFAULT_JUNCTION.r
        )

    def test_biased_junction_stays_superconducting(self):
        """At 0.7 Ic bias and no input, no phase slips ever occur."""
        nl = Netlist("quiet")
        node = nl.add_node()
        nl.mark_output(node, "q")
        res = simulate(nl, 200, 0.1)
        assert res.pulses["q"] == []
        assert abs(res.final_phases[0]) < np.pi

    def test_each_input_pulse_nucleates_one_fluxon(self):
        """Pulse area quantization: each slip advances phase by 2 pi."""
        nl = Netlist("sfq")
        src = add_input_stage(nl, [20.0, 60.0, 100.0])
        i1, o1 = add_jtl(nl, 3)
        connect(nl, src, i1)
        nl.mark_output(o1, "q")
        res = simulate(nl, 160, 0.05)
        assert len(res.pulses["q"]) == 3
        # Final phase of the output node = 3 slips (allowing settle offset).
        assert res.final_phases[-1] == pytest.approx(3 * 2 * np.pi, abs=1.5)

    def test_pulse_voltage_area_is_phi0(self):
        """Integrate V dt across a slip: the area must equal PHI0."""
        nl = Netlist("area")
        src = add_input_stage(nl, [20.0])
        i1, o1 = add_jtl(nl, 3)
        connect(nl, src, i1)
        nl.mark_output(o1, "q")
        solver = TransientSolver(nl)
        before = solver.run(10.0, 0.05).final_phases[o1]
        after = solver.run(80.0, 0.05).final_phases[o1]
        from repro.analog.params import PHI0_2PI

        area = PHI0_2PI * (after - before)   # integral of V dt = PHI0/2pi * dphi
        assert area == pytest.approx(PHI0, rel=0.15)

    def test_smaller_dt_converges(self):
        """Halving dt moves the detected pulse time by < 0.1 ps."""
        def pulse_time(dt):
            nl = Netlist("conv")
            src = add_input_stage(nl, [20.0])
            i1, o1 = add_jtl(nl, 4)
            connect(nl, src, i1)
            nl.mark_output(o1, "q")
            return simulate(nl, 80, dt).pulses["q"][0]

        assert pulse_time(0.05) == pytest.approx(pulse_time(0.025), abs=0.1)


class TestTransientResult:
    def test_pulse_counts_helper(self):
        nl = Netlist("t")
        src = add_input_stage(nl, [20.0])
        i1, o1 = add_jtl(nl, 2)
        connect(nl, src, i1)
        nl.mark_output(o1, "q")
        res = simulate(nl, 60, 0.1)
        assert res.pulse_counts() == {"q": 1}
        assert res.steps == 600
