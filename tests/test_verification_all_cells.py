"""Every basic cell: simulate, translate, and verify Queries 1 + 2.

This is the heart of the paper's Claim 3 at cell granularity: for all 16
standard cells (plus extensions), the TA translation agrees with the
discrete-event simulation on output times (Query 1) and the canonical
stimulus keeps every timing-error location unreachable (Query 2).
"""

import pytest

from repro.exp.registry import build_in_fresh_circuit, registry
from repro.mc import verify_design

BASIC = [e for e in registry() if e.is_basic_cell]


@pytest.mark.parametrize("entry", BASIC, ids=lambda e: e.name)
def test_cell_verifies(entry):
    circuit = build_in_fresh_circuit(entry)
    report = verify_design(circuit, max_states=150_000, time_limit=90)
    assert report.result.completed, f"{entry.name}: budget exhausted"
    assert report.ok, f"{entry.name}: {report.result.violations[:3]}"


@pytest.mark.parametrize("entry", BASIC, ids=lambda e: e.name)
def test_cell_query1_constrains_every_output(entry):
    """Each output wire gets at least one firing-TA property in Query 1."""
    circuit = build_in_fresh_circuit(entry)
    from repro.core.simulation import Simulation
    from repro.ta import correctness_query, translate_circuit

    events = Simulation(circuit).simulate()
    translation = translate_circuit(circuit)
    query = correctness_query(circuit, translation, events)
    n_outputs = len(circuit.output_wires())
    assert len(query.properties) >= n_outputs
