"""Targeted tests for behaviors not covered elsewhere."""

import pytest

from repro.core.circuit import fresh_circuit, working_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.mc import verify_design
from repro.sfq import and_s, jtl
from repro.ta import channel_name, translate_circuit
from repro.core.wire import Wire


class TestVerifyDesignOptions:
    def test_query_subset_query2_only(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        report = verify_design(queries=("query2",), time_limit=30)
        assert report.ok
        # query1 object is still produced for inspection even if unchecked.
        assert report.query1.properties

    def test_liveness_query_included(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        report = verify_design(queries=("query1", "liveness"), time_limit=30)
        assert report.ok

    def test_deadlock_query_trips_on_finite_schedule(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        report = verify_design(queries=("deadlock",), time_limit=30)
        assert not report.ok
        assert report.result.violations_for("no_deadlock")

    def test_until_bounds_simulation_and_schedule(self):
        a = inp_at(100.0, 5000.0, name="A")
        jtl(a, name="Q")
        report = verify_design(until=1000.0, time_limit=30)
        assert report.ok
        assert report.events["Q"] == [105.0]


class TestChannelNames:
    def test_plain_names_pass_through(self):
        assert channel_name(Wire("A")) == "A"

    def test_auto_names_sanitized(self):
        wire = Wire()
        assert channel_name(wire).isidentifier()

    def test_weird_characters_replaced(self):
        wire = Wire("my wire!")
        assert channel_name(wire) == "my_wire_"

    def test_leading_digit_prefixed(self):
        wire = Wire("0out")
        assert channel_name(wire) == "w0out"


class TestPlotFallback:
    def test_matplotlib_absence_is_silent(self, capsys):
        """plot() must not fail when matplotlib is unavailable."""
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        sim = Simulation()
        sim.simulate()
        rendering = sim.plot()
        assert "A" in rendering    # ASCII path always works


class TestTuneHarnessExtras:
    def test_margin_sweep_shape(self):
        from repro.analog import margin_sweep, scale_all_biases

        outcome = margin_sweep(scale_all_biases, factors=(1.0,), dt=0.2)
        assert outcome == {1.0: True}

    def test_margin_sweep_detects_broken_bias(self):
        from repro.analog import margin_sweep, scale_all_biases

        outcome = margin_sweep(scale_all_biases, factors=(0.1,), dt=0.2)
        assert outcome[0.1] is False   # 10% bias: nothing switches


class TestTranslationEdgeCases:
    def test_distinct_firing_delays_get_distinct_families(self):
        """Two JTLs with different delays: separate fire channels."""
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            q = jtl(a, firing_delay=3.0)
            jtl(q, firing_delay=7.0, name="Q")
        translation = translate_circuit(circuit)
        fires = [ch for ch in translation.network.internal_channels]
        assert len(fires) == 2
        assert len(set(fires)) == 2

    def test_stats_exclude_environment(self):
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        translation = translate_circuit(working_circuit())
        # 5 cell+firing TAs, but 9 total with 3 inputs and 1 sink.
        assert translation.cell_stats()["ta"] == 5
        assert translation.network.n_automata == 9


class TestRenderEdgeCases:
    def test_waveform_caps_listed_times(self):
        from repro.core.simulation import render_waveforms

        text = render_waveforms({"A": [float(k) for k in range(20)]})
        assert "..." in text

    def test_html_round_step(self):
        from repro.core.htmlwave import _round_step

        assert _round_step(0.0) == 1.0
        assert _round_step(3.0) == 5.0
        assert _round_step(70.0) == 100.0
