"""Differential property: served results are bit-identical to direct calls.

The cache key (:func:`repro.core.ir.result_cache_key`) is only sound if a
served measurement never depends on *how* it was computed — which request
arrived first, whether it was a hit or a miss, how the batch drain lanes
fell. This property drives a live server across (design, sigma, n_seeds,
seed0, batch) and checks the served JSON element-wise against a direct
:func:`~repro.core.montecarlo.measure_yield` call with the same
parameters — the failure map seed for seed, not just the yield fraction —
on both the cold (first request) and warm (repeat request) paths.
"""

import json
from http.client import HTTPConnection

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.montecarlo import measure_yield
from repro.core.serialize import (
    SerializedCircuitFactory,
    circuit_to_json,
    yield_result_to_jsonable,
)
from repro.core.simulation import Simulation
from repro.designs import min_max
from repro.exp.registry import PulseCountPredicate, RegistryFactory
from repro.serve import serving

#: A cheap-to-measure slice of the registry: basic cells plus one
#: composite design, enough to cross cell kinds without making the
#: property sweep minutes long.
DESIGNS = ["JTL", "AND", "XOR", "DRO", "Min-Max"]
SIGMAS = [0.0, 0.3, 0.75, 1.5]

_PREDICATES = {}


@pytest.fixture(scope="module")
def serve_port():
    with serving(port=0, workers=1) as server:
        yield server.server_address[1]


def _post_yield(port, body):
    conn = HTTPConnection("127.0.0.1", port)
    try:
        conn.request("POST", "/yield", body=json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


def _direct(factory, design_key, sigma, n_seeds, seed0, batch):
    """The reference measurement the service must reproduce exactly."""
    predicate = _PREDICATES.get(design_key)
    if predicate is None:
        predicate = PulseCountPredicate(Simulation(factory()).simulate())
        _PREDICATES[design_key] = predicate
    result = measure_yield(
        factory, predicate, sigma,
        seeds=range(seed0, seed0 + n_seeds), batch=batch,
    )
    return yield_result_to_jsonable(result)


def _check_served_equals_direct(port, request_body, factory, design_key,
                                sigma, n_seeds, seed0, batch):
    status1, _, raw1 = _post_yield(port, request_body)
    status2, headers2, raw2 = _post_yield(port, request_body)
    assert status1 == status2 == 200, raw1
    # Warm path: the repeat is a cache hit and byte-identical.
    assert headers2["X-Repro-Cache"] == "hit"
    assert raw1 == raw2

    served = json.loads(raw1)["result"]
    expected = _direct(factory, design_key, sigma, n_seeds, seed0, batch)
    # Element-wise: yield fraction, outcome counts, and the per-seed
    # failure map must all match the direct call exactly.
    assert served == expected


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    design=st.sampled_from(DESIGNS),
    sigma=st.sampled_from(SIGMAS),
    n_seeds=st.integers(1, 8),
    seed0=st.integers(0, 3),
    batch=st.sampled_from([None, 0, 4]),
)
def test_served_registry_design_equals_direct(
    serve_port, design, sigma, n_seeds, seed0, batch
):
    body = {
        "design": design, "sigma": sigma, "n_seeds": n_seeds,
        "seed0": seed0,
    }
    if batch is not None:
        body["batch"] = batch
    _check_served_equals_direct(
        serve_port, body, RegistryFactory(design), design, sigma,
        n_seeds, seed0, batch,
    )


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    sigma=st.sampled_from(SIGMAS),
    n_seeds=st.integers(1, 6),
    batch=st.sampled_from([None, 0]),
)
def test_served_submitted_circuit_equals_direct(
    serve_port, sigma, n_seeds, batch
):
    """The serialized-circuit path obeys the same bit-identity contract."""
    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    text = circuit_to_json(circuit)
    body = {"circuit": text, "sigma": sigma, "n_seeds": n_seeds}
    if batch is not None:
        body["batch"] = batch
    _check_served_equals_direct(
        serve_port, body, SerializedCircuitFactory(text),
        ("circuit", text), sigma, n_seeds, 0, batch,
    )
