"""Shared fixtures: every test runs against a fresh working circuit."""

import pytest

from repro.core.circuit import reset_working_circuit


@pytest.fixture(autouse=True)
def clean_circuit():
    """Reset the ambient working circuit (and auto-naming) per test."""
    reset_working_circuit()
    yield
    reset_working_circuit()
