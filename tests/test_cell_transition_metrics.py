"""Every shipped SFQ cell's transition names flow into collected metrics.

Two drift guards, cell by cell over ``BASIC_CELLS + EXTENSION_CELLS``:

* a generic exercising stimulus (one pulse per input, 50 ps apart, in
  declared port order) is simulated with a metrics observer, and the
  transition labels tallied for the cell must equal a reference replay of
  the machine's ``delta`` over the same trigger sequence — so the labels
  the hot-loop dispatch table carries can never drift from the machine
  definition (the failure mode a dispatch-table refactor would hit);
* the precomputed ``_fast`` entries themselves must carry exactly
  ``Transition.label`` in canonical ``source--trigger->dest`` form.
"""

import pytest

from repro.core.circuit import fresh_circuit, working_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.core.wire import Wire
from repro.obs import Observer
from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

ALL_CELLS = BASIC_CELLS + EXTENSION_CELLS

#: Comfortable spacing: larger than any cell's transition time or
#: past-constraint window, so the canonical stimulus never violates.
SPACING = 50.0


def exercise_cell(cls):
    """Simulate one pulse per input (declared order) through a lone cell."""
    with fresh_circuit() as circuit:
        ins = [
            inp_at(SPACING * (i + 1), name=f"in_{port}")
            for i, port in enumerate(cls.inputs)
        ]
        element = cls()
        outs = [Wire(f"out_{port}") for port in cls.outputs]
        working_circuit().add_node(element, ins, outs)
    observer = Observer(provenance=False, metrics=True)
    Simulation(circuit).simulate(observer=observer)
    return element, observer.metrics


def replay_expected_labels(cls):
    """Reference: walk delta over the same trigger sequence."""
    machine = cls._class_machine()
    state = machine.initial
    labels = []
    for port in cls.inputs:
        transition = machine._delta[(state, port)]
        labels.append(transition.label)
        state = transition.dest
    return labels


@pytest.mark.parametrize("cls", ALL_CELLS, ids=lambda c: c.name)
def test_collected_transitions_match_reference_replay(cls):
    element, metrics = exercise_cell(cls)
    [(node_name, cell_metrics)] = [
        (name, cm) for name, cm in metrics.cells.items()
        if cm.cell == cls.name
    ]
    expected = replay_expected_labels(cls)
    # One pulse per input: every replayed transition tallied exactly once.
    assert cell_metrics.transitions == {
        label: expected.count(label) for label in expected
    }
    assert cell_metrics.pulses_in == len(cls.inputs)
    assert cell_metrics.violations == 0


@pytest.mark.parametrize("cls", ALL_CELLS, ids=lambda c: c.name)
def test_collected_labels_exist_in_machine(cls):
    """Every tallied name is a real transition of the cell's machine."""
    _, metrics = exercise_cell(cls)
    machine = cls._class_machine()
    valid = {t.label for t in machine.transitions}
    [cell_metrics] = [
        cm for cm in metrics.cells.values() if cm.cell == cls.name
    ]
    assert set(cell_metrics.transitions) <= valid


@pytest.mark.parametrize("cls", ALL_CELLS, ids=lambda c: c.name)
def test_fast_table_carries_canonical_labels(cls):
    """The hot-loop dispatch entries end with Transition.label verbatim."""
    machine = cls._class_machine()
    assert machine._fast, f"{cls.name}: empty dispatch table"
    for key, entry in machine._fast.items():
        transition = machine._delta[key]
        assert entry[5] == transition.label
        source, trigger = key
        assert entry[5] == f"{source}--{trigger}->{transition.dest}"


def test_labels_unique_per_machine():
    """Labels are usable as counters: no two transitions share one."""
    for cls in ALL_CELLS:
        machine = cls._class_machine()
        labels = [t.label for t in machine.transitions]
        assert len(labels) == len(set(labels)), cls.name
