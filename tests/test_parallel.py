"""Tests for the parallel Monte-Carlo backend (repro.core.parallel).

The headline contract: ``measure_yield(..., workers=N)`` is bit-identical
to the sequential reference path for the same seed list — same counts, same
``failures`` dict, same insertion order.
"""

import pytest

from repro.core.circuit import Circuit, fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.montecarlo import critical_sigma, measure_yield, yield_curve
from repro.core.parallel import chunk_seeds, resolve_workers, run_seeds_parallel
from repro.designs import min_max


def minmax_factory() -> Circuit:
    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit


def minmax_ok(events) -> bool:
    return (
        len(events["low"]) == 1
        and len(events["high"]) == 1
        and events["low"][0] < events["high"][0]
    )


class TestChunking:
    def test_contiguous_cover(self):
        seeds = list(range(11))
        chunks = chunk_seeds(seeds, 4)
        assert [s for chunk in chunks for s in chunk] == seeds
        assert len(chunks) == 4
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_seeds(self):
        chunks = chunk_seeds([1, 2], 8)
        assert chunks == [[1], [2]]

    def test_bad_chunk_count(self):
        with pytest.raises(PylseError):
            chunk_seeds([1], 0)

    def test_empty_seed_list(self):
        assert run_seeds_parallel(minmax_factory, minmax_ok, 0.0, [], 2) == []


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_auto(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(PylseError):
            resolve_workers(-2)

    def test_bools_rejected(self):
        """Regression: ``True`` passed isinstance(int) and leaked through;
        ``False == 0`` silently meant one-per-CPU."""
        with pytest.raises(PylseError, match="bool"):
            resolve_workers(True)
        with pytest.raises(PylseError, match="bool"):
            resolve_workers(False)

    def test_bool_rejected_from_measure_yield(self):
        with pytest.raises(PylseError, match="bool"):
            measure_yield(
                minmax_factory, minmax_ok, sigma=0.0, seeds=range(2),
                workers=True,
            )


class TestBitIdentical:
    def test_minmax_workers4_equals_sequential(self):
        """The acceptance contract: Min-Max, 4 workers vs reference."""
        seeds = range(40)
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=seeds, workers=1
        )
        parallel = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=seeds, workers=4
        )
        assert parallel == sequential
        # dict equality ignores insertion order; the merge must not
        assert list(parallel.failures.items()) == list(sequential.failures.items())

    def test_clean_run_identical(self):
        seeds = range(10)
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=0.0, seeds=seeds, workers=1
        )
        parallel = measure_yield(
            minmax_factory, minmax_ok, sigma=0.0, seeds=seeds, workers=2
        )
        assert parallel == sequential
        assert parallel.yield_fraction == 1.0

    def test_noncontiguous_seed_list(self):
        seeds = [5, 3, 17, 2, 29, 11, 8]
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=seeds, workers=1
        )
        parallel = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=seeds, workers=3
        )
        assert parallel == sequential

    def test_yield_curve_workers(self):
        curve_seq = yield_curve(
            minmax_factory, minmax_ok, sigmas=(0.0, 12.0), seeds=range(10)
        )
        curve_par = yield_curve(
            minmax_factory, minmax_ok, sigmas=(0.0, 12.0), seeds=range(10),
            workers=2,
        )
        assert curve_par == curve_seq

    def test_critical_sigma_workers(self):
        seq = critical_sigma(
            minmax_factory, minmax_ok, target_yield=0.9,
            sigma_hi=16.0, seeds=range(6), iterations=3,
        )
        par = critical_sigma(
            minmax_factory, minmax_ok, target_yield=0.9,
            sigma_hi=16.0, seeds=range(6), iterations=3, workers=2,
        )
        assert par == seq


class TestErrors:
    def test_unpicklable_predicate_rejected(self):
        with pytest.raises(PylseError, match="picklable"):
            measure_yield(
                minmax_factory, lambda events: True,
                sigma=1.0, seeds=range(4), workers=2,
            )

    def test_lambda_fine_sequentially(self):
        result = measure_yield(
            minmax_factory, lambda events: True,
            sigma=1.0, seeds=range(3), workers=1,
        )
        assert result.yield_fraction == 1.0

    def test_negative_workers_rejected(self):
        with pytest.raises(PylseError):
            measure_yield(
                minmax_factory, minmax_ok, sigma=0.0, seeds=range(2),
                workers=-1,
            )

    def test_single_seed_stays_sequential(self):
        """One seed with many workers: no pool, still correct."""
        result = measure_yield(
            minmax_factory, minmax_ok, sigma=0.0, seeds=[0], workers=8
        )
        assert result.runs == 1 and result.passed == 1

    def test_duplicate_seeds_rejected(self):
        """Regression: duplicate seeds used to collide silently in the
        ``failures`` dict (the later outcome overwrote the earlier)."""
        with pytest.raises(PylseError, match="duplicate seed"):
            measure_yield(
                minmax_factory, minmax_ok, sigma=0.0, seeds=[1, 2, 3, 2]
            )

    def test_duplicate_seeds_named_in_error(self):
        with pytest.raises(PylseError, match=r"4.*7"):
            measure_yield(
                minmax_factory, minmax_ok, sigma=0.0,
                seeds=[4, 7, 4, 7, 9],
            )


class TestChunkLengthGuard:
    """Regression: ``zip(seeds, outcomes)`` silently truncated short
    worker results, shifting outcomes onto the wrong seeds."""

    def test_short_chunk_names_the_chunk(self):
        from repro.core.parallel import _check_chunk

        with pytest.raises(PylseError, match=r"chunk 3.*30\.\.39.*7"):
            _check_chunk(3, list(range(30, 40)), 7)

    def test_matching_chunk_passes(self):
        from repro.core.parallel import _check_chunk

        _check_chunk(0, [1, 2, 3], 3)  # no raise

    def test_measure_yield_backstop(self):
        """A backend returning the wrong outcome count is refused."""
        from repro.core.parallel import YieldEngine

        class ShortEngine(YieldEngine):
            def run(self, *args, **kwargs):
                return ["ok"], None  # one outcome for many seeds

        with ShortEngine(workers=2) as engine:
            with pytest.raises(PylseError, match="1 outcomes for 5 seeds"):
                measure_yield(
                    minmax_factory, minmax_ok, sigma=0.0, seeds=range(5),
                    engine=engine,
                )
