"""PL4xx reachability lint: witnesses, replay grading, budgets, caching.

The contract under test:

* every PL403 finding carries a concrete witness schedule extracted from
  the zone graph, and replaying the circuit through ``Simulation.simulate``
  reproduces the violation for ``confirmed`` findings (round-trip);
* findings whose witness the replay does *not* reproduce are downgraded to
  ``possible`` (warning instead of error);
* PL402 races are graded by a seed sweep of the simulator's simultaneous
  tie-break: outcome-changing races confirm, invisible ones stay possible;
* a state budget truncates the exploration **explicitly** — ``truncated``
  plus a reason — and withholds PL401 (absence is unproven on a partial
  exploration) while keeping the findings the explored prefix did prove;
* the analysis is served from an incremental cache keyed by structural
  hash, rule subset, tolerance, and budget.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.errors import SimulationError
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.core.wire import Wire
from repro.lint import (
    ReachBudget,
    Severity,
    analyze_reach,
    clear_reach_cache,
    lint_circuit,
    reach_cache_stats,
)
from repro.sfq.and_s import AND
from repro.sfq.dro_sr import DRO_SR

BUDGET = ReachBudget(max_states=8000, time_limit=30.0)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_reach_cache()
    yield
    clear_reach_cache()


def build_broken_and():
    """Figure 13's scenario: clk 1 ps after 'a', inside the 2.8 ps setup."""
    with fresh_circuit() as circuit:
        a = inp_at(30.0, name="A")
        b = inp_at(10.0, name="B")
        clk = inp_at(31.0, name="CLK")
        circuit.add_node(AND(), [a, b, clk], [Wire("OUT_q")])
    return circuit


def build_two_broken_ands():
    """Two independently broken ANDs; the replay can only raise at one."""
    with fresh_circuit() as circuit:
        circuit.add_node(
            AND(),
            [inp_at(30.0, name="A0"), inp_at(10.0, name="B0"),
             inp_at(31.0, name="CLK0")],
            [Wire("OUT0")],
        )
        circuit.add_node(
            AND(),
            [inp_at(100.0, name="A1"), inp_at(80.0, name="B1"),
             inp_at(101.0, name="CLK1")],
            [Wire("OUT1")],
        )
    return circuit


def build_racy_dro_sr(with_clk=True):
    """DRO_SR with set and reset at the same instant (equal priority)."""
    with fresh_circuit() as circuit:
        a = inp_at(30.0, name="A")
        rst = inp_at(30.0, name="RST")
        clk = inp_at(*([60.0] if with_clk else []), name="CLK")
        circuit.add_node(DRO_SR(), [a, rst, clk], [Wire("OUT_q")])
    return circuit


class TestWitnessReplayRoundTrip:
    def test_pl403_finds_confirmed_setup_violation(self):
        analysis, cached = analyze_reach(build_broken_and(), budget=BUDGET)
        assert not cached and not analysis.truncated
        kinds = {(t.kind, t.symbol, t.confidence) for t in analysis.timing}
        assert ("setup", "a", "confirmed") in kinds, analysis.timing

    def test_every_confirmed_witness_reproduces_in_simulation(self):
        """Round-trip: the witness schedule IS the circuit's schedule, and
        simulating it raises the violation at the node the finding names."""
        circuit = build_broken_and()
        analysis, _ = analyze_reach(circuit, budget=BUDGET)
        confirmed = [t for t in analysis.timing if t.confidence == "confirmed"]
        assert confirmed
        for finding in confirmed:
            # The witness's input schedule matches the elaborated InGens.
            schedule = finding.witness.schedule()
            assert schedule == {"A": [30.0], "B": [10.0], "CLK": [31.0]}
            # Zone-graph steps end in the error location at a concrete time.
            assert finding.witness.steps
            assert finding.error_location in finding.witness.steps[-1].label
            with pytest.raises(SimulationError) as exc:
                Simulation(circuit).simulate()
            # The simulator names the failing cell by its output wire.
            assert finding.node == "and0"
            assert "OUT_q" in str(exc.value)

    def test_confirmed_findings_carry_provenance_chain(self):
        analysis, _ = analyze_reach(build_broken_and(), budget=BUDGET)
        confirmed = [t for t in analysis.timing if t.confidence == "confirmed"]
        assert confirmed and all(t.provenance for t in confirmed)

    def test_unreproduced_witness_downgrades_to_possible(self):
        """The replay raises at the *first* failing node; the other cell's
        reachable error stays a finding but is graded possible."""
        analysis, _ = analyze_reach(build_two_broken_ands(), budget=BUDGET)
        by_node = {}
        for t in analysis.timing:
            by_node.setdefault(t.node, set()).add(t.confidence)
        assert set(by_node) == {"and0", "and1"}
        assert by_node["and0"] == {"confirmed"}
        assert by_node["and1"] == {"possible"}

    def test_confidence_drives_severity(self):
        report = lint_circuit(build_two_broken_ands(), reach=True,
                              reach_budget=BUDGET)
        sev = {
            (f.location.node, f.severity)
            for f in report.findings if f.rule == "PL403"
        }
        assert ("and0", Severity.ERROR) in sev
        assert ("and1", Severity.WARNING) in sev

    def test_replay_does_not_disturb_later_simulation(self):
        """The lint-time replay resets element state, so a user simulating
        the same circuit afterwards sees the untouched initial state."""
        circuit = build_broken_and()
        analyze_reach(circuit, budget=BUDGET)
        with pytest.raises(SimulationError):
            Simulation(circuit).simulate()


class TestInputOrderRaces:
    def test_pl402_confirmed_by_seed_sweep(self):
        """set/rst at the same instant, clk later: which pulse wins decides
        whether q fires — distinct outcomes across tie-break seeds."""
        analysis, _ = analyze_reach(build_racy_dro_sr(with_clk=True),
                                    budget=BUDGET)
        races = [(r.port_a, r.port_b, r.state, r.confidence)
                 for r in analysis.races]
        assert ("a", "rst", "idle", "confirmed") in races, analysis.races

    def test_pl402_possible_when_outcomes_invisible(self):
        """Without a later clk the racing branch never differs observably:
        the zone-level race is real but replay cannot confirm it."""
        analysis, _ = analyze_reach(build_racy_dro_sr(with_clk=False),
                                    budget=BUDGET)
        races = [(r.port_a, r.port_b, r.confidence) for r in analysis.races]
        assert ("a", "rst", "possible") in races, analysis.races

    def test_race_window_is_the_common_instant(self):
        analysis, _ = analyze_reach(build_racy_dro_sr(), budget=BUDGET)
        (race,) = [r for r in analysis.races if r.state == "idle"]
        assert race.window == (30.0, 30.0)

    def test_race_severity_tracks_confidence(self):
        report = lint_circuit(build_racy_dro_sr(with_clk=True), reach=True,
                              reach_budget=BUDGET)
        confirmed = [f for f in report.findings if f.rule == "PL402"]
        assert confirmed and all(
            f.severity == Severity.WARNING for f in confirmed
        )
        report = lint_circuit(build_racy_dro_sr(with_clk=False), reach=True,
                              reach_budget=BUDGET)
        possible = [f for f in report.findings if f.rule == "PL402"]
        assert possible and all(
            f.severity == Severity.INFO for f in possible
        )


class TestBudgetTruncation:
    def test_truncated_analysis_reports_reason_and_partial_results(self):
        budget = ReachBudget(max_states=5, time_limit=None)
        analysis, _ = analyze_reach(build_broken_and(), budget=budget)
        assert analysis.truncated
        assert analysis.truncation_reason == "max_states"
        assert analysis.states_explored <= 5

    def test_truncation_withholds_pl401(self):
        """A partial exploration cannot prove a transition never fires."""
        budget = ReachBudget(max_states=5, time_limit=None)
        analysis, _ = analyze_reach(build_broken_and(), budget=budget)
        assert analysis.dead == ()
        full, _ = analyze_reach(build_broken_and(), budget=BUDGET)
        assert not full.truncated and full.dead  # the full run does prove some

    def test_truncation_is_explicit_in_report(self):
        report = lint_circuit(
            build_broken_and(), reach=True,
            reach_budget=ReachBudget(max_states=5, time_limit=None),
        )
        assert report.reach["truncated"] is True
        assert report.reach["truncation_reason"] == "max_states"
        assert "truncated (max_states)" in report.render_text()

    def test_prefix_property(self):
        """A bigger budget only ever adds findings — the BFS prefix is
        stable, so CI truncation on a slow machine cannot invent a new
        finding relative to a baseline built with a larger budget."""
        keys = []
        for max_states in (10, 100, 8000):
            analysis, _ = analyze_reach(
                build_broken_and(),
                budget=ReachBudget(max_states=max_states, time_limit=None),
            )
            keys.append({
                (t.node, t.kind, t.symbol) for t in analysis.timing
            })
        assert keys[0] <= keys[1] <= keys[2]


class TestIncrementalCache:
    def test_same_structure_hits_cache(self):
        stats0 = reach_cache_stats()
        a1, cached1 = analyze_reach(build_broken_and(), budget=BUDGET)
        # A fresh, structurally identical elaboration hits the cache.
        a2, cached2 = analyze_reach(build_broken_and(), budget=BUDGET)
        stats1 = reach_cache_stats()
        assert (cached1, cached2) == (False, True)
        assert a2 is a1
        assert stats1["hits"] == stats0["hits"] + 1
        assert stats1["misses"] == stats0["misses"] + 1

    def test_budget_is_part_of_the_key(self):
        """A truncated small-budget analysis must never serve a
        larger-budget request."""
        small = ReachBudget(max_states=5, time_limit=None)
        a1, _ = analyze_reach(build_broken_and(), budget=small)
        a2, cached = analyze_reach(build_broken_and(), budget=BUDGET)
        assert not cached
        assert a1.truncated and not a2.truncated

    def test_rule_subset_is_part_of_the_key(self):
        a1, _ = analyze_reach(build_broken_and(), budget=BUDGET,
                              rules=("PL403",))
        a2, cached = analyze_reach(build_broken_and(), budget=BUDGET,
                                   rules=("PL401", "PL403"))
        assert not cached
        assert a1.timing and not a1.dead

    def test_report_marks_cache_hits(self):
        kwargs = dict(reach=True, reach_budget=BUDGET)
        cold = lint_circuit(build_broken_and(), **kwargs)
        warm = lint_circuit(build_broken_and(), **kwargs)
        assert cold.reach["cached"] is False
        assert warm.reach["cached"] is True
        assert [f.to_jsonable() for f in warm.findings] == [
            f.to_jsonable() for f in cold.findings
        ]

    def test_selection_changes_the_key_and_the_findings(self):
        """Ignoring a PL4xx rule narrows the analyzed subset — a different
        cache entry (the rule-set is in the key, so a narrow analysis can
        never be served for a wider request) and no PL401 findings."""
        kwargs = dict(reach=True, reach_budget=BUDGET)
        full = lint_circuit(build_broken_and(), **kwargs)
        filtered = lint_circuit(build_broken_and(), ignore="PL401", **kwargs)
        assert any(f.rule == "PL401" for f in full.findings)
        assert not any(f.rule == "PL401" for f in filtered.findings)
        assert filtered.reach["cached"] is False
        assert filtered.reach["rules"] == ["PL402", "PL403", "PL404"]
        # Same selection again: served from cache.
        again = lint_circuit(build_broken_and(), ignore="PL401", **kwargs)
        assert again.reach["cached"] is True


class TestReachLayerPlumbing:
    def test_not_requested_by_default(self):
        report = lint_circuit(build_broken_and())
        assert not report.reach and report.reach_skipped is None
        assert not any(f.rule.startswith("PL4") for f in report.findings)

    def test_skipped_without_cells(self):
        with fresh_circuit() as circuit:
            inp_at(10.0, name="A")
        report = lint_circuit(circuit, reach=True)
        assert report.reach_skipped == "no cells to analyze"
        assert "reach: skipped" in report.render_text()

    def test_structural_hash_always_on_report(self):
        report = lint_circuit(build_broken_and())
        assert report.structural_hash

    def test_deadlock_of_exhausted_schedule_not_reported(self):
        """'Good' deadlock (Section 5.3): a finished finite schedule with
        every machine at rest is expected, not a PL404 finding."""
        with fresh_circuit() as circuit:
            a = inp_at(30.0, 115.0, name="A")
            b = inp_at(65.0, 130.0, name="B")
            clk = inp_at(50.0, 100.0, 150.0, name="CLK")
            circuit.add_node(AND(), [a, b, clk], [Wire("OUT_q")])
        analysis, _ = analyze_reach(circuit, budget=BUDGET)
        assert not analysis.truncated
        assert analysis.stuck == ()
