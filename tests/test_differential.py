"""Differential harness: the fast and general drain loops must agree.

``_drain_fast`` is the reference semantics minus bookkeeping;
``_drain_general`` re-implements it with variability/trace/observer
support. This property locks the two together on random circuits (from
the generator in ``tests/test_random_circuits.py``, variability off):
identical event dictionaries, identical provenance graphs, identical
metrics — node for node, pulse for pulse, parent for parent.

Any drift between the loops (a hook called in a different order, a
different grouping of simultaneous pulses, a missed duplicate collapse)
shows up as a JSON-payload mismatch here.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.montecarlo import measure_yield
from repro.core.simulation import Simulation
from repro.obs import Observer

from test_parallel import minmax_factory, minmax_ok
from test_random_circuits import build_random_circuit


def run_fast(circuit):
    """Fast drain: no variability, no trace."""
    observer = Observer()
    events = Simulation(circuit).simulate(observer=observer)
    return events, observer


def run_general(circuit):
    """General drain: record=True forces the bookkeeping loop."""
    observer = Observer()
    events = Simulation(circuit).simulate(record=True, observer=observer)
    return events, observer


class TestDrainLoopsAgree:
    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 5),
        n_cells=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_events_and_provenance_identical(self, seed, n_inputs, n_cells):
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        fast_events, fast_obs = run_fast(circuit)
        gen_events, gen_obs = run_general(circuit)
        assert fast_events == gen_events
        assert fast_obs.graph.to_jsonable() == gen_obs.graph.to_jsonable()

    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 5),
        n_cells=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_metrics_identical(self, seed, n_inputs, n_cells):
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        _, fast_obs = run_fast(circuit)
        _, gen_obs = run_general(circuit)
        assert (
            fast_obs.metrics.to_jsonable() == gen_obs.metrics.to_jsonable()
        )

    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 4),
        n_cells=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_chains_of_every_output_identical(self, seed, n_inputs, n_cells):
        """Rendered causal chains agree wire-by-wire, pulse-by-pulse."""
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        _, fast_obs = run_fast(circuit)
        _, gen_obs = run_general(circuit)
        labels = sorted(fast_obs.graph.by_label)
        assert labels == sorted(gen_obs.graph.by_label)
        for label in labels:
            fast_pids = fast_obs.graph.pulses_on(label)
            gen_pids = gen_obs.graph.pulses_on(label)
            assert len(fast_pids) == len(gen_pids)
            for occurrence in range(len(fast_pids)):
                assert fast_obs.chain(label, occurrence) == gen_obs.chain(
                    label, occurrence
                )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_provenance_graph_covers_all_events(self, seed):
        """Every pulse instant on every wire has a provenance record.

        Counts can differ: two pulses fired onto the same wire at the
        same instant (e.g. a merger dispatched on both inputs at once)
        both land in the event series, but collapse into one delivered
        pulse in the heap — and the provenance graph mirrors what the
        simulator delivers, merging the duplicates' parents.
        """
        circuit = build_random_circuit(seed, n_inputs=3, n_cells=8)
        events, observer = run_fast(circuit)
        graph = observer.graph
        for label, times in events.items():
            pids = graph.pulses_on(label)
            recorded = [graph.record(p).time for p in pids]
            assert sorted(set(recorded)) == sorted(set(times))
            assert len(recorded) <= len(times)


class TestEngineMatchesSequential:
    """The pooled YieldEngine against the sequential reference path.

    ``engine="pool"`` routes through the cached default engine, so every
    example reuses the same warm pool and worker-resident circuits —
    precisely the state-carryover surface a per-seed bug would hide in.
    """

    @given(
        sigma=st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False),
        start=st.integers(0, 500),
        n_seeds=st.integers(2, 16),
    )
    @settings(max_examples=8, deadline=None)
    def test_outcomes_identical(self, sigma, start, n_seeds):
        seeds = range(start, start + n_seeds)
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=seeds, workers=1
        )
        pooled = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=seeds,
            workers=2, engine="pool",
        )
        assert pooled == sequential
        assert list(pooled.failures.items()) == list(
            sequential.failures.items()
        )

    @given(
        sigma=st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False),
        n_seeds=st.integers(2, 12),
    )
    @settings(max_examples=8, deadline=None)
    def test_stats_identical(self, sigma, n_seeds):
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=range(n_seeds),
            workers=1, collect_stats=True,
        )
        pooled = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=range(n_seeds),
            workers=2, engine="pool", collect_stats=True,
        )
        assert (
            pooled.stats.to_jsonable() == sequential.stats.to_jsonable()
        )


def _capturing(store):
    """Predicate that records the exact event dict it judged.

    ``json.dumps`` with sorted keys is a bit-exact float serialization,
    so any per-seed timestamp drift between the two drains flips the
    comparison below.
    """

    def predicate(events):
        store.append(json.dumps(events, sort_keys=True))
        return True

    return predicate


class TestBatchedMatchesSequential:
    """The vectorized batched drain against the per-seed reference.

    ``batch=0`` runs the same counter-based noise scheme one seed at a
    time; the batched drain (any lane width) must match element-wise:
    same outcomes in the same order, same failures dict, the same event
    dictionaries, and bit-identical aggregated stats — including when
    lanes diverge and are replayed. Event dicts are compared as a
    multiset because predicate call order may interleave batched and
    replayed lanes.
    """

    @given(
        circuit_seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 4),
        n_cells=st.integers(1, 10),
        sigma=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
        n_seeds=st.integers(1, 24),
        width=st.sampled_from([None, 1, 3, 17]),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_events_and_outcomes_identical(
        self, circuit_seed, n_inputs, n_cells, sigma, n_seeds, width
    ):
        def factory():
            return build_random_circuit(circuit_seed, n_inputs, n_cells)

        reference_events, batched_events = [], []
        reference = measure_yield(
            factory, _capturing(reference_events), sigma,
            seeds=range(n_seeds), batch=0,
        )
        batched = measure_yield(
            factory, _capturing(batched_events), sigma,
            seeds=range(n_seeds), batch=width,
        )
        assert batched == reference  # outcome tallies + failures by seed
        assert list(batched.failures.items()) == list(
            reference.failures.items()
        )
        assert sorted(batched_events) == sorted(reference_events)

    @given(
        sigma=st.floats(0.0, 40.0, allow_nan=False, allow_infinity=False),
        start=st.integers(0, 500),
        n_seeds=st.integers(1, 20),
        width=st.sampled_from([None, 1, 3, 17]),
    )
    @settings(max_examples=12, deadline=None)
    def test_stats_identical(self, sigma, start, n_seeds, width):
        seeds = range(start, start + n_seeds)
        reference = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=seeds,
            collect_stats=True, batch=0,
        )
        batched = measure_yield(
            minmax_factory, minmax_ok, sigma=sigma, seeds=seeds,
            collect_stats=True, batch=width,
        )
        assert batched == reference
        assert batched.stats.to_jsonable() == reference.stats.to_jsonable()

    def test_forced_divergence_still_identical(self):
        """At sigma far past the reorder threshold most lanes diverge;
        the replays must still reproduce the reference exactly."""
        seeds = range(120)
        reference = measure_yield(
            minmax_factory, minmax_ok, sigma=40.0, seeds=seeds, batch=0,
        )
        batched = measure_yield(
            minmax_factory, minmax_ok, sigma=40.0, seeds=seeds,
        )
        assert batched == reference
        assert list(batched.failures.items()) == list(
            reference.failures.items()
        )
        assert batched.fallback_seeds       # divergence actually happened
        assert sum(batched.divergence.values()) == len(
            batched.fallback_seeds
        )
        assert batched.batched_lanes + len(batched.fallback_seeds) == 120
