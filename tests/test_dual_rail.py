"""Tests for the dual-rail gate library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs.dual_rail import (
    dr_and,
    dr_equals,
    dr_fanout,
    dr_majority,
    dr_mux,
    dr_not,
    dr_or,
    dr_xor,
)


def rail(bit, name, at=10.0):
    true = inp_at(*([at] if bit else []), name=f"{name}_t")
    false = inp_at(*([] if bit else [at]), name=f"{name}_f")
    return (true, false)


def run_gate(gate, bits, names="abc"):
    with fresh_circuit() as circuit:
        rails = [rail(bit, names[k]) for k, bit in enumerate(bits)]
        out = gate(*rails)
        out[0].observe("out_t")
        out[1].observe("out_f")
    events = Simulation(circuit).simulate()
    t, f = len(events["out_t"]), len(events["out_f"])
    assert t + f == 1, "dual-rail completion: exactly one rail fires"
    return t == 1


class TestGates:
    @pytest.mark.parametrize("a", [0, 1])
    def test_not(self, a):
        assert run_gate(dr_not, [a]) == (not a)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_and(self, a, b):
        assert run_gate(dr_and, [a, b]) == bool(a and b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_or(self, a, b):
        assert run_gate(dr_or, [a, b]) == bool(a or b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_xor(self, a, b):
        assert run_gate(dr_xor, [a, b]) == bool(a != b)

    @pytest.mark.parametrize("combo", range(8))
    def test_majority(self, combo):
        bits = [(combo >> k) & 1 for k in range(3)]
        assert run_gate(dr_majority, bits) == (sum(bits) >= 2)

    @pytest.mark.parametrize("combo", range(8))
    def test_mux(self, combo):
        sel, a, b = [(combo >> k) & 1 for k in range(3)]
        expected = a if sel else b
        assert run_gate(dr_mux, [sel, a, b], names="sab") == bool(expected)


class TestFanout:
    def test_copies_preserve_value(self):
        with fresh_circuit() as circuit:
            copies = dr_fanout(rail(1, "a"), 3)
            for k, (t, f) in enumerate(copies):
                t.observe(f"c{k}_t")
                f.observe(f"c{k}_f")
        events = Simulation(circuit).simulate()
        for k in range(3):
            assert len(events[f"c{k}_t"]) == 1
            assert len(events[f"c{k}_f"]) == 0

    def test_needs_two(self):
        with fresh_circuit():
            with pytest.raises(PylseError):
                dr_fanout(rail(1, "a"), 1)


class TestEquality:
    @given(
        a=st.integers(0, 7),
        b=st.integers(0, 7),
    )
    @settings(max_examples=30, deadline=None)
    def test_three_bit_equality(self, a, b):
        with fresh_circuit() as circuit:
            a_bits = [rail((a >> k) & 1, f"a{k}") for k in range(3)]
            b_bits = [rail((b >> k) & 1, f"b{k}") for k in range(3)]
            out = dr_equals(a_bits, b_bits)
            out[0].observe("eq_t")
            out[1].observe("eq_f")
        events = Simulation(circuit).simulate()
        assert (len(events["eq_t"]) == 1) == (a == b)
        assert len(events["eq_t"]) + len(events["eq_f"]) == 1

    def test_mismatched_widths_rejected(self):
        with fresh_circuit():
            with pytest.raises(PylseError):
                dr_equals([rail(1, "a")], [])


class TestLoopGuard:
    def test_runaway_loop_raises(self):
        """The max_pulses guard catches un-horizoned feedback loops."""
        from repro.core.circuit import working_circuit
        from repro.core.errors import SimulationError
        from repro.core.wire import Wire
        from repro.sfq import M, S

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            loop, merged = Wire("loop"), Wire("merged")
            working_circuit().add_node(M(), [a, loop], [merged])
            out = Wire("OUT")
            working_circuit().add_node(S(), [merged], [out, loop])
        with pytest.raises(SimulationError, match="feedback loop"):
            Simulation(circuit).simulate(max_pulses=500)

    def test_guard_disabled_with_until(self):
        from repro.core.circuit import working_circuit
        from repro.core.wire import Wire
        from repro.sfq import M, S

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            loop, merged = Wire("loop"), Wire("merged")
            working_circuit().add_node(M(), [a, loop], [merged])
            out = Wire("OUT")
            working_circuit().add_node(S(), [merged], [out, loop])
        events = Simulation(circuit).simulate(until=200.0)
        assert events["OUT"]
