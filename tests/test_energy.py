"""Tests for switching-activity tracking and energy estimation."""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.energy import E_JJ, energy_report
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs import min_max
from repro.sfq import JTL, and_s, jtl, s


class TestActivityTracking:
    def test_counts_in_and_out(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["jtl0"] == [2, 2]

    def test_splitter_emits_two_per_input(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            s(a)
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["s0"] == [1, 2]

    def test_and_consumes_all_clocks(self):
        with fresh_circuit() as circuit:
            a = inp_at(30.0, name="A")
            b = inp_at(35.0, name="B")
            clk = inp(start=50, period=50, n=3, name="CLK")
            and_s(a, b, clk, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["and0"] == [5, 1]   # a, b, 3 clks in; 1 q out


class TestEnergyReport:
    def test_requires_simulation(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, name="Q")
        with pytest.raises(PylseError, match="simulate"):
            energy_report(Simulation(circuit))

    def test_jtl_energy_scales_with_pulses(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, 50.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        assert report.total_joules == pytest.approx(3 * JTL.jjs * E_JJ)

    def test_sub_attojoule_per_switch(self):
        """The paper's motivation: sub-attojoule switching (E_jj < 1 aJ)."""
        assert E_JJ < 1e-18

    def test_min_max_breakdown(self):
        with fresh_circuit() as circuit:
            a = inp_at(115.0, name="A")
            b = inp_at(64.0, name="B")
            low, high = min_max(a, b)
            low.observe("low")
            high.observe("high")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        per_type = report.by_cell_type()
        assert set(per_type) == {"S", "C", "C_INV", "JTL"}
        assert report.total_attojoules > 0
        assert "total:" in report.render()

    def test_holes_count_zero(self):
        from repro.core.functional import hole

        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def passthrough(a, time):
            return a

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            q = passthrough(a)
            q.observe("Q")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        assert report.total_joules == 0.0


class TestDatasheets:
    def test_datasheet_contents(self):
        from repro.sfq import AND
        from repro.sfq.datasheet import datasheet

        text = datasheet(AND)
        assert "Cell: AND" in text
        assert "JJs: 11" in text
        assert "q@9.2" in text
        assert "*>=2.8" in text

    def test_dot_export_valid_shape(self):
        from repro.sfq import DRO
        from repro.sfq.datasheet import machine_to_dot

        dot = machine_to_dot(DRO()._class_machine())
        assert dot.startswith('digraph "DRO"')
        assert dot.rstrip().endswith("}")
        assert '"idle" -> "a_arr"' in dot
        assert dot.count("->") == 4 + 1   # transitions + start marker

    def test_transition_table_rows(self):
        from repro.sfq import JOIN
        from repro.sfq.datasheet import transition_table

        table = transition_table(JOIN()._class_machine())
        assert len(table.splitlines()) == 20 + 2   # rows + header + rule

    def test_all_cells_have_datasheets(self):
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS
        from repro.sfq.datasheet import datasheet

        for cell in BASIC_CELLS + EXTENSION_CELLS:
            assert f"Cell: {cell.name}" in datasheet(cell)


class TestCostModel:
    """Static per-cell cost models (jjs -> bias / power / area)."""

    def test_cell_cost_matches_jjs_table(self):
        from repro.core.energy import (
            AREA_PER_JJ_UM2,
            I_BIAS_PER_JJ_A,
            P_STATIC_PER_JJ_W,
            cell_cost,
        )
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

        for cell_class in BASIC_CELLS + EXTENSION_CELLS:
            cost = cell_cost(cell_class())
            assert cost.cell == cell_class.name
            assert cost.jjs == cell_class.jjs
            assert cost.switching_energy_j == pytest.approx(
                cell_class.jjs * E_JJ
            )
            assert cost.bias_current_a == pytest.approx(
                cell_class.jjs * I_BIAS_PER_JJ_A
            )
            assert cost.static_power_w == pytest.approx(
                cell_class.jjs * P_STATIC_PER_JJ_W
            )
            assert cost.area_um2 == pytest.approx(
                cell_class.jjs * AREA_PER_JJ_UM2
            )

    def test_cell_cost_known_values(self):
        from repro.core.energy import cell_cost
        from repro.sfq import AND, JTL, S

        assert cell_cost(AND()).jjs == 11
        assert cell_cost(JTL()).jjs == 2
        assert cell_cost(S()).jjs == 3
        # 70 uA per junction at the 0.7 Ic bias point.
        assert cell_cost(JTL()).bias_current_a == pytest.approx(2 * 7e-5)

    def test_cell_cost_respects_override(self):
        from repro.core.energy import AREA_PER_JJ_UM2, cell_cost
        from repro.sfq import jtl

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, jjs=40, name="Q")
        (node,) = circuit.cells()
        cost = cell_cost(node.element)
        assert cost.jjs == 40
        assert cost.area_um2 == pytest.approx(40 * AREA_PER_JJ_UM2)

    def test_circuit_cost_sums_min_max(self):
        from repro.core.energy import (
            AREA_PER_JJ_UM2,
            P_STATIC_PER_JJ_W,
            circuit_cost,
        )

        with fresh_circuit() as circuit:
            a = inp_at(115.0, name="A")
            b = inp_at(64.0, name="B")
            low, high = min_max(a, b)
            low.observe("low")
            high.observe("high")
        cost = circuit_cost(circuit)
        assert cost.cells == len(list(circuit.cells()))
        expected_jjs = sum(
            getattr(node.element, "jjs", 0) for node in circuit.cells()
        )
        assert cost.jjs == expected_jjs
        assert cost.area_um2 == pytest.approx(expected_jjs * AREA_PER_JJ_UM2)
        assert cost.static_power_w == pytest.approx(
            expected_jjs * P_STATIC_PER_JJ_W
        )
        assert set(cost.by_cell_type) == {"S", "C", "C_INV", "JTL"}
        assert sum(cost.by_cell_type.values()) == cost.cells
        assert "junctions:" in cost.render()

    def test_circuit_cost_holes_are_free(self):
        from repro.core.energy import circuit_cost
        from repro.core.functional import hole

        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def passthrough(a, time):
            return a

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            q = jtl(passthrough(a), name="Q")
            q.observe("Q")
        cost = circuit_cost(circuit)
        # The hole is a placed cell with zero junctions; the JTL is not.
        assert cost.cells == 2
        assert cost.jjs == 2
        assert cost.by_cell_type["JTL"] == 1

    def test_energy_report_mixed_holes_and_cells(self):
        from repro.core.functional import hole

        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def passthrough(a, time):
            return a

        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, name="A")
            q = jtl(passthrough(a), name="Q")
            q.observe("Q")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        # Only the JTL contributes energy; the hole rows exist with jjs 0.
        assert report.total_joules == pytest.approx(2 * JTL.jjs * E_JJ)
        by_jjs = {cell.cell: cell.jjs for cell in report.cells}
        assert by_jjs["JTL"] == JTL.jjs
        assert min(by_jjs.values()) == 0

    def test_memory_design_energy_report(self):
        from repro.designs import make_memory_n, memory_port_names

        with fresh_circuit() as circuit:
            mem = make_memory_n(4, 2)
            names = memory_port_names(4, 2)
            times = {name: [] for name in names}
            times["clk"] = [50.0]
            wires = [inp_at(*times[name], name=name) for name in names]
            outs = mem(*wires)
            for k, wire in enumerate(outs):
                wire.observe(f"q{k}")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        assert report.total_joules == 0.0
        assert len(report.cells) == 1
