"""Tests for switching-activity tracking and energy estimation."""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.energy import E_JJ, energy_report
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs import min_max
from repro.sfq import JTL, and_s, jtl, s


class TestActivityTracking:
    def test_counts_in_and_out(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["jtl0"] == [2, 2]

    def test_splitter_emits_two_per_input(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            s(a)
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["s0"] == [1, 2]

    def test_and_consumes_all_clocks(self):
        with fresh_circuit() as circuit:
            a = inp_at(30.0, name="A")
            b = inp_at(35.0, name="B")
            clk = inp(start=50, period=50, n=3, name="CLK")
            and_s(a, b, clk, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        assert sim.activity["and0"] == [5, 1]   # a, b, 3 clks in; 1 q out


class TestEnergyReport:
    def test_requires_simulation(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, name="Q")
        with pytest.raises(PylseError, match="simulate"):
            energy_report(Simulation(circuit))

    def test_jtl_energy_scales_with_pulses(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, 50.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        assert report.total_joules == pytest.approx(3 * JTL.jjs * E_JJ)

    def test_sub_attojoule_per_switch(self):
        """The paper's motivation: sub-attojoule switching (E_jj < 1 aJ)."""
        assert E_JJ < 1e-18

    def test_min_max_breakdown(self):
        with fresh_circuit() as circuit:
            a = inp_at(115.0, name="A")
            b = inp_at(64.0, name="B")
            low, high = min_max(a, b)
            low.observe("low")
            high.observe("high")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        per_type = report.by_cell_type()
        assert set(per_type) == {"S", "C", "C_INV", "JTL"}
        assert report.total_attojoules > 0
        assert "total:" in report.render()

    def test_holes_count_zero(self):
        from repro.core.functional import hole

        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def passthrough(a, time):
            return a

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            q = passthrough(a)
            q.observe("Q")
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        assert report.total_joules == 0.0


class TestDatasheets:
    def test_datasheet_contents(self):
        from repro.sfq import AND
        from repro.sfq.datasheet import datasheet

        text = datasheet(AND)
        assert "Cell: AND" in text
        assert "JJs: 11" in text
        assert "q@9.2" in text
        assert "*>=2.8" in text

    def test_dot_export_valid_shape(self):
        from repro.sfq import DRO
        from repro.sfq.datasheet import machine_to_dot

        dot = machine_to_dot(DRO()._class_machine())
        assert dot.startswith('digraph "DRO"')
        assert dot.rstrip().endswith("}")
        assert '"idle" -> "a_arr"' in dot
        assert dot.count("->") == 4 + 1   # transitions + start marker

    def test_transition_table_rows(self):
        from repro.sfq import JOIN
        from repro.sfq.datasheet import transition_table

        table = transition_table(JOIN()._class_machine())
        assert len(table.splitlines()) == 20 + 2   # rows + header + rule

    def test_all_cells_have_datasheets(self):
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS
        from repro.sfq.datasheet import datasheet

        for cell in BASIC_CELLS + EXTENSION_CELLS:
            assert f"Cell: {cell.name}" in datasheet(cell)
