"""Tests for wires, nodes, and the circuit workspace (Section 4.2 checks)."""

import pytest

from repro.core.circuit import (
    Circuit,
    fresh_circuit,
    reset_working_circuit,
    working_circuit,
)
from repro.core.element import InGen
from repro.core.errors import FanoutError, PylseError, WireError
from repro.core.helpers import inp, inp_at, inspect
from repro.core.wire import Wire
from repro.sfq import and_s, jtl, m, s, split


class TestWire:
    def test_auto_names_are_sequential(self):
        assert Wire().name == "_0"
        assert Wire().name == "_1"

    def test_user_name(self):
        w = Wire("A")
        assert w.name == "A"
        assert w.is_user_named

    def test_observe_sets_alias(self):
        w = Wire()
        w.observe("Q")
        assert w.observed_as == "Q"
        assert w.is_user_named

    def test_empty_name_rejected(self):
        with pytest.raises(WireError):
            Wire("")

    def test_non_string_name_rejected(self):
        with pytest.raises(WireError):
            Wire(42)  # type: ignore[arg-type]

    def test_bad_observe_rejected(self):
        with pytest.raises(WireError):
            Wire().observe("")


class TestFanout:
    def test_wire_reuse_raises_fanout_error(self):
        a = inp_at(10.0, name="A")
        jtl(a)
        with pytest.raises(FanoutError, match="splitter"):
            jtl(a)

    def test_split_allows_reuse(self):
        a = inp_at(10.0, name="A")
        a0, a1 = s(a)
        jtl(a0)
        jtl(a1)  # no error

    def test_undriven_wire_rejected_at_validation(self):
        # Consuming an undriven wire is allowed at add time (feedback loops
        # are built forward), but validation must reject it.
        jtl(Wire("floating"))
        with pytest.raises(WireError, match="no driver"):
            working_circuit().validate()


class TestSplit:
    def test_split_two(self):
        a = inp_at(5.0, name="A")
        outs = split(a)
        assert len(outs) == 2
        assert len(working_circuit().cells()) == 1

    def test_split_n_creates_n_minus_1_splitters(self):
        a = inp_at(5.0, name="A")
        outs = split(a, n=5)
        assert len(outs) == 5
        assert len(working_circuit().cells()) == 4

    def test_split_names(self):
        a = inp_at(5.0, name="A")
        outs = split(a, n=3, names="x y z")
        assert [w.observed_as for w in outs] == ["x", "y", "z"]

    def test_split_n_below_two_rejected(self):
        a = inp_at(5.0, name="A")
        with pytest.raises(PylseError):
            split(a, n=1)

    def test_split_wrong_name_count_rejected(self):
        a = inp_at(5.0, name="A")
        with pytest.raises(PylseError, match="name"):
            split(a, n=3, names=["only", "two"])


class TestCircuit:
    def test_nodes_named_per_type(self):
        a = inp_at(5.0, name="A")
        l, r = s(a)
        jtl(l)
        jtl(r)
        names = [n.name for n in working_circuit().cells()]
        assert names == ["s0", "jtl0", "jtl1"]

    def test_output_wires_are_unconsumed(self):
        a = inp_at(5.0, name="A")
        q = jtl(a, name="Q")
        outs = working_circuit().output_wires()
        assert outs == [q]

    def test_validate_empty_circuit(self):
        with pytest.raises(PylseError, match="empty"):
            Circuit().validate()

    def test_observe_duplicate_name_collides_loudly(self):
        # The alias collision is rejected at the observe() call site, not
        # deferred to validate().
        inp_at(5.0, name="X")
        other = inp_at(6.0)
        with pytest.raises(WireError, match="same name"):
            inspect(other, "X")

    def test_duplicate_creation_names_collide_at_add(self):
        inp_at(5.0, name="X")
        with pytest.raises(WireError, match="same name"):
            inp_at(6.0, name="X")

    def test_observe_unregistered_wire_collides_when_driven(self):
        # A floating wire has no circuit yet, so observe() cannot check it;
        # the collision surfaces when its driver is finally placed.
        from repro.sfq import JTL

        inp_at(5.0, name="X")
        floating = Wire()
        floating.observe("X")  # no error: not registered anywhere yet
        a = inp_at(1.0, name="A")
        with pytest.raises(WireError, match="same name"):
            working_circuit().add_node(JTL(), [a], [floating])

    def test_find_wire_by_name_and_alias(self):
        a = inp_at(5.0, name="A")
        q = jtl(a)
        inspect(q, "Q")
        circuit = working_circuit()
        assert circuit.find_wire("A") is a
        assert circuit.find_wire("Q") is q
        with pytest.raises(WireError):
            circuit.find_wire("nope")

    def test_find_wire_tracks_re_observation(self):
        a = inp_at(5.0, name="A")
        q = jtl(a)
        inspect(q, "Q1")
        inspect(q, "Q2")
        circuit = working_circuit()
        assert circuit.find_wire("Q2") is q
        with pytest.raises(WireError):
            circuit.find_wire("Q1")  # the old alias is gone

    def test_find_wire_scales_without_linear_scan(self):
        # The index makes repeated lookups O(1); just check correctness
        # over a larger batch of named wires.
        wires = [inp_at(float(i), name=f"w{i}") for i in range(200)]
        circuit = working_circuit()
        for i, w in enumerate(wires):
            assert circuit.find_wire(f"w{i}") is w

    def test_fresh_circuit_isolates(self):
        inp_at(5.0, name="A")
        before = len(working_circuit())
        with fresh_circuit() as inner:
            w = inp_at(1.0, name="B")
            jtl(w)
            assert len(inner) == 2
        assert len(working_circuit()) == before

    def test_reset_working_circuit_restarts_names(self):
        Wire()
        reset_working_circuit()
        assert Wire().name == "_0"

    def test_cells_excludes_input_generators(self):
        a = inp_at(5.0, name="A")
        jtl(a)
        circuit = working_circuit()
        assert len(circuit.cells()) == 1
        assert len(circuit.input_nodes()) == 1
        assert isinstance(circuit.input_nodes()[0].element, InGen)


class TestHelpers:
    def test_inp_at_creates_sorted_times(self):
        a = inp_at(30.0, 10.0, 20.0, name="A")
        gen = working_circuit().input_nodes()[0].element
        assert gen.times == (10.0, 20.0, 30.0)
        assert a.name == "A"

    def test_inp_periodic(self):
        inp(start=50, period=50, n=3, name="CLK")
        gen = working_circuit().input_nodes()[0].element
        assert gen.times == (50.0, 100.0, 150.0)

    def test_inp_zero_n_rejected(self):
        with pytest.raises(PylseError):
            inp(n=0)

    def test_inp_multi_needs_period(self):
        with pytest.raises(PylseError, match="period"):
            inp(start=0, period=0, n=2)

    def test_negative_time_rejected(self):
        with pytest.raises(PylseError):
            inp_at(-5.0)

    def test_inp_at_empty_is_logical_zero(self):
        a = inp_at(name="A")
        gen = working_circuit().input_nodes()[0].element
        assert gen.times == ()
        assert a.name == "A"

    def test_inspect_requires_wire(self):
        with pytest.raises(PylseError):
            inspect("not-a-wire", "X")  # type: ignore[arg-type]


class TestWrapperArgs:
    def test_name_on_multi_output_cell_rejected(self):
        a = inp_at(5.0, name="A")
        with pytest.raises(PylseError):
            s(a, name="bad")  # type: ignore[call-arg]

    def test_names_and_name_not_both(self):
        a = inp_at(5.0, name="A")
        b = inp_at(6.0, name="B")
        clk = inp_at(7.0, name="C")
        with pytest.raises(PylseError):
            and_s(a, b, clk, name="x", names=["y"])  # type: ignore[call-arg]

    def test_non_wire_input_rejected(self):
        with pytest.raises(PylseError, match="Wire"):
            jtl("zap")  # type: ignore[arg-type]
