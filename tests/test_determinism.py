"""Determinism guarantees of the seeded simulator.

The fast-path/general-path split in ``Simulation.simulate`` and the flat
pulse heap must not change the reference semantics: the same seed must give
bit-identical events under variability, and simultaneous pulses must be
dispatched in the same (seeded) order every run.
"""

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_sorter
from repro.sfq.functions import c, xor_s

SORT_TIMES = (20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0)


def named(events):
    """Only user-named wires: auto ``_N`` labels shift between separate
    elaborations (the global wire counter keeps counting), so cross-circuit
    comparisons are meaningful on observed names only."""
    return {k: v for k, v in events.items() if not k.startswith("_")}


def build_bitonic():
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(SORT_TIMES)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
    return circuit


def build_simultaneous():
    """Two pulses arriving at the same instant on one C element."""
    with fresh_circuit() as circuit:
        a = inp_at(10.0, 40.0, name="A")
        b = inp_at(10.0, 40.0, name="B")
        c(a, b, name="Q")
    return circuit


class TestSeededVariability:
    def test_same_seed_identical_events(self):
        run = lambda: Simulation(build_bitonic()).simulate(
            variability={"stddev": 1.0}, seed=7
        )
        first, second = run(), run()
        assert named(first) == named(second)

    def test_resimulating_one_circuit_is_stable(self):
        circuit = build_bitonic()
        sim = Simulation(circuit)
        first = sim.simulate(variability=True, seed=3)
        second = sim.simulate(variability=True, seed=3)
        assert first == second

    def test_different_seeds_differ(self):
        base = Simulation(build_bitonic()).simulate(
            variability={"stddev": 1.0}, seed=1
        )
        other = Simulation(build_bitonic()).simulate(
            variability={"stddev": 1.0}, seed=2
        )
        assert named(base) != named(other)

    def test_variability_matches_trace_recording_run(self):
        """record=True must not change pulse times (same general path RNG)."""
        plain = Simulation(build_bitonic()).simulate(
            variability={"stddev": 0.5}, seed=11
        )
        sim = Simulation(build_bitonic())
        traced = sim.simulate(variability={"stddev": 0.5}, seed=11, record=True)
        assert named(plain) == named(traced)
        assert sim.trace


class TestSimultaneousTieBreak:
    def test_seeded_dispatch_order_is_reproducible(self):
        def run():
            sim = Simulation(build_simultaneous())
            events = sim.simulate(seed=5, record=True)
            order = [(entry.time, entry.node, entry.ports) for entry in sim.trace]
            return events, order

        (events_a, order_a), (events_b, order_b) = run(), run()
        assert events_a == events_b
        assert order_a == order_b

    def test_unseeded_dispatch_is_deterministic(self):
        runs = [
            Simulation(build_simultaneous()).simulate() for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_fast_and_general_paths_agree(self):
        """The no-variability fast loop and the record=True general loop
        must produce identical events for the same circuit."""
        with_trace = Simulation(build_simultaneous()).simulate(record=True)
        without = Simulation(build_simultaneous()).simulate()
        assert with_trace == without

    def test_fanin_tie_from_two_cells(self):
        """Pulses from distinct upstream cells landing simultaneously."""
        def build():
            with fresh_circuit() as circuit:
                a = inp_at(10.0, name="A")
                b = inp_at(10.0, name="B")
                clk = inp_at(30.0, 80.0, name="CLK")
                xor_s(a, b, clk, name="Q")
            return circuit

        runs = [Simulation(build()).simulate(seed=9) for _ in range(2)]
        assert runs[0] == runs[1]
