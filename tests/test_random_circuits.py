"""Randomized whole-stack tests: generated circuits through every backend.

A hypothesis strategy builds random acyclic networks of the asynchronous
cells (JTL, S, M, C, InvC) with widely spaced single-pulse inputs, then
checks cross-cutting invariants:

* simulation completes without timing violations and is deterministic;
* JSON serialization round-trips to identical events;
* pulse conservation: mergers/splitters/JTLs neither create nor lose
  pulses beyond their cell semantics (checked via activity counters);
* for small instances, the TA translation + model checker agrees with the
  simulation (Queries 1 + 2 satisfied).
"""

import random as stdlib_random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.serialize import circuit_from_json, circuit_to_json
from repro.core.simulation import Simulation
from repro.mc import verify_design
from repro.sfq import c, c_inv, jtl, m, s


def build_random_circuit(seed: int, n_inputs: int, n_cells: int):
    """Deterministically build a random acyclic async circuit."""
    rng = stdlib_random.Random(seed)
    with fresh_circuit() as circuit:
        pool = [
            inp_at(40.0 + 120.0 * k, name=f"in{k}")
            for k in range(n_inputs)
        ]
        for _ in range(n_cells):
            kind = rng.choice(["jtl", "s", "m", "c", "c_inv"])
            if kind in ("m", "c", "c_inv") and len(pool) < 2:
                kind = "jtl"
            if kind == "jtl":
                wire = pool.pop(rng.randrange(len(pool)))
                pool.append(jtl(wire))
            elif kind == "s":
                wire = pool.pop(rng.randrange(len(pool)))
                left, right = s(wire)
                pool += [left, right]
            else:
                first = pool.pop(rng.randrange(len(pool)))
                second = pool.pop(rng.randrange(len(pool)))
                builder = {"m": m, "c": c, "c_inv": c_inv}[kind]
                pool.append(builder(first, second))
        for k, wire in enumerate(pool):
            wire.observe(f"out{k}")
    return circuit


class TestRandomCircuits:
    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 5),
        n_cells=st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_simulation_completes_and_is_deterministic(
        self, seed, n_inputs, n_cells
    ):
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        first = Simulation(circuit).simulate()
        second = Simulation(circuit).simulate()
        assert first == second

    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 4),
        n_cells=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip_preserves_events(
        self, seed, n_inputs, n_cells
    ):
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert Simulation(rebuilt).simulate() == Simulation(circuit).simulate()

    @given(
        seed=st.integers(0, 10_000),
        n_inputs=st.integers(2, 4),
        n_cells=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_activity_conservation(self, seed, n_inputs, n_cells):
        """Per cell type: outputs emitted match the cell's contract."""
        circuit = build_random_circuit(seed, n_inputs, n_cells)
        sim = Simulation(circuit)
        sim.simulate()
        for node in circuit.cells():
            pulses_in, pulses_out = sim.activity[node.name]
            cell = node.element.name
            if cell == "JTL":
                assert pulses_out == pulses_in
            elif cell == "S":
                assert pulses_out == 2 * pulses_in
            elif cell == "M":
                assert pulses_out == pulses_in
            elif cell == "C":
                assert pulses_out <= pulses_in // 2
            elif cell == "C_INV":
                # Fires on firsts: at most one per pulse, at least one if
                # any pulse arrived.
                assert (pulses_out >= 1) == (pulses_in >= 1)

    @given(
        seed=st.integers(0, 500),
        n_cells=st.integers(1, 3),
    )
    @settings(max_examples=8, deadline=None)
    def test_small_instances_verify(self, seed, n_cells):
        circuit = build_random_circuit(seed, n_inputs=2, n_cells=n_cells)
        report = verify_design(circuit, max_states=60_000, time_limit=30)
        if report.result.completed:
            assert report.ok, report.result.violations[:3]
