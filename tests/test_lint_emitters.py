"""Emitter tests: text rendering plus golden JSON and SARIF 2.1.0 outputs.

The golden files under tests/goldens_lint/ pin the exact report formats; an
intentional format change must regenerate them (see the module docstring of
tools/gen_lint_goldens.py).
"""

import json
import pathlib

from repro.core.helpers import inp_at
from repro.lint import (
    json_payload,
    lint_circuit,
    render_text,
    sarif_payload,
    sarif_rule_index,
)
from repro.sfq import and_s, jtl

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens_lint"


def build_reference_circuit():
    """A small deterministic circuit with one finding of each severity:
    a guaranteed setup violation (error), a dangling wire (warning) — and,
    in isolation, a statically-safe margin (info) is exercised elsewhere."""
    a = inp_at(10.0, name="a")
    b = inp_at(10.0, name="b")
    clk = inp_at(12.0, name="clk")
    and_s(jtl(a), jtl(b), jtl(clk), name="q")
    spare = inp_at(0.0, name="spare")
    jtl(spare)  # dangling: PL202
    return lint_circuit(design="reference")


def _dump(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestGoldens:
    def test_json_matches_golden(self):
        report = build_reference_circuit()
        golden = (GOLDEN_DIR / "reference.json").read_text()
        assert _dump(json_payload([report])) == golden

    def test_sarif_matches_golden(self):
        report = build_reference_circuit()
        golden = (GOLDEN_DIR / "reference.sarif").read_text()
        assert _dump(sarif_payload([report])) == golden


class TestSarifStructure:
    def test_sarif_is_2_1_0(self):
        report = build_reference_circuit()
        doc = sarif_payload([report])
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_rule_indices_align(self):
        report = build_reference_circuit()
        doc = sarif_payload([report])
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == sorted(r["id"] for r in rules)
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_severity_levels_map_to_sarif(self):
        _, index = sarif_rule_index()
        report = build_reference_circuit()
        doc = sarif_payload([report])
        levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
        assert levels["PL301"] == "error"
        assert levels["PL202"] == "warning"
        assert set(index) >= set(levels)

    def test_logical_locations_carry_design(self):
        report = build_reference_circuit()
        doc = sarif_payload([report])
        loc = doc["runs"][0]["results"][0]["locations"][0]["logicalLocations"][0]
        assert loc["fullyQualifiedName"].startswith("reference::")
        assert loc["kind"] in {"node", "port", "wire", "machine", "circuit"}

    def test_violation_path_rides_in_properties(self):
        report = build_reference_circuit()
        doc = sarif_payload([report])
        pl301 = [
            r for r in doc["runs"][0]["results"] if r["ruleId"] == "PL301"
        ]
        assert pl301
        assert any("in:clk@12" in hop
                   for r in pl301 for hop in r["properties"]["path"])


class TestJsonAndText:
    def test_json_payload_shape(self):
        report = build_reference_circuit()
        payload = json_payload([report])
        assert payload["format"] == "repro-lint-v1"
        (entry,) = payload["reports"]
        assert entry["design"] == "reference"
        assert entry["counts"]["error"] == 2
        rules = {f["rule"] for f in entry["findings"]}
        assert {"PL301", "PL202"} <= rules

    def test_text_render(self):
        report = build_reference_circuit()
        text = render_text([report])
        assert text.startswith("== reference ==")
        assert "PL301 error" in text
        assert "in:clk@12" in text
        assert "summary: 2 error(s)" in text
