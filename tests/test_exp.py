"""Tests for the experiment harnesses (repro.exp)."""

import pytest

from repro.core.transitional import Transitional
from repro.exp import dynamic_checks, figures, registry as registry_mod, table2, table3
from repro.exp.registry import build_in_fresh_circuit, pylse_stats, registry


class TestRegistry:
    def test_22_designs_in_table3_order(self):
        entries = registry()
        assert len(entries) == 22
        assert [e.name for e in entries[:5]] == ["C", "C_INV", "M", "S", "JTL"]
        assert entries[-1].name == "Bitonic Sort 8"

    def test_all_entries_build_and_simulate(self):
        from repro.core.simulation import Simulation

        for entry in registry():
            circuit = build_in_fresh_circuit(entry)
            events = Simulation(circuit).simulate()
            assert events, entry.name

    def test_pylse_stats_counts_cells(self):
        entry = next(e for e in registry() if e.name == "Min-Max")
        circuit = build_in_fresh_circuit(entry)
        stats = pylse_stats(circuit)
        assert stats == {"cells": 5, "states": 9, "transitions": 15}

    def test_basic_cells_have_dsl_size(self):
        for entry in registry():
            assert entry.dsl_size > 0

    def test_bitonic8_has_120_cells(self):
        entry = next(e for e in registry() if e.name == "Bitonic Sort 8")
        circuit = build_in_fresh_circuit(entry)
        assert pylse_stats(circuit)["cells"] == 120


class TestFigures:
    def test_figure12_exact(self):
        events = figures.figure12()
        assert events["Q"] == [209.2, 259.2, 309.2]

    def test_figure13_message(self):
        message = figures.figure13()
        assert "transition '7'" in message
        assert "past_constraints" in message

    def test_figure10_memory(self):
        events = figures.figure10()
        assert events["q1"] == [80.0]
        assert events["q0"] == [80.0]

    @pytest.mark.slow
    def test_figure16_panels_agree(self):
        panels = figures.figure16(analog_dt=0.1)
        assert [p.name for p in panels] == [
            "C Element", "Min-Max Pair", "Bitonic Sort 8",
        ]
        for panel in panels:
            assert panel.functionally_agree(), panel.name
            assert panel.analog_seconds > panel.pylse_seconds


class TestTable2:
    @pytest.mark.slow
    def test_shape_claims(self):
        rows = table2.run(analog_dt=0.2)
        assert len(rows) == 4
        for row in rows:
            assert row.size_ratio > 1, row.name
            # Machine-independent work metric: per-junction RK4 steps vs
            # discrete pulses processed. The wall-clock time_ratio is
            # host-dependent and is tracked by tools/bench_guard.py as the
            # non-gating table2_time_ratio metric instead of asserted here.
            assert row.work_ratio > 10, row.name
            assert row.schematic_steps > 0, row.name
            assert row.pylse_events > 0, row.name
        text = table2.render(rows)
        assert "Bitonic Sort 8" in text
        assert "average" in text

    def test_work_metrics_are_deterministic(self):
        # Same design, same dt => identical work counts on any host.
        first = table2.run(analog_dt=1.0)
        second = table2.run(analog_dt=1.0)
        for a, b in zip(first, second):
            assert a.schematic_steps == b.schematic_steps, a.name
            assert a.pylse_events == b.pylse_events, a.name
            assert a.work_ratio == b.work_ratio, a.name


class TestTable3:
    def test_sizes_without_verification(self):
        rows = table3.run(skip_verification=True)
        assert len(rows) == 22
        by_name = {r.name: r for r in rows}
        and_row = by_name["AND"]
        assert and_row.ta == 5                    # matches the paper
        assert and_row.channels == 4
        assert by_name["Bitonic Sort 8"].cells == 120
        # TA networks are uniformly larger than the machines they encode.
        for row in rows:
            assert row.locations > row.states
            assert row.ta_transitions > row.transitions

    def test_verification_column_on_small_cells(self):
        entries = [e for e in registry() if e.name in ("JTL", "S")]
        rows = table3.run(entries=entries, max_states=50_000, time_limit=30)
        for row in rows:
            assert row.satisfied is True
            assert row.states_explored > 0

    def test_budget_shows_infinity(self):
        entries = [e for e in registry() if e.name == "Bitonic Sort 4"]
        rows = table3.run(entries=entries, max_states=50, time_limit=5)
        assert rows[0].verify_seconds is None
        text = table3.render(rows)
        assert "inf" in text


class TestDynamicChecks:
    def test_join_check(self):
        outcome = dynamic_checks.check_join()
        assert outcome.passed, outcome.detail

    def test_race_tree_checks(self):
        for outcome in dynamic_checks.check_race_tree():
            assert outcome.passed, outcome.detail

    def test_bitonic_check(self):
        assert dynamic_checks.check_bitonic().passed

    def test_variability_check_small(self):
        outcome = dynamic_checks.check_variability(seeds=(0, 1), sigma=0.3)
        assert outcome.passed, outcome.detail

    def test_join_interleaving_detects_violation(self):
        events = {
            "A_T": [10.0, 20.0],   # two A pulses with no B between
            "A_F": [],
            "B_T": [30.0, 40.0],
            "B_F": [],
        }
        assert not dynamic_checks.join_interleaving(events)

    def test_bitonic_rank_order_detects_disorder(self):
        events = {"o0": [100.0], "o1": [90.0]}
        assert not dynamic_checks.bitonic_rank_order(events, 2)
        events = {"o0": [90.0], "o1": [100.0]}
        assert dynamic_checks.bitonic_rank_order(events, 2)
        events = {"o0": [90.0, 95.0], "o1": [100.0]}   # double pulse
        assert not dynamic_checks.bitonic_rank_order(events, 2)


class TestCli:
    def test_main_dispatches_single_experiment(self, capsys):
        from repro.exp.__main__ import main

        assert main(["dynamic"]) == 0
        out = capsys.readouterr().out
        assert "dynamic correctness checks" in out
