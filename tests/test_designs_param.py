"""Tests for the parameterized design generators (repro.explore's families).

The fixed paper designs (one full adder, the depth-2 race tree, …) have
parametric siblings: n-bit ripple adders, depth-d race trees, and
words x bits memories. These tests pin down functional correctness across
parameter ranges — exhaustive where the space is small — plus the
validation errors on malformed parameters.
"""

import pytest

from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs import (
    CLOCK_PERIOD,
    expected_leaf,
    make_memory_n,
    memory_port_names,
    race_tree_depth,
    race_tree_depth_inputs,
    ripple_adder,
    ripple_clock_pulses,
    ripple_clock_skew,
    ripple_test_times,
)


def _run_ripple(a_val, b_val, cin_bit, n_bits):
    schedule = ripple_test_times(a_val, b_val, cin_bit, n_bits)
    a_bits = [inp_at(*schedule[f"a{k}"], name=f"a{k}") for k in range(n_bits)]
    b_bits = [inp_at(*schedule[f"b{k}"], name=f"b{k}") for k in range(n_bits)]
    cin = inp_at(*schedule["cin"], name="cin")
    clk = inp(start=CLOCK_PERIOD, period=CLOCK_PERIOD,
              n=ripple_clock_pulses(n_bits), name="clk")
    sums, cout = ripple_adder(a_bits, b_bits, cin, clk)
    for k, wire in enumerate(sums):
        wire.observe(f"s{k}")
    cout.observe("cout")
    events = Simulation().simulate()
    total = sum(len(events[f"s{k}"]) << k for k in range(n_bits))
    return total + (len(events["cout"]) << n_bits)


class TestRippleAdder:
    @pytest.mark.parametrize("n_bits", [1, 2, 3])
    def test_exhaustive_small_widths(self, n_bits):
        from repro.core.circuit import reset_working_circuit

        for a_val in range(1 << n_bits):
            for b_val in range(1 << n_bits):
                for cin_bit in (0, 1):
                    reset_working_circuit()
                    assert (
                        _run_ripple(a_val, b_val, cin_bit, n_bits)
                        == a_val + b_val + cin_bit
                    )

    def test_worst_case_carry_eight_bits(self):
        # (2^8 - 1) + 1: the carry ripples through every stage.
        assert _run_ripple(255, 1, 0, 8) == 256

    def test_clock_skew_uniform_at_non_power_of_two(self):
        # The clock tree pads to the next power of two, so n=3 shares
        # n=4's depth (and therefore a uniform per-bit skew).
        assert ripple_clock_skew(3) == ripple_clock_skew(4)
        assert ripple_clock_skew(1) == 0.0
        assert ripple_clock_skew(2) > 0.0

    def test_width_mismatch_rejected(self):
        a = [inp_at(10.0, name="a0")]
        b = [inp_at(10.0, name="b0"), inp_at(10.0, name="b1")]
        cin = inp_at(name="cin")
        clk = inp(start=50, period=50, n=3, name="clk")
        with pytest.raises(PylseError, match="width"):
            ripple_adder(a, b, cin, clk)

    def test_empty_adder_rejected(self):
        cin = inp_at(name="cin")
        clk = inp(start=50, period=50, n=3, name="clk")
        with pytest.raises(PylseError):
            ripple_adder([], [], cin, clk)

    def test_ripple_test_times_rejects_out_of_range(self):
        with pytest.raises(PylseError):
            ripple_test_times(4, 0, 0, 2)   # a needs 3 bits
        with pytest.raises(PylseError):
            ripple_test_times(0, 0, 2, 2)   # cin must be 0/1


class TestRaceTreeDepth:
    def _run(self, depth, features, thresholds=None):
        times = race_tree_depth_inputs(depth, features, thresholds)
        pairs = []
        for i in range((1 << depth) - 1):
            pairs.append(
                (
                    inp_at(times[f"x{i}"], name=f"x{i}"),
                    inp_at(times[f"t{i}"], name=f"t{i}"),
                )
            )
        leaves = race_tree_depth(pairs)
        for j, leaf in enumerate(leaves):
            leaf.observe(f"leaf{j}")
        events = Simulation().simulate()
        fired = [j for j in range(1 << depth) if events[f"leaf{j}"]]
        return fired

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_exactly_one_leaf_all_feature_combos(self, depth):
        from repro.core.circuit import reset_working_circuit

        for combo in range(1 << depth):
            reset_working_circuit()
            features = [
                3.0 if (combo >> level) & 1 else 15.0
                for level in range(depth)
            ]
            fired = self._run(depth, features)
            assert fired == [expected_leaf(depth, features)]

    def test_depth_four_single_winner(self):
        features = [3.0, 15.0, 3.0, 15.0]
        fired = self._run(4, features)
        assert fired == [expected_leaf(4, features)]

    def test_wrong_pair_count_rejected(self):
        pairs = [(inp_at(5.0, name="x"), inp_at(10.0, name="t"))] * 2
        with pytest.raises(PylseError, match="2\\*\\*d - 1|pairs"):
            race_tree_depth(pairs)

    def test_inputs_reject_feature_count_mismatch(self):
        with pytest.raises(PylseError):
            race_tree_depth_inputs(2, [3.0])


class TestMemoryN:
    def _run(self, words, bits, addr, value):
        mem = make_memory_n(words, bits)
        names = memory_port_names(words, bits)
        abits = (words - 1).bit_length()
        times = {name: [] for name in names}
        for k in range(abits):
            if (addr >> k) & 1:
                times[f"wa{k}"] = [10.0]
        for k in range(bits):
            if (value >> k) & 1:
                times[f"d{k}"] = [10.0]
        times["we"] = [10.0]
        for k in range(abits):
            if (addr >> k) & 1:
                times[f"ra{k}"] = [60.0]
        times["clk"] = [50.0, 100.0]
        wires = [inp_at(*times[name], name=name) for name in names]
        outs = mem(*wires)
        outs = outs if isinstance(outs, tuple) else (outs,)
        for wire, k in zip(outs, reversed(range(bits))):
            wire.observe(f"q{k}")
        events = Simulation().simulate()
        read = 0
        for k in range(bits):
            pulses = events[f"q{k}"]
            assert len(pulses) <= 1
            if pulses:
                # The read commits on the second clock edge (plus the
                # hole's transfer delay).
                assert pulses[0] > 100.0
                read |= 1 << k
        return read

    @pytest.mark.parametrize("words,bits", [(2, 1), (4, 2), (8, 3), (16, 4)])
    def test_write_then_read_back(self, words, bits):
        value = sum(1 << k for k in range(0, bits, 2))   # 0b...0101
        assert self._run(words, bits, words - 1, value) == value

    def test_unwritten_address_reads_zero(self):
        mem = make_memory_n(4, 2)
        names = memory_port_names(4, 2)
        times = {name: [] for name in names}
        times["clk"] = [50.0]
        times["ra0"] = [10.0]   # read address 1, never written
        wires = [inp_at(*times[name], name=name) for name in names]
        outs = mem(*wires)
        for k, wire in enumerate(outs):
            wire.observe(f"q{k}")
        events = Simulation().simulate()
        assert all(not events[f"q{k}"] for k in range(2))

    def test_port_names_shape(self):
        names = memory_port_names(8, 2)
        assert names == ["ra2", "ra1", "ra0", "wa2", "wa1", "wa0",
                         "d1", "d0", "we", "clk"]

    def test_bad_parameters_rejected(self):
        with pytest.raises(PylseError):
            make_memory_n(3, 2)    # not a power of two
        with pytest.raises(PylseError):
            make_memory_n(1, 2)    # too few words
        with pytest.raises(PylseError):
            make_memory_n(4, 0)    # zero-width word
