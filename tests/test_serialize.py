"""Round-trip tests for circuit JSON serialization."""

import json

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.serialize import circuit_from_json, circuit_to_json
from repro.core.simulation import Simulation
from repro.core.timing import Normal
from repro.designs import make_memory, min_max
from repro.sfq import AND, and_s, jtl


def build_fig12():
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    return circuit


class TestRoundTrip:
    def test_simulation_identical_after_roundtrip(self):
        original = build_fig12()
        rebuilt = circuit_from_json(circuit_to_json(original))
        assert Simulation(rebuilt).simulate() == Simulation(original).simulate()

    def test_min_max_roundtrip(self):
        with fresh_circuit() as circuit:
            a = inp_at(115, 215, 315, name="A")
            b = inp_at(64, 184, 304, name="B")
            low, high = min_max(a, b)
            low.observe("low")
            high.observe("high")
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        events = Simulation(rebuilt).simulate()
        assert events["low"] == [89.0, 209.0, 329.0]
        assert events["high"] == [140.0, 240.0, 340.0]

    def test_node_names_preserved(self):
        circuit = build_fig12()
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        assert [n.name for n in rebuilt.cells()] == [
            n.name for n in circuit.cells()
        ]

    def test_overrides_preserved(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, firing_delay=2.5, jjs=4, name="Q")
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        cell = rebuilt.cells()[0].element
        assert cell.jjs == 4
        events = Simulation(rebuilt).simulate()
        assert events["Q"] == [12.5]

    def test_transition_time_override_roundtrip(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 11.0, name="A")
            jtl(a, transition_time={("idle", "a"): 5.0}, name="Q")
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        with pytest.raises(PylseError):
            Simulation(rebuilt).simulate()   # second pulse inside the window

    def test_distribution_delay_roundtrip(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, firing_delay=Normal(5.0, 0.5), name="Q")
        rebuilt = circuit_from_json(circuit_to_json(circuit))
        cell = rebuilt.cells()[0].element
        delay = cell.machine.delta("idle", "a").firing["q"]
        assert isinstance(delay, Normal)
        assert delay.mean == 5.0 and delay.stddev == 0.5


class TestFormat:
    def test_json_shape(self):
        text = circuit_to_json(build_fig12())
        payload = json.loads(text)
        assert payload["format"] == "repro-circuit-v1"
        kinds = {node["kind"] for node in payload["nodes"]}
        assert kinds == {"input", "cell"}
        cell = next(n for n in payload["nodes"] if n["kind"] == "cell")
        assert cell["cell"] == "AND"
        assert cell["outputs"]["q"]["wire"] == "Q"

    def test_holes_rejected(self):
        with fresh_circuit() as circuit:
            memory = make_memory()
            wires = [inp_at(10.0, name=f"w{k}") for k in range(12)]
            memory(*wires)
        with pytest.raises(PylseError, match="hole"):
            circuit_to_json(circuit)

    def test_bad_json_rejected(self):
        with pytest.raises(PylseError, match="Invalid circuit JSON"):
            circuit_from_json("{nope")

    def test_wrong_format_rejected(self):
        with pytest.raises(PylseError, match="Unsupported circuit format"):
            circuit_from_json('{"format": "other", "nodes": []}')

    def test_unknown_cell_rejected(self):
        text = json.dumps({
            "format": "repro-circuit-v1",
            "nodes": [{
                "kind": "cell", "name": "x0", "cell": "MYSTERY",
                "overrides": {}, "inputs": {}, "outputs": {},
            }],
        })
        with pytest.raises(PylseError, match="Unknown cell class"):
            circuit_from_json(text)

    def test_extra_cells_registry(self):
        class CustomJTL(AND):
            pass

        with fresh_circuit() as circuit:
            a = inp_at(30.0, name="A")
            b = inp_at(35.0, name="B")
            clk = inp_at(50.0, name="CLK")
            from repro.core.circuit import working_circuit
            from repro.core.wire import Wire

            element = CustomJTL()
            working_circuit().add_node(element, [a, b, clk], [Wire("Q")])
        text = circuit_to_json(circuit)
        with pytest.raises(PylseError, match="Unknown cell class"):
            circuit_from_json(text)
        rebuilt = circuit_from_json(text, extra_cells={"CustomJTL": CustomJTL})
        assert rebuilt.cells()[0].element.name == "AND"
