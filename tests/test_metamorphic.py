"""Metamorphic tests: independent implementations must agree.

* The discrete-event simulator (Network Relation) restricted to a single
  cell must agree exactly with the pure Trace Relation of that cell's
  machine (two separate code paths over the same semantics).
* The static path-delay analysis must predict the simulator's pulse times
  on acyclic single-path circuits.
* Translation + model checking must accept exactly the simulator's output
  times (checked for all cells in test_verification_all_cells.py).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit, working_circuit
from repro.core.analysis import path_delays
from repro.core.helpers import inp_at
from repro.core.node import Node
from repro.core.simulation import Simulation
from repro.core.wire import Wire
from repro.sfq import C, DRO, JOIN, M, jtl


def single_cell_circuit(cell_cls, stimulus):
    """Place one cell driven by input generators; return (circuit, element)."""
    with fresh_circuit() as circuit:
        # Wires bind to ports positionally: iterate in declaration order.
        wires = [
            inp_at(*stimulus.get(port, []), name=f"IN_{port}")
            for port in cell_cls.inputs
        ]
        element = cell_cls()
        outs = [Wire(f"OUT_{p}") for p in cell_cls.outputs]
        circuit.add_node(element, wires, outs)
    return circuit, element


def simulate_events(circuit, cell_cls):
    events = Simulation(circuit).simulate()
    return {
        port: events[f"OUT_{port}"]
        for port in cell_cls.outputs
    }


def trace_events(cell_cls, stimulus):
    machine = cell_cls()._class_machine()
    pulses = [
        (port, t) for port, times in stimulus.items() for t in times
    ]
    result = {port: [] for port in cell_cls.outputs}
    for out, t in machine.trace(pulses):
        result[out].append(t)
    return result


# ---------------------------------------------------------------------------
# strategies: stimuli that respect each cell's timing constraints
# ---------------------------------------------------------------------------
def sparse_times(max_pulses=4, gap=20.0, start=10.0):
    return st.lists(
        st.integers(min_value=0, max_value=20),
        min_size=0, max_size=max_pulses,
    ).map(lambda ks: sorted({start + gap * k + 3.0 * i for i, k in enumerate(ks)}))


class TestSimulatorMatchesTrace:
    @given(a=sparse_times(), b=sparse_times())
    @settings(max_examples=30, deadline=None)
    def test_c_element(self, a, b):
        stimulus = {"a": a, "b": [t + 1.0 for t in b]}
        circuit, _ = single_cell_circuit(C, stimulus)
        assert simulate_events(circuit, C) == trace_events(C, stimulus)

    @given(a=sparse_times(), b=sparse_times())
    @settings(max_examples=30, deadline=None)
    def test_merger(self, a, b):
        stimulus = {"a": a, "b": [t + 1.0 for t in b]}
        circuit, _ = single_cell_circuit(M, stimulus)
        assert simulate_events(circuit, M) == trace_events(M, stimulus)

    @given(data=sparse_times(max_pulses=3))
    @settings(max_examples=30, deadline=None)
    def test_dro(self, data):
        # Clocks far from the data pulses to respect setup/hold.
        stimulus = {"a": data, "clk": [600.0, 700.0]}
        circuit, _ = single_cell_circuit(DRO, stimulus)
        assert simulate_events(circuit, DRO) == trace_events(DRO, stimulus)

    @given(
        first=st.sampled_from(["a_t", "a_f"]),
        second=st.sampled_from(["b_t", "b_f"]),
        t1=st.floats(min_value=5, max_value=50),
        dt=st.floats(min_value=1, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_join(self, first, second, t1, dt):
        stimulus = {
            port: [] for port in JOIN.inputs
        }
        stimulus[first] = [t1]
        stimulus[second] = [t1 + dt]
        circuit, _ = single_cell_circuit(JOIN, stimulus)
        assert simulate_events(circuit, JOIN) == trace_events(JOIN, stimulus)


class TestAnalysisMatchesSimulation:
    @given(
        delays=st.lists(
            st.floats(min_value=0.5, max_value=20.0),
            min_size=1, max_size=6,
        ).map(lambda ds: [round(d, 1) for d in ds]),
    )
    @settings(max_examples=30, deadline=None)
    def test_jtl_chain_delay_prediction(self, delays):
        with fresh_circuit() as circuit:
            wire = inp_at(10.0, name="A")
            for d in delays:
                wire = jtl(wire, firing_delay=d)
            wire.observe("Q")
        predicted = path_delays(circuit)[("A", "Q")]
        events = Simulation(circuit).simulate()
        measured = events["Q"][0] - 10.0
        assert predicted[0] == predicted[1]
        assert abs(predicted[0] - measured) < 1e-9


class TestAllCellsSimulatorMatchesTrace:
    """The two semantics implementations agree on every basic cell, using
    each cell's canonical registry stimulus."""

    @staticmethod
    def _cases():
        import pytest as _pytest

        from repro.exp.registry import _cell_stimulus
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

        cells = []
        for cls in BASIC_CELLS:
            cells.append((cls, _cell_stimulus(cls)))
        return cells

    def test_every_basic_cell(self):
        from repro.exp.registry import _cell_stimulus
        from repro.sfq import BASIC_CELLS

        for cls in BASIC_CELLS:
            stimulus = _cell_stimulus(cls)
            circuit, _ = single_cell_circuit(cls, stimulus)
            assert simulate_events(circuit, cls) == trace_events(cls, stimulus), cls.name

    def test_extension_cells(self):
        from repro.sfq import INH, NDRO, T1

        cases = {
            NDRO: {"set": [10.0], "rst": [120.0], "clk": [50.0, 100.0, 150.0]},
            T1: {"a": [10.0, 30.0, 50.0]},
            INH: {"a": [40.0], "b": [10.0, 60.0]},
        }
        for cls, stimulus in cases.items():
            circuit, _ = single_cell_circuit(cls, stimulus)
            assert simulate_events(circuit, cls) == trace_events(cls, stimulus), cls.name
