"""Tests for the pulse heap (getSimPulses semantics)."""

from repro.core.element import InGen
from repro.core.events import Pulse, PulseHeap
from repro.core.node import Node
from repro.core.wire import Wire
from repro.sfq import C, JTL


def make_node(element=None):
    element = element or C()
    ins = [Wire() for _ in element.inputs]
    outs = [Wire() for _ in element.outputs]
    return Node(element, ins, outs)


class TestPulseHeap:
    def test_orders_by_time(self):
        node = make_node()
        heap = PulseHeap()
        heap.push(Pulse(20.0, node, "a"))
        heap.push(Pulse(10.0, node, "b"))
        popped_node, ports, time = heap.pop_simultaneous()
        assert time == 10.0
        assert ports == ["b"]

    def test_groups_simultaneous_same_node(self):
        node = make_node()
        heap = PulseHeap()
        heap.push(Pulse(10.0, node, "a"))
        heap.push(Pulse(10.0, node, "b"))
        _, ports, time = heap.pop_simultaneous()
        assert sorted(ports) == ["a", "b"]
        assert len(heap) == 0

    def test_does_not_group_across_nodes(self):
        node1, node2 = make_node(), make_node()
        heap = PulseHeap()
        heap.push(Pulse(10.0, node2, "a"))
        heap.push(Pulse(10.0, node1, "a"))
        first, _, _ = heap.pop_simultaneous()
        second, _, _ = heap.pop_simultaneous()
        assert first is not second
        # Deterministic tie-break: lower node id first.
        assert first.node_id < second.node_id

    def test_duplicate_port_pulses_collapse(self):
        node = make_node()
        heap = PulseHeap()
        heap.push(Pulse(10.0, node, "a"))
        heap.push(Pulse(10.0, node, "a"))
        _, ports, _ = heap.pop_simultaneous()
        assert ports == ["a"]
        assert not heap

    def test_three_equal_time_pulses_same_port_collapse(self):
        # Regression: the duplicate check must hold past the second pulse
        # (the seen-set, not a pairwise comparison, shadows the port list).
        node = make_node()
        heap = PulseHeap()
        for _ in range(3):
            heap.push(Pulse(10.0, node, "a"))
        _, ports, time = heap.pop_simultaneous()
        assert ports == ["a"]
        assert time == 10.0
        assert not heap

    def test_four_equal_time_pulses_same_port_collapse(self):
        node = make_node()
        heap = PulseHeap()
        for _ in range(4):
            heap.push(Pulse(10.0, node, "a"))
        _, ports, _ = heap.pop_simultaneous()
        assert ports == ["a"]
        assert not heap

    def test_equal_time_mixed_ports_collapse_per_port(self):
        node = make_node()
        heap = PulseHeap()
        for port in ("a", "b", "a", "b", "a"):
            heap.push(Pulse(10.0, node, port))
        _, ports, _ = heap.pop_simultaneous()
        # First occurrence order preserved, duplicates dropped per port.
        assert ports == ["a", "b"]
        assert not heap

    def test_equal_time_duplicates_do_not_swallow_later_times(self):
        node = make_node()
        heap = PulseHeap()
        for _ in range(3):
            heap.push(Pulse(10.0, node, "a"))
        heap.push(Pulse(20.0, node, "a"))
        _, ports, time = heap.pop_simultaneous()
        assert (ports, time) == (["a"], 10.0)
        _, ports, time = heap.pop_simultaneous()
        assert (ports, time) == (["a"], 20.0)
        assert not heap

    def test_pop_empty_raises(self):
        heap = PulseHeap()
        try:
            heap.pop_simultaneous()
        except IndexError:
            return
        raise AssertionError("expected IndexError")

    def test_len_and_bool(self):
        heap = PulseHeap()
        assert not heap and len(heap) == 0
        heap.push(Pulse(1.0, make_node(), "a"))
        assert heap and len(heap) == 1

    def test_peek_time(self):
        heap = PulseHeap()
        assert heap.peek_time() is None
        heap.push(Pulse(5.0, make_node(), "a"))
        assert heap.peek_time() == 5.0


class TestInGen:
    def test_times_sorted(self):
        assert InGen([3.0, 1.0, 2.0]).times == (1.0, 2.0, 3.0)

    def test_rejects_negative(self):
        import pytest

        from repro.core.errors import PylseError

        with pytest.raises(PylseError):
            InGen([-1.0])

    def test_rejects_inputs(self):
        import pytest

        from repro.core.errors import PylseError

        with pytest.raises(PylseError):
            InGen([1.0]).handle_inputs(["x"], 0.0)
