"""Tests for the PyLSE -> Timed Automata translation (Figure 14)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.designs import make_memory, min_max
from repro.sfq import and_s, jtl, s
from repro.ta import (
    SCALE,
    TANetwork,
    TimedAutomaton,
    Constraint,
    scale_time,
    translate_circuit,
)


class TestScaleTime:
    def test_one_decimal_precision(self):
        assert scale_time(9.2) == 92
        assert scale_time(209.0) == 2090
        assert SCALE == 10

    def test_unrepresentable_rejected(self):
        with pytest.raises(PylseError, match="not representable"):
            scale_time(1.23)


class TestAutomatonValidation:
    def test_duplicate_location_rejected(self):
        ta = TimedAutomaton("t", "a")
        ta.add_location("a")
        with pytest.raises(PylseError, match="duplicate"):
            ta.add_location("a")

    def test_edge_unknown_location_rejected(self):
        ta = TimedAutomaton("t", "a")
        ta.add_location("a")
        with pytest.raises(PylseError, match="unknown location"):
            ta.add_edge("a", "b")

    def test_guard_unknown_clock_rejected(self):
        ta = TimedAutomaton("t", "a")
        ta.add_location("a")
        ta.add_edge("a", "a", guard=[Constraint("c", ">=", 1)])
        with pytest.raises(PylseError, match="unknown clock"):
            ta.validate()

    def test_network_duplicate_name_rejected(self):
        network = TANetwork()
        ta = TimedAutomaton("t", "a")
        ta.add_location("a")
        network.add_automaton(ta)
        ta2 = TimedAutomaton("t", "a")
        ta2.add_location("a")
        with pytest.raises(PylseError, match="Duplicate"):
            network.add_automaton(ta2)


class TestCellTranslation:
    def translate_single(self, build):
        build()
        return translate_circuit(working_circuit())

    def test_jtl_network_shape(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        result = translate_circuit(working_circuit())
        stats = result.cell_stats()
        assert stats["ta"] == 2          # main + one firing TA
        assert stats["channels"] == 2    # A and Q
        roles = {ta.role for ta in result.network.automata}
        assert roles == {"cell", "firing", "input", "sink"}

    def test_and_matches_paper_ta_count(self):
        """AND: soaking ceil(9.2/3.0) = 4 firing TAs + main = 5 (Table 3)."""
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        stats = translate_circuit(working_circuit()).cell_stats()
        assert stats["ta"] == 5
        assert stats["channels"] == 4

    def test_error_locations_cover_setup_and_hold(self):
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        result = translate_circuit(working_circuit())
        errors = result.all_error_locations()
        assert errors
        # Hold errors for every input on all 12 transitions, plus setup
        # errors for every input on the 4 constrained clk transitions.
        names = [loc for _, loc in errors]
        assert all(name.startswith("AND_err_") for name in names)
        assert len(names) == 12 * 3 + 4 * 3

    def test_firing_tas_indexed_by_output_channel(self):
        a = inp_at(100.0, name="A")
        s(a, names="L R")
        result = translate_circuit(working_circuit())
        assert set(result.firing_tas_by_channel) == {"L", "R"}

    def test_min_max_translates_completely(self):
        a = inp_at(115.0, name="A")
        b = inp_at(64.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        result = translate_circuit(working_circuit())
        stats = result.cell_stats()
        assert stats["ta"] >= 6                 # 5 cells + firing TAs
        assert set(result.main_tas) == {"s0", "s1", "c_inv0", "c0", "jtl0"}

    def test_holes_are_rejected(self):
        memory = make_memory()
        wires = [inp_at(10.0, name=f"w{k}") for k in range(12)]
        memory(*wires)
        with pytest.raises(PylseError, match="hole"):
            translate_circuit(working_circuit())

    def test_input_schedule_truncated_by_until(self):
        inp_at(10.0, 100.0, 1000.0, name="A")
        a = working_circuit().find_wire("A")
        jtl(a, name="Q")
        result = translate_circuit(working_circuit(), until=500.0)
        input_ta = result.network.find("input_A")
        # i0 -> i1 -> i2 only (two pulses kept).
        assert input_ta.n_locations == 3

    def test_transition_expansion_structure(self):
        """One JTL transition: idle + q0 + q1 locations, urgent fire chain."""
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        result = translate_circuit(working_circuit())
        main = result.main_tas["jtl0"]
        assert main.initial == "idle"
        assert "q0_0" in main.locations and "q1_0" in main.locations
        sends = [e for e in main.edges if e.action and e.action.kind == "!"]
        assert len(sends) == 1
        assert sends[0].guard[0].op == "=="
        assert sends[0].guard[0].value == 0


class TestSoaking:
    def test_zero_transition_time_uses_default_soak(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        result = translate_circuit(working_circuit(), default_soak=3)
        firing = [ta for ta in result.network.automata if ta.role == "firing"]
        assert len(firing) == 3

    def test_positive_transition_time_uses_ceiling(self):
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        result = translate_circuit(working_circuit())
        firing = [ta for ta in result.network.automata if ta.role == "firing"]
        assert len(firing) == 4          # ceil(9.2 / 3.0)
