"""Tests for Monte-Carlo timing-yield analysis."""

import pytest

from repro.core.circuit import Circuit, fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.montecarlo import critical_sigma, measure_yield, yield_curve
from repro.designs import min_max
from repro.sfq import dro


def minmax_factory() -> Circuit:
    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit


def minmax_ok(events) -> bool:
    return (
        len(events["low"]) == 1
        and len(events["high"]) == 1
        and events["low"][0] < events["high"][0]
    )


class TestMeasureYield:
    def test_perfect_yield_without_noise(self):
        result = measure_yield(minmax_factory, minmax_ok, sigma=0.0,
                               seeds=range(5))
        assert result.yield_fraction == 1.0
        assert result.failures == {}

    def test_large_noise_degrades_yield(self):
        # 200 seeds: wide enough that sigma=12 deterministically produces
        # mis-ordered runs under the counter noise scheme (the batched
        # drain's per-(seed, node) streams; see repro.core.batchsim).
        clean = measure_yield(minmax_factory, minmax_ok, 0.0, seeds=range(200))
        noisy = measure_yield(minmax_factory, minmax_ok, 12.0,
                              seeds=range(200))
        assert noisy.yield_fraction < clean.yield_fraction
        assert noisy.failures     # and the failing seeds are recorded

    def test_violations_counted_separately(self):
        """A DRO with data right at the clock edge violates under noise."""
        def factory():
            with fresh_circuit() as circuit:
                a = inp_at(46.0, name="A")       # 4 ps before the clock
                clk = inp_at(50.0, name="CLK")
                dro(a, clk, name="Q")
            return circuit

        result = measure_yield(factory, lambda e: len(e["Q"]) == 1,
                               sigma=0.0, seeds=range(3))
        assert result.yield_fraction == 1.0

    def test_needs_seeds(self):
        with pytest.raises(PylseError):
            measure_yield(minmax_factory, minmax_ok, 0.0, seeds=())


class TestYieldCurve:
    def test_monotone_trend(self):
        curve = yield_curve(
            minmax_factory, minmax_ok, sigmas=(0.0, 15.0), seeds=range(10)
        )
        assert curve[0].yield_fraction >= curve[1].yield_fraction
        assert [r.sigma for r in curve] == [0.0, 15.0]


class TestCriticalSigma:
    def test_finds_a_threshold(self):
        sigma = critical_sigma(
            minmax_factory, minmax_ok, target_yield=0.9,
            sigma_hi=16.0, seeds=range(8), iterations=4,
        )
        assert sigma is not None
        assert 0.0 < sigma <= 16.0

    def test_functionally_broken_design_returns_none(self):
        sigma = critical_sigma(
            minmax_factory, lambda events: False, seeds=range(3)
        )
        assert sigma is None

    def test_very_robust_design_returns_upper_bound(self):
        """A lone JTL never mis-orders anything: yield stays 1."""
        from repro.sfq import jtl

        def factory():
            with fresh_circuit() as circuit:
                a = inp_at(10.0, name="A")
                jtl(a, name="Q")
            return circuit

        sigma = critical_sigma(
            factory, lambda e: len(e["Q"]) == 1,
            sigma_hi=4.0, seeds=range(5),
        )
        assert sigma == 4.0

    def test_bad_target_rejected(self):
        with pytest.raises(PylseError):
            critical_sigma(minmax_factory, minmax_ok, target_yield=0.0)


class TestHtmlWaveforms:
    def test_html_structure(self):
        from repro.core.htmlwave import events_to_html

        html = events_to_html({"A": [10.0, 30.0], "Q": [15.0]}, title="demo")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "</svg>" in html
        assert html.count('class="pulse"') == 3
        assert "A @ 10 ps" in html

    def test_empty_rejected(self):
        from repro.core.htmlwave import events_to_html

        with pytest.raises(PylseError):
            events_to_html({})

    def test_save_roundtrip(self, tmp_path):
        from repro.core.htmlwave import save_html

        path = tmp_path / "wave.html"
        save_html({"A": [5.0]}, str(path))
        assert "<svg" in path.read_text()

    def test_escapes_names(self):
        from repro.core.htmlwave import events_to_html

        html = events_to_html({"<evil>": [1.0]})
        assert "<evil>" not in html
        assert "&lt;evil&gt;" in html
