"""Tests for the repo tools: doc and golden generators stay in sync."""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestGeneratedArtifactsInSync:
    def test_cell_docs_match_generator(self, tmp_path):
        """docs/cells.md must match what the generator produces today."""
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS
        from repro.sfq.datasheet import datasheet

        committed = (ROOT / "docs" / "cells.md").read_text()
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            sheet = datasheet(cell).rstrip()
            assert sheet in committed, f"docs/cells.md stale for {cell.name}"

    def test_dot_files_exist_for_all_cells(self):
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

        dot_dir = ROOT / "docs" / "dot"
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            assert (dot_dir / f"{cell.name.lower()}.dot").exists()

    def test_goldens_match_generator_slugs(self):
        from repro.exp.registry import registry
        from tools_shim import golden_slug

        golden_dir = ROOT / "tests" / "goldens"
        for entry in registry():
            path = golden_dir / f"{golden_slug(entry.name)}.json"
            assert path.exists()
            payload = json.loads(path.read_text())
            assert payload["design"] == entry.name

    def test_generators_run_cleanly(self, tmp_path):
        """Both generators execute without error (into the real tree: they
        are idempotent by the tests above)."""
        for tool in ("tools/gen_cell_docs.py", "tools/gen_goldens.py"):
            result = subprocess.run(
                [sys.executable, str(ROOT / tool)],
                cwd=ROOT, capture_output=True, text=True, timeout=300,
            )
            assert result.returncode == 0, result.stderr


class TestBenchGuard:
    """tools/bench_guard.py plumbing (without running the benchmarks)."""

    def _load(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_guard", ROOT / "tools" / "bench_guard.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_extract_medians(self, tmp_path):
        guard = self._load()
        raw = tmp_path / "bench.json"
        raw.write_text(json.dumps({
            "benchmarks": [
                {"name": "test_bitonic_scaling[8]", "stats": {"median": 6.5e-4}},
                {"name": "test_mc_yield_workers[1]", "stats": {"median": 0.74}},
            ]
        }))
        medians = guard.extract_medians(raw)
        assert medians["test_bitonic_scaling[8]"] == 6.5e-4
        assert medians["test_mc_yield_workers[1]"] == 0.74

    def test_guarded_benchmark_has_seed_baseline(self):
        guard = self._load()
        assert guard.GUARDED in guard.SEED_MEDIANS_US

    def test_committed_artifact_fresh_and_consistent(self):
        """BENCH_sim.json exists, guards the right bench, and shows the
        required >= 2x improvement over the seed medians."""
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        guarded = payload["guarded"]
        assert guarded == "test_bitonic_scaling[8]"
        assert payload["medians_us"][guarded] > 0
        assert payload["speedup_vs_seed"][guarded] >= 2.0

    def test_help_runs(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "bench_guard.py"), "--help"],
            cwd=ROOT, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "regression guard" in result.stdout

    def test_mc_comparison_single_cpu_records_skip(self):
        """Regression: a 1-CPU host used to record pool overhead as a
        'parallel speedup'; now the skip is explicit."""
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 0.8}, cpus=1, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] == "skipped: 1 CPU"
        assert block["workers1"] == 0.8
        assert block["workers4"] is None

    def test_mc_comparison_multi_cpu_ratio(self):
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 1.2, "par": 0.4}, cpus=4, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] == 3.0
        assert block["workers1"] == 1.2
        assert block["workers4"] == 0.4

    def test_mc_comparison_missing_parallel_on_multi_cpu(self):
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 1.2}, cpus=4, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] is None

    def test_committed_artifact_mc_block_consistent(self):
        """The committed artifact's MC blocks honour the cpus field: a
        numeric speedup may only appear alongside >= 2 recorded CPUs."""
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        assert payload["cpus"] >= 1
        for key in ("mc_yield_200_seeds_s", "mc_amortized_800_trials_s"):
            speedup = payload[key]["parallel_speedup"]
            if payload["cpus"] < 2:
                assert speedup == "skipped: 1 CPU"
            elif isinstance(speedup, (int, float)):
                assert speedup > 0
