"""Tests for the repo tools: doc and golden generators stay in sync."""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestGeneratedArtifactsInSync:
    def test_cell_docs_match_generator(self, tmp_path):
        """docs/cells.md must match what the generator produces today."""
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS
        from repro.sfq.datasheet import datasheet

        committed = (ROOT / "docs" / "cells.md").read_text()
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            sheet = datasheet(cell).rstrip()
            assert sheet in committed, f"docs/cells.md stale for {cell.name}"

    def test_dot_files_exist_for_all_cells(self):
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

        dot_dir = ROOT / "docs" / "dot"
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            assert (dot_dir / f"{cell.name.lower()}.dot").exists()

    def test_goldens_match_generator_slugs(self):
        from repro.exp.registry import registry
        from tools_shim import golden_slug

        golden_dir = ROOT / "tests" / "goldens"
        for entry in registry():
            path = golden_dir / f"{golden_slug(entry.name)}.json"
            assert path.exists()
            payload = json.loads(path.read_text())
            assert payload["design"] == entry.name

    def test_generators_run_cleanly(self, tmp_path):
        """Both generators execute without error (into the real tree: they
        are idempotent by the tests above)."""
        for tool in ("tools/gen_cell_docs.py", "tools/gen_goldens.py"):
            result = subprocess.run(
                [sys.executable, str(ROOT / tool)],
                cwd=ROOT, capture_output=True, text=True, timeout=300,
            )
            assert result.returncode == 0, result.stderr
