"""Tests for the repo tools: doc and golden generators stay in sync."""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestGeneratedArtifactsInSync:
    def test_cell_docs_match_generator(self, tmp_path):
        """docs/cells.md must match what the generator produces today."""
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS
        from repro.sfq.datasheet import datasheet

        committed = (ROOT / "docs" / "cells.md").read_text()
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            sheet = datasheet(cell).rstrip()
            assert sheet in committed, f"docs/cells.md stale for {cell.name}"

    def test_dot_files_exist_for_all_cells(self):
        from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

        dot_dir = ROOT / "docs" / "dot"
        for cell in BASIC_CELLS + EXTENSION_CELLS:
            assert (dot_dir / f"{cell.name.lower()}.dot").exists()

    def test_goldens_match_generator_slugs(self):
        from repro.exp.registry import registry
        from tools_shim import golden_slug

        golden_dir = ROOT / "tests" / "goldens"
        for entry in registry():
            path = golden_dir / f"{golden_slug(entry.name)}.json"
            assert path.exists()
            payload = json.loads(path.read_text())
            assert payload["design"] == entry.name

    def test_generators_run_cleanly(self, tmp_path):
        """Both generators execute without error (into the real tree: they
        are idempotent by the tests above)."""
        for tool in ("tools/gen_cell_docs.py", "tools/gen_goldens.py"):
            result = subprocess.run(
                [sys.executable, str(ROOT / tool)],
                cwd=ROOT, capture_output=True, text=True, timeout=300,
            )
            assert result.returncode == 0, result.stderr


class TestBenchGuard:
    """tools/bench_guard.py plumbing (without running the benchmarks)."""

    def _load(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_guard", ROOT / "tools" / "bench_guard.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_extract_medians(self, tmp_path):
        guard = self._load()
        raw = tmp_path / "bench.json"
        raw.write_text(json.dumps({
            "benchmarks": [
                {"name": "test_bitonic_scaling[8]", "stats": {"median": 6.5e-4}},
                {"name": "test_mc_yield_workers[1]", "stats": {"median": 0.74}},
            ]
        }))
        medians = guard.extract_medians(raw)
        assert medians["test_bitonic_scaling[8]"] == 6.5e-4
        assert medians["test_mc_yield_workers[1]"] == 0.74

    def test_guarded_benchmark_has_seed_baseline(self):
        guard = self._load()
        assert guard.GUARDED in guard.SEED_MEDIANS_US

    def test_committed_artifact_fresh_and_consistent(self):
        """BENCH_sim.json exists, guards the right bench, and shows the
        required >= 2x improvement over the seed medians."""
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        guarded = payload["guarded"]
        assert guarded == "test_bitonic_scaling[8]"
        assert payload["medians_us"][guarded] > 0
        assert payload["speedup_vs_seed"][guarded] >= 2.0

    def test_help_runs(self):
        result = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "bench_guard.py"), "--help"],
            cwd=ROOT, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert "regression guard" in result.stdout

    def test_mc_comparison_single_cpu_records_skip(self):
        """Regression: a 1-CPU host used to record pool overhead as a
        'parallel speedup'; now the skip is explicit."""
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 0.8}, cpus=1, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] == "skipped: 1 CPU"
        assert block["workers1"] == 0.8
        assert block["workers4"] is None

    def test_mc_comparison_multi_cpu_ratio(self):
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 1.2, "par": 0.4}, cpus=4, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] == 3.0
        assert block["workers1"] == 1.2
        assert block["workers4"] == 0.4

    def test_mc_comparison_missing_parallel_on_multi_cpu(self):
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 1.2}, cpus=4, seq_name="seq", par_name="par"
        )
        assert block["parallel_speedup"] is None

    def test_mc_comparison_carries_committed_parallel_forward(self):
        """Regression: regenerating on a 1-CPU host used to overwrite the
        committed multi-worker numbers with null / 'skipped: 1 CPU'. A
        real committed workers4 median survives, flagged with a note."""
        guard = self._load()
        committed = {"workers1": 0.9, "workers4": 0.3,
                     "parallel_speedup": 3.0}
        block = guard.mc_comparison(
            {"seq": 0.8}, cpus=1, seq_name="seq", par_name="par",
            committed=committed,
        )
        assert block["workers1"] == 0.8          # fresh sequential number
        assert block["workers4"] == 0.3          # carried forward
        assert block["parallel_speedup"] == 3.0  # carried forward
        assert "carried forward" in block["note"]

    def test_mc_comparison_fresh_parallel_beats_committed(self):
        """A parallel median measured in this run always wins over any
        committed value — carry-forward only fills a gap."""
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 1.2, "par": 0.4}, cpus=4, seq_name="seq",
            par_name="par", committed={"workers4": 9.9},
        )
        assert block["workers4"] == 0.4
        assert block["parallel_speedup"] == 3.0
        assert "note" not in block

    def test_mc_comparison_no_committed_still_records_skip(self):
        guard = self._load()
        block = guard.mc_comparison(
            {"seq": 0.8}, cpus=1, seq_name="seq", par_name="par",
            committed={"workers4": None, "parallel_speedup": None},
        )
        assert block["parallel_speedup"] == "skipped: 1 CPU"

    def test_mc_batched_block_speedup(self):
        guard = self._load()
        medians = {
            "test_mc_batched[minmax-batched]": 0.002,
            "test_mc_batched[minmax-perseed]": 0.1,
            "test_mc_batched[bitonic8-batched]": 0.09,
            "test_mc_batched[bitonic8-perseed]": 1.53,
        }
        block = guard.mc_batched_block(medians)
        assert block["minmax"]["batched_speedup"] == 50.0
        assert block["bitonic8"]["batched_speedup"] == 17.0
        assert block["minmax"]["batched"] == 0.002

    def test_mc_batched_block_missing_pair(self):
        guard = self._load()
        block = guard.mc_batched_block(
            {"test_mc_batched[minmax-batched]": 0.002}
        )
        assert block["minmax"]["perseed"] is None
        assert block["minmax"]["batched_speedup"] is None

    def test_committed_artifact_mc_block_consistent(self):
        """The committed artifact's MC blocks honour the cpus field: a
        numeric speedup may only appear alongside >= 2 recorded CPUs or
        an explicit carried-forward note."""
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        assert payload["cpus"] >= 1
        for key in ("mc_yield_200_seeds_s", "mc_amortized_800_trials_s"):
            speedup = payload[key]["parallel_speedup"]
            if isinstance(speedup, (int, float)):
                assert speedup > 0
                assert payload["cpus"] >= 2 or "note" in payload[key]
            elif payload["cpus"] < 2:
                assert speedup in ("skipped: 1 CPU", None)

    def test_committed_artifact_mc_batched_block(self):
        """The vectorized-drain comparison is recorded and meets the
        guard's floor for every design."""
        guard = self._load()
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        block = payload["mc_batched_200_seeds_s"]
        for design, _, _ in guard.MC_BATCHED_PAIRS:
            pair = block[design]
            assert pair["batched"] > 0 and pair["perseed"] > 0
            assert pair["batched_speedup"] >= guard.MC_BATCHED_MIN_SPEEDUP

    def test_explore_cache_block(self):
        guard = self._load()
        block = guard.explore_cache_block(
            {"test_explore_cold": 0.5, "test_explore_warm": 0.002}
        )
        assert block["cold_s"] == 0.5
        assert block["warm_s"] == 0.002
        assert block["warm_vs_cold"] == 250.0

    def test_explore_cache_block_missing_pair(self):
        guard = self._load()
        block = guard.explore_cache_block({"test_explore_cold": 0.5})
        assert block["warm_s"] is None
        assert block["warm_vs_cold"] is None

    def test_committed_artifact_explore_block(self):
        """The committed artifact records the explorer cache pair and it
        meets the guard's floor."""
        guard = self._load()
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        block = payload["explore_cache"]
        assert block["cold_s"] > 0 and block["warm_s"] > 0
        assert block["warm_vs_cold"] >= guard.EXPLORE_MIN_SPEEDUP

    def test_committed_artifact_table2_ratio_nongating(self):
        payload = json.loads((ROOT / "BENCH_sim.json").read_text())
        block = payload["table2_time_ratio"]
        assert block["gating"] is False
        assert block["avg_work_ratio"] > 10
        assert block["per_design"]
