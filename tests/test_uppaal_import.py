"""Round-trip tests: UPPAAL XML export -> import -> re-verification."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.mc import ModelChecker
from repro.sfq import and_s, jtl
from repro.ta import (
    Query,
    from_uppaal_xml,
    no_error_query,
    to_uppaal_xml,
    translate_circuit,
)
from repro.designs import min_max


def build_and_translation():
    a = inp_at(125, 175, name="A")
    b = inp_at(75, 185, name="B")
    clk = inp(start=50, period=50, n=4, name="CLK")
    and_s(a, b, clk, name="Q")
    return translate_circuit(working_circuit())


class TestRoundTrip:
    def test_structure_preserved(self):
        translation = build_and_translation()
        reimported = from_uppaal_xml(to_uppaal_xml(translation.network))
        original = translation.network
        assert reimported.n_automata == original.n_automata
        assert reimported.n_locations == original.n_locations
        assert reimported.n_edges == original.n_edges
        assert sorted(reimported.all_clocks()) == sorted(original.all_clocks())
        assert sorted(reimported.all_channels()) == sorted(original.all_channels())

    def test_roles_and_markers_recovered(self):
        translation = build_and_translation()
        reimported = from_uppaal_xml(to_uppaal_xml(translation.network))
        roles = {ta.role for ta in reimported.automata}
        assert roles == {"cell", "firing", "input", "sink"}
        firing = next(ta for ta in reimported.automata if ta.role == "firing")
        assert firing.end_locations == ["fta_end"]
        main = next(ta for ta in reimported.automata if ta.name == "and0")
        assert main.error_locations      # AND_err_* recovered by name

    def test_reimported_network_verifies_identically(self):
        translation = build_and_translation()
        reimported = from_uppaal_xml(to_uppaal_xml(translation.network))
        q2_orig = no_error_query(translation)
        q2_reimp = Query(
            kind="no_errors",
            error_locations=[
                (ta.name, loc)
                for ta in reimported.automata
                for loc in ta.error_locations
            ],
        )
        original = ModelChecker(translation.network, time_limit=60).run([q2_orig])
        again = ModelChecker(reimported, time_limit=60).run([q2_reimp])
        assert original.satisfied == again.satisfied
        assert original.states_explored == again.states_explored

    def test_min_max_roundtrip(self):
        a = inp_at(115, name="A")
        b = inp_at(64, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        translation = translate_circuit(working_circuit())
        reimported = from_uppaal_xml(to_uppaal_xml(translation.network))
        assert reimported.n_locations == translation.network.n_locations


class TestImportErrors:
    def test_invalid_xml_rejected(self):
        with pytest.raises(PylseError, match="Invalid UPPAAL XML"):
            from_uppaal_xml("<nta><unclosed>")

    def test_wrong_root_rejected(self):
        with pytest.raises(PylseError, match="Expected <nta>"):
            from_uppaal_xml("<other/>")

    def test_bad_constraint_rejected(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        xml = to_uppaal_xml(translate_circuit(working_circuit()).network)
        broken = xml.replace("c_jtl0_h == 0", "c_jtl0_h ** 0", 1)
        with pytest.raises(PylseError, match="Cannot parse"):
            from_uppaal_xml(broken)
