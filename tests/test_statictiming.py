"""Tests for timing-slack analysis and simulation trace recording."""

import math

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.core.statictiming import (
    critical_path,
    slack_report,
    timing_margins,
    worst_slacks,
)
from repro.sfq import and_s, dro, jtl


def figure12_sim(record=True):
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    sim = Simulation(circuit)
    sim.simulate(record=record)
    return sim


class TestTraceRecording:
    def test_trace_off_by_default(self):
        sim = figure12_sim(record=False)
        assert sim.trace == []
        with pytest.raises(PylseError):
            sim.render_trace()

    def test_trace_entries_cover_all_dispatches(self):
        sim = figure12_sim()
        # Every pulse group the AND consumed is one entry: 14 pulses, with
        # the simultaneous (a, b) pair at t=225 merged into one group.
        assert len(sim.trace) == 13
        assert all(entry.node == "and0" for entry in sim.trace)

    def test_trace_records_state_changes(self):
        sim = figure12_sim()
        first_b = next(e for e in sim.trace if e.ports == ("b",))
        assert first_b.state_before == "idle"
        assert first_b.state_after == "b_arr"

    def test_trace_records_firings(self):
        sim = figure12_sim()
        firing = [e for e in sim.trace if e.fired]
        assert [e.fired[0] for e in firing] == [
            ("q", 209.2), ("q", 259.2), ("q", 309.2),
        ]

    def test_render_trace_text(self):
        sim = figure12_sim()
        text = sim.render_trace()
        assert "and0(AND)" in text
        assert "q@209.2" in text


class TestTimingMargins:
    def test_requires_recorded_trace(self):
        sim = figure12_sim(record=False)
        with pytest.raises(PylseError, match="record=True"):
            timing_margins(sim)

    def test_figure12_worst_setup_slack(self):
        """B at 185 vs CLK at 200 is the tightest setup: 200-185-2.8."""
        sim = figure12_sim()
        records = timing_margins(sim)
        setups = [r for r in records if not math.isinf(r.setup_slack)]
        tightest = min(setups, key=lambda r: r.setup_slack)
        assert tightest.setup_slack == pytest.approx(12.2)
        assert tightest.port == "clk"

    def test_simultaneous_pulses_have_zero_hold_slack(self):
        """A and B both at 225: the second dispatch has zero hold margin."""
        sim = figure12_sim()
        records = timing_margins(sim)
        zero_hold = [r for r in records if r.hold_slack == 0.0]
        assert any(r.time == 225.0 for r in zero_hold)

    def test_unconstrained_cells_have_infinite_slack(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate(record=True)
        records = timing_margins(sim)
        assert all(math.isinf(r.setup_slack) for r in records)
        # Hold: the second pulse vs tau_done of the first (tt = 0): finite.
        assert records[0].hold_slack == 10.0   # first pulse vs initial 0.0

    def test_slack_predicts_violation_boundary(self):
        """Shrinking the gap by more than the reported slack violates."""
        def run(b_first: float):
            with fresh_circuit() as circuit:
                a = inp_at(30.0, name="A")
                clk = inp_at(50.0, name="CLK")
                b = inp_at(b_first, name="B")
                del b
                dro(a, clk, name="Q")
            sim = Simulation(circuit)
            sim.simulate(record=True)
            return sim

        sim = run(5.0)
        records = timing_margins(sim)
        setup = min(r.setup_slack for r in records)
        assert setup == pytest.approx(50.0 - 30.0 - 1.2)   # DRO setup 1.2
        # Moving the data pulse later by exactly the slack is still legal...
        with fresh_circuit() as circuit:
            a = inp_at(30.0 + setup, name="A")
            clk = inp_at(50.0, name="CLK")
            dro(a, clk, name="Q")
        Simulation(circuit).simulate()      # no exception
        # ...but any further is a violation.
        with fresh_circuit() as circuit:
            a = inp_at(30.0 + setup + 0.1, name="A")
            clk = inp_at(50.0, name="CLK")
            dro(a, clk, name="Q")
        with pytest.raises(PylseError):
            Simulation(circuit).simulate()


class TestReports:
    def test_worst_slacks_per_node(self):
        sim = figure12_sim()
        worst = worst_slacks(timing_margins(sim))
        assert set(worst) == {"and0"}
        assert worst["and0"].worst == 0.0     # the simultaneous 225 pair

    def test_slack_report_text(self):
        sim = figure12_sim()
        text = slack_report(sim)
        assert "timing slack report" in text
        assert "worst slack" in text

    def test_report_without_constraints(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, name="Q")
        sim = Simulation(circuit)
        sim.simulate(record=True)
        text = slack_report(sim)
        assert "timing slack report" in text
