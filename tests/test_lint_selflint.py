"""Self-lint: every shipped cell and registry design must be error-free.

This is the CI gate: a cell or design change that introduces an
error-severity finding (broken machine, structural defect, or a provable
timing violation in its registry stimulus) fails here before any
simulation runs.
"""

import pytest

from repro.exp.registry import build_in_fresh_circuit, registry
from repro.lint import ReachBudget, Severity, lint_circuit, lint_machine
from repro.sfq import BASIC_CELLS, EXTENSION_CELLS

ALL_CELLS = BASIC_CELLS + EXTENSION_CELLS

#: Cells with order-dependent equal-priority triggers: a genuine property
#: (simultaneous set/reset is resolved nondeterministically) reported at
#: info severity.
RACY_CELLS = {"DRO_SR", "NDRO"}


@pytest.mark.parametrize("cell", ALL_CELLS, ids=lambda c: c.name)
def test_cell_machines_lint_clean(cell):
    report = lint_machine(cell)
    assert not report.errors, [f.render() for f in report.errors]
    non_info = [f for f in report.findings if f.severity > Severity.INFO]
    assert not non_info, [f.render() for f in non_info]
    if cell.name in RACY_CELLS:
        assert {f.rule for f in report.findings} == {"PL107"}
    else:
        assert not report.findings, [f.render() for f in report.findings]


@pytest.mark.parametrize("entry", registry(), ids=lambda e: e.name)
def test_registry_designs_lint_error_free(entry):
    circuit = build_in_fresh_circuit(entry)
    report = lint_circuit(circuit, design=entry.name)
    assert not report.errors, [f.render() for f in report.errors]


def test_registry_designs_have_no_guaranteed_timing_violations():
    for entry in registry():
        circuit = build_in_fresh_circuit(entry)
        report = lint_circuit(circuit, design=entry.name)
        assert not [f for f in report.findings if f.rule == "PL301"], entry.name
        if report.timing and report.timing.get("safe_margin") is not None:
            assert report.timing["safe_margin"] > 0, entry.name


@pytest.mark.parametrize("entry", registry(), ids=lambda e: e.name)
def test_registry_designs_reach_clean(entry):
    """PL4xx over every design: nothing above info under its own stimulus.

    The registry stimuli are violation-free by construction, so the zone
    exploration must not find a reachable timing violation (PL403), a
    deliverable race (PL402), or a stuck state (PL404) in any of the 22
    designs; only PL401 dead-in-context infos are expected. A modest state
    budget keeps this fast — the big designs truncate, which is reported
    explicitly and only *reduces* findings (BFS prefix), never invents one.
    """
    circuit = build_in_fresh_circuit(entry)
    report = lint_circuit(
        circuit, design=entry.name, reach=True,
        reach_budget=ReachBudget(max_states=1500, time_limit=20.0),
    )
    reach_findings = [
        f for f in report.findings if f.rule.startswith("PL4")
    ]
    above_info = [f for f in reach_findings if f.severity > Severity.INFO]
    assert not above_info, [f.render() for f in above_info]
    assert {f.rule for f in reach_findings} <= {"PL401"}, (
        [f.render() for f in reach_findings]
    )
    if report.reach_skipped is None:
        assert report.reach, "reach summary missing despite the layer running"
        if report.reach["truncated"]:
            assert report.reach["truncation_reason"] in (
                "max_states", "time_limit"
            )
