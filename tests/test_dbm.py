"""Unit and property tests for Difference Bound Matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc.dbm import (
    DBM,
    INF,
    LE_ZERO,
    add_bounds,
    bound,
    bound_is_strict,
    bound_value,
    zero_zone,
)


class TestBoundEncoding:
    def test_roundtrip(self):
        assert bound_value(bound(5, False)) == 5
        assert bound_value(bound(5, True)) == 5
        assert bound_is_strict(bound(5, True))
        assert not bound_is_strict(bound(5, False))

    def test_negative_values(self):
        assert bound_value(bound(-3, False)) == -3
        assert bound_is_strict(bound(-3, True))

    def test_ordering_strict_below_nonstrict(self):
        assert bound(5, True) < bound(5, False)
        assert bound(4, False) < bound(5, True)

    def test_add_bounds_combines_strictness(self):
        a = np.array([bound(2, False)])
        b = np.array([bound(3, False)])
        assert add_bounds(a, b)[0] == bound(5, False)
        b_strict = np.array([bound(3, True)])
        assert add_bounds(a, b_strict)[0] == bound(5, True)

    def test_add_bounds_inf_absorbs(self):
        a = np.array([INF])
        b = np.array([bound(3, False)])
        assert add_bounds(a, b)[0] == INF


class TestZoneOperations:
    def test_zero_zone_pins_all_clocks(self):
        z = zero_zone(2)
        assert z.clock_bounds(1) == (0, 0)
        assert z.clock_is_pinned(2)
        assert not z.is_empty()

    def test_up_unbounds_upper(self):
        z = zero_zone(1).up()
        low, high = z.clock_bounds(1)
        assert low == 0 and high is None

    def test_constrain_upper_then_bounds(self):
        z = zero_zone(1).up()
        z.constrain_upper(1, 10, strict=False)
        z.canonicalize()
        assert z.clock_bounds(1) == (0, 10)

    def test_contradiction_is_empty(self):
        z = zero_zone(1).up()
        z.constrain_lower(1, 10, strict=False)
        z.constrain_upper(1, 5, strict=False)
        z.canonicalize()
        assert z.is_empty()

    def test_reset_after_delay(self):
        z = zero_zone(2).up()
        z.constrain_lower(1, 10, strict=False)
        z.canonicalize()
        z.reset(1)
        assert z.clock_bounds(1) == (0, 0)
        low2, high2 = z.clock_bounds(2)
        assert low2 == 10 and high2 is None

    def test_reset_preserves_other_differences(self):
        """After delay and reset of x1, x2 - x1 equals elapsed time."""
        z = zero_zone(2).up()
        z.constrain_lower(1, 7, strict=False)
        z.constrain_upper(1, 7, strict=False)
        z.canonicalize()
        z.reset(1)
        # x2 == 7, x1 == 0 -> difference pinned at 7.
        assert z.clock_bounds(2) == (7, 7)

    def test_reset_range_checked(self):
        from repro.core.errors import PylseError

        with pytest.raises(PylseError):
            zero_zone(1).reset(2)

    def test_inclusion_reflexive_and_monotone(self):
        z = zero_zone(2)
        assert z.includes(z)
        widened = z.copy().up()
        widened.canonicalize()
        assert widened.includes(z)
        assert not z.includes(widened)

    def test_key_is_canonical_fingerprint(self):
        a = zero_zone(2)
        b = zero_zone(2)
        assert a.key() == b.key()
        b.up()
        assert a.key() != b.key()


class TestExtrapolation:
    def test_extrapolation_drops_large_bounds(self):
        z = zero_zone(1).up()
        z.constrain_lower(1, 500, strict=False)
        z.constrain_upper(1, 600, strict=False)
        z.canonicalize()
        z.extrapolate([0, 10])
        z.canonicalize()
        low, high = z.clock_bounds(1)
        assert high is None           # upper bound above M dropped
        assert low <= 10              # lower bound relaxed to around M

    def test_extrapolation_keeps_small_bounds(self):
        z = zero_zone(1).up()
        z.constrain_upper(1, 5, strict=False)
        z.canonicalize()
        z.extrapolate([0, 10])
        z.canonicalize()
        assert z.clock_bounds(1) == (0, 5)

    def test_extrapolated_zone_includes_original(self):
        z = zero_zone(2).up()
        z.constrain_lower(1, 300, strict=False)
        z.constrain_upper(1, 300, strict=False)
        z.canonicalize()
        original = z.copy()
        z.extrapolate([0, 50, 50])
        z.canonicalize()
        assert z.includes(original)


# --------------------------------------------------------------------------
# property-based invariants
# --------------------------------------------------------------------------
constraint_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),     # clock
        st.sampled_from(["upper", "lower"]),
        st.integers(min_value=0, max_value=30),    # value
        st.booleans(),                             # strict
    ),
    max_size=6,
)


def build_zone(ops):
    z = zero_zone(3).up()
    for clock, kind, value, strict in ops:
        if kind == "upper":
            z.constrain_upper(clock, value, strict)
        else:
            z.constrain_lower(clock, value, strict)
    z.canonicalize()
    return z


class TestZoneProperties:
    @given(ops=constraint_lists)
    @settings(max_examples=80)
    def test_canonicalize_idempotent_on_nonempty(self, ops):
        # (Empty zones have no unique canonical form — negative cycles keep
        # shrinking under Floyd-Warshall — and are discarded on sight by the
        # explorer, so idempotence is only claimed for satisfiable zones.)
        z = build_zone(ops)
        if z.is_empty():
            return
        before = z.key()
        z.canonicalize()
        assert z.key() == before

    @given(ops=constraint_lists)
    @settings(max_examples=80)
    def test_nonempty_zone_includes_itself(self, ops):
        z = build_zone(ops)
        if not z.is_empty():
            assert z.includes(z)

    @given(ops=constraint_lists)
    @settings(max_examples=80)
    def test_up_is_superset(self, ops):
        z = build_zone(ops)
        if z.is_empty():
            return
        up = z.copy().up()
        up.canonicalize()
        assert up.includes(z)

    @given(ops=constraint_lists, clock=st.integers(1, 3))
    @settings(max_examples=80)
    def test_reset_pins_clock_to_zero(self, ops, clock):
        z = build_zone(ops)
        if z.is_empty():
            return
        z.reset(clock)
        assert z.clock_bounds(clock) == (0, 0)

    @given(ops=constraint_lists)
    @settings(max_examples=60)
    def test_extrapolation_only_widens(self, ops):
        z = build_zone(ops)
        if z.is_empty():
            return
        original = z.copy()
        z.extrapolate([0, 10, 10, 10])
        z.canonicalize()
        assert z.includes(original)
