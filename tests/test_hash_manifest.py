"""The committed structural-hash manifest stays in sync with the code.

``HASH_MANIFEST.json`` pins the compiled-IR structural hash of every
registry design (16 basic cells + the six paper designs). Any change to a
cell's transitions/delays, a design's wiring, or the hash recipe must show
up as a reviewed manifest diff — this test makes forgetting that a tier-1
failure rather than a silent drift.
"""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
MANIFEST = ROOT / "HASH_MANIFEST.json"


def test_manifest_exists_and_covers_registry():
    from repro.exp.registry import registry

    payload = json.loads(MANIFEST.read_text())
    assert set(payload["hashes"]) == {entry.name for entry in registry()}


def test_manifest_matches_freshly_compiled_hashes():
    from repro.core import ir
    from repro.core.ir import structural_hash
    from repro.exp.registry import build_in_fresh_circuit, registry

    payload = json.loads(MANIFEST.read_text())
    assert payload["hash_version"] == ir._HASH_VERSION
    stale = {
        entry.name
        for entry in registry()
        if payload["hashes"][entry.name]
        != structural_hash(build_in_fresh_circuit(entry))
    }
    assert not stale, (
        f"stale manifest entries {sorted(stale)}; regenerate with "
        "`PYTHONPATH=src python tools/hash_manifest.py --update`"
    )


def test_checker_tool_passes():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "hash_manifest.py")],
        capture_output=True, text=True, cwd=ROOT,
    )
    assert result.returncode == 0, result.stderr
