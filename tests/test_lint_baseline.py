"""Lint baselines: fingerprints, write/compare, and the CLI contract.

CI fails only on *new* findings: a baseline file accepts the current
finding set; later runs exit 0 while every finding's fingerprint is known
and exit 1 the moment an unknown one appears. Fingerprints are
content-addressed — rule ID, the design's structural hash, and the
canonical location — so message rewording never churns a baseline while a
design-shape change (new structural hash) expires its entries.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.wire import Wire
from repro.lint import (
    compare_with_baseline,
    finding_fingerprint,
    lint_circuit,
    load_baseline,
    write_baseline,
)
from repro.sfq.and_s import AND


def build_and(clk_time):
    with fresh_circuit() as circuit:
        a = inp_at(30.0, name="A")
        b = inp_at(10.0, name="B")
        clk = inp_at(clk_time, name="CLK")
        circuit.add_node(AND(), [a, b, clk], [Wire("OUT_q")])
    return circuit


class TestFingerprints:
    def test_stable_across_reelaboration(self):
        r1 = lint_circuit(build_and(50.0))
        r2 = lint_circuit(build_and(50.0))
        fp1 = [finding_fingerprint(f, r1.structural_hash) for f in r1.findings]
        fp2 = [finding_fingerprint(f, r2.structural_hash) for f in r2.findings]
        assert fp1 and fp1 == fp2

    def test_ignores_message_wording(self):
        report = lint_circuit(build_and(50.0))
        finding = report.findings[0]
        reworded = type(finding)(
            rule=finding.rule, severity=finding.severity,
            message="completely different text", location=finding.location,
        )
        assert finding_fingerprint(finding, report.structural_hash) == \
            finding_fingerprint(reworded, report.structural_hash)

    def test_structural_change_expires(self):
        r1 = lint_circuit(build_and(50.0))
        r2 = lint_circuit(build_and(60.0))  # different schedule, new hash
        assert r1.structural_hash != r2.structural_hash
        assert finding_fingerprint(r1.findings[0], r1.structural_hash) != \
            finding_fingerprint(r1.findings[0], r2.structural_hash)


class TestWriteCompare:
    def test_round_trip(self, tmp_path):
        reports = [lint_circuit(build_and(50.0), design="andtest")]
        path = tmp_path / "baseline.json"
        count = write_baseline(str(path), reports)
        assert count == len(reports[0].findings)
        baseline = load_baseline(str(path))
        comparison = compare_with_baseline(reports, baseline)
        assert comparison.ok
        assert not comparison.new and not comparison.resolved
        assert len(comparison.known) == count

    def test_new_finding_fails(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [lint_circuit(build_and(50.0))])
        # A broken schedule produces findings the baseline has never seen
        # (and a different structural hash, expiring the old entries).
        broken = [lint_circuit(build_and(31.0), reach=True)]
        comparison = compare_with_baseline(broken, load_baseline(str(path)))
        assert not comparison.ok
        assert any(f.rule == "PL403" for _, f in comparison.new)

    def test_resolved_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), [lint_circuit(build_and(31.0), reach=True)])
        clean = [lint_circuit(build_and(31.0), select="PL2")]  # none fire
        comparison = compare_with_baseline(clean, load_baseline(str(path)))
        assert comparison.ok  # resolved entries never fail the gate
        assert comparison.resolved
        assert "resolved" in comparison.render_text()

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(Exception, match="repro-lint-baseline-v1"):
            load_baseline(str(path))


class TestCli:
    def test_update_then_compare_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        assert main(["lint", "AND", "DRO", "--reach",
                     "--baseline", path, "--update-baseline"]) == 0
        assert main(["lint", "AND", "DRO", "--reach",
                     "--baseline", path]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out

    def test_known_findings_pass_even_at_fail_on_info(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        assert main(["lint", "AND", "--reach",
                     "--baseline", path, "--update-baseline"]) == 0
        # AND has info findings; without a baseline this exits 1.
        assert main(["lint", "AND", "--reach", "--fail-on", "info"]) == 1
        # With the baseline, the same findings are known: exit 0.
        assert main(["lint", "AND", "--reach", "--fail-on", "info",
                     "--baseline", path]) == 0

    def test_new_finding_exits_one(self, tmp_path, capsys):
        path = str(tmp_path / "baseline.json")
        # Baseline covers only DRO; linting AND (other fingerprints,
        # other structural hash) produces strictly new findings.
        assert main(["lint", "DRO",
                     "--baseline", path, "--update-baseline"]) == 0
        assert main(["lint", "AND", "--baseline", path]) == 1
        assert "NEW finding" in capsys.readouterr().out

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path, capsys):
        path = str(tmp_path / "nope.json")
        assert main(["lint", "AND", "--baseline", path]) == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_update_baseline_requires_path(self, capsys):
        assert main(["lint", "AND", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err
