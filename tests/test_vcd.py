"""Tests for VCD waveform export."""

import pytest

from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.core.vcd import PULSE_WIDTH, TICKS_PER_PS, events_to_vcd, save_vcd
from repro.sfq import jtl


def parse_changes(vcd_text):
    """Extract {tick: [(value, code), ...]} from a VCD body."""
    changes = {}
    tick = None
    in_body = False
    for line in vcd_text.splitlines():
        if line.startswith("$enddefinitions"):
            in_body = True
            continue
        if not in_body:
            continue
        if line.startswith("#"):
            tick = int(line[1:])
            changes.setdefault(tick, [])
        elif line and line[0] in "01" and tick is not None:
            changes[tick].append((int(line[0]), line[1:]))
    return changes


class TestVcdFormat:
    def test_header_structure(self):
        text = events_to_vcd({"A": [1.0]})
        assert text.startswith("$comment")
        assert "$timescale 100fs $end" in text
        assert "$var wire 1 ! A $end" in text
        assert "$enddefinitions $end" in text

    def test_empty_events_rejected(self):
        with pytest.raises(PylseError):
            events_to_vcd({})

    def test_pulse_becomes_rise_and_fall(self):
        text = events_to_vcd({"A": [10.0]})
        changes = parse_changes(text)
        rise = 10 * TICKS_PER_PS
        fall = round((10.0 + PULSE_WIDTH) * TICKS_PER_PS)
        assert (1, "!") in changes[rise]
        assert (0, "!") in changes[fall]

    def test_close_pulses_do_not_overlap(self):
        text = events_to_vcd({"A": [10.0, 11.0]})
        changes = parse_changes(text)
        # Fall of pulse 1 is clipped to the rise of pulse 2.
        assert (0, "!") in changes[110]
        assert (1, "!") in changes[110]

    def test_spaces_in_names_sanitized(self):
        text = events_to_vcd({"my wire": [1.0]})
        assert "my_wire" in text
        assert "my wire" not in text.split("$enddefinitions")[0].split("$var")[1]

    def test_many_wires_get_unique_codes(self):
        events = {f"w{k}": [float(k + 1)] for k in range(100)}
        text = events_to_vcd(events)
        codes = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(codes) == len(set(codes)) == 100


class TestVcdIntegration:
    def test_simulation_roundtrip(self, tmp_path):
        a = inp_at(10.0, 30.0, name="A")
        jtl(a, name="Q")
        events = Simulation().simulate()
        path = tmp_path / "wave.vcd"
        save_vcd(events, str(path))
        text = path.read_text()
        changes = parse_changes(text)
        # A pulses at ticks 100, 300; Q at 150, 350.
        codes = {
            line.split()[4]: line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        }
        assert (1, codes["A"]) in changes[100]
        assert (1, codes["Q"]) in changes[150]
        assert (1, codes["Q"]) in changes[350]

    def test_fractional_times_exact(self):
        text = events_to_vcd({"Q": [209.2]})
        changes = parse_changes(text)
        assert (1, "!") in changes[2092]
