"""Tests for the design-space explorer (repro.explore).

Covers the acceptance contract: grid parsing, family validation, sweeps
over several families, per-point element-wise identity with a direct
``measure_yield`` call, cache-warm second passes, Pareto non-domination,
and the ``python -m repro explore`` CLI in all three formats.
"""

import csv
import io
import json

import pytest

from repro.__main__ import main
from repro.core.errors import PylseError
from repro.core.montecarlo import measure_yield
from repro.core.simulation import Simulation
from repro.exp.registry import PulseCountPredicate
from repro.explore import (
    ExploreEngine,
    FamilyFactory,
    dominates,
    families,
    family_names,
    grid_points,
    pareto_frontier,
    parse_grid,
)


class TestParseGrid:
    def test_single_axis(self):
        assert parse_grid(["n=2,4,8"]) == {"n": [2, 4, 8]}

    def test_multiple_axes_preserve_order(self):
        grid = parse_grid(["words=4,16", "bits=1,2"])
        assert list(grid) == ["words", "bits"]

    def test_whitespace_tolerated(self):
        assert parse_grid([" n = 2 , 4 "]) == {"n": [2, 4]}

    def test_rejects_missing_equals(self):
        with pytest.raises(PylseError, match="name=v1"):
            parse_grid(["n:2,4"])

    def test_rejects_duplicate_axis(self):
        with pytest.raises(PylseError, match="duplicate grid axis"):
            parse_grid(["n=2", "n=4"])

    def test_rejects_duplicate_values(self):
        with pytest.raises(PylseError, match="duplicate values"):
            parse_grid(["n=2,2"])

    def test_rejects_non_integer(self):
        with pytest.raises(PylseError, match="integers"):
            parse_grid(["n=2,x"])

    def test_rejects_empty(self):
        with pytest.raises(PylseError, match="empty grid"):
            parse_grid([])

    def test_grid_points_cartesian_order(self):
        points = grid_points({"a": [1, 2], "b": [10, 20]})
        assert points == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]


class TestPareto:
    def test_dominates_basics(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))   # equal: no dominance

    def test_dominates_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            dominates((1.0,), (1.0, 2.0))

    def test_frontier_keeps_nondominated_in_order(self):
        points = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 3.0)]
        front = pareto_frontier(points, key=lambda p: p)
        assert front == [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)]

    def test_frontier_keeps_duplicates(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        front = pareto_frontier(points, key=lambda p: p)
        assert front == [(1.0, 1.0), (1.0, 1.0)]


class TestFamilies:
    def test_expected_families_registered(self):
        assert set(family_names()) == {
            "bitonic", "adder_sync", "adder_xsfq", "racetree", "memory"
        }

    def test_normalize_orders_and_validates(self):
        memory = families()["memory"]
        assert memory.normalize({"bits": 2, "words": 4}) == (
            ("words", 4), ("bits", 2)
        )

    def test_normalize_rejects_unknown_param(self):
        with pytest.raises(PylseError, match="no parameter"):
            families()["bitonic"].normalize({"n": 4, "depth": 2})

    def test_normalize_rejects_missing_param(self):
        with pytest.raises(PylseError, match="needs parameter"):
            families()["memory"].normalize({"words": 4})

    def test_normalize_rejects_out_of_range(self):
        with pytest.raises(PylseError, match=r"\[1, 16\]"):
            families()["adder_sync"].normalize({"n": 17})

    def test_normalize_rejects_non_power_of_two(self):
        with pytest.raises(PylseError, match="power of two"):
            families()["bitonic"].normalize({"n": 6})

    def test_normalize_rejects_bool(self):
        with pytest.raises(PylseError, match="integer"):
            families()["racetree"].normalize({"depth": True})

    def test_factory_is_deterministic(self):
        from repro.core.ir import compile_circuit

        factory = FamilyFactory("racetree", {"depth": 2})
        digest = compile_circuit(factory()).structural_hash
        assert compile_circuit(factory()).structural_hash == digest

    def test_factory_roundtrips_through_pickle(self):
        import pickle

        factory = FamilyFactory("bitonic", {"n": 4})
        clone = pickle.loads(pickle.dumps(factory))
        baseline = Simulation(factory()).simulate()
        assert Simulation(clone()).simulate() == baseline

    def test_every_default_grid_point_elaborates(self):
        for family in families().values():
            names = [name for name, _ in family.default_grid]
            smallest = {
                name: values[0] for name, values in family.default_grid
            }
            assert set(names) == {spec.name for spec in family.params}
            circuit = FamilyFactory(family.name, smallest)()
            assert Simulation(circuit).simulate()


class TestEngine:
    def test_sweep_three_families(self):
        engine = ExploreEngine()
        for name, grid in [
            ("bitonic", {"n": [2, 4]}),
            ("racetree", {"depth": [1, 2]}),
            ("adder_xsfq", {"n": [1, 2]}),
        ]:
            sweep = engine.sweep(name, grid, sigma=0.3, n_seeds=6)
            assert len(sweep.points) == 2
            for point in sweep.points:
                assert point.result.runs == 6
                assert point.cost.jjs > 0
                assert point.latency_ps > 0
                assert not point.cached

    def test_point_matches_direct_measure_yield(self):
        """Acceptance: element-wise identical to the uncached path."""
        engine = ExploreEngine()
        for name, params in [
            ("bitonic", {"n": 4}),
            ("racetree", {"depth": 2}),
            ("adder_sync", {"n": 2}),
        ]:
            point = engine.measure(name, params, sigma=0.4, n_seeds=8)
            factory = FamilyFactory(name, params)
            baseline = Simulation(factory()).simulate()
            direct = measure_yield(
                factory, PulseCountPredicate(baseline), 0.4, seeds=range(8)
            )
            assert point.result == direct
            assert point.result.failures == direct.failures

    def test_second_sweep_is_pure_cache_hits(self):
        engine = ExploreEngine()
        grid = {"depth": [1, 2, 3]}
        cold = engine.sweep("racetree", grid, sigma=0.5, n_seeds=6)
        assert engine.computations == 3
        warm = engine.sweep("racetree", grid, sigma=0.5, n_seeds=6)
        assert engine.computations == 3           # nothing recomputed
        assert engine.elaborations == 3           # nothing re-elaborated
        assert all(point.cached for point in warm.points)
        assert [p.result for p in warm.points] == [p.result for p in cold.points]

    def test_cache_key_separates_sigma_and_seeds(self):
        engine = ExploreEngine()
        first = engine.measure("bitonic", {"n": 2}, sigma=0.5, n_seeds=5)
        assert not engine.measure(
            "bitonic", {"n": 2}, sigma=0.6, n_seeds=5
        ).cached
        assert not engine.measure(
            "bitonic", {"n": 2}, sigma=0.5, n_seeds=6
        ).cached
        assert not engine.measure(
            "bitonic", {"n": 2}, sigma=0.5, n_seeds=5, seed0=1
        ).cached
        again = engine.measure("bitonic", {"n": 2}, sigma=0.5, n_seeds=5)
        assert again.cached and again.result == first.result

    def test_resolution_memoized_across_measurements(self):
        engine = ExploreEngine()
        engine.measure("bitonic", {"n": 4}, sigma=0.5, n_seeds=4)
        engine.measure("bitonic", {"n": 4}, sigma=0.9, n_seeds=4)
        # Different sigma misses the result cache but shares resolution.
        assert engine.elaborations == 1
        assert engine.computations == 2

    def test_sweep_pareto_is_nondominated(self):
        """Acceptance: no frontier point is dominated; every off-frontier
        point is dominated by someone."""
        engine = ExploreEngine()
        sweep = engine.sweep("adder_xsfq", {"n": [1, 2, 4]},
                             sigma=0.4, n_seeds=6)
        front = sweep.pareto
        assert front
        objectives = [point.objective() for point in sweep.points]
        for point in front:
            assert not any(
                dominates(other, point.objective()) for other in objectives
            )
        for point in sweep.points:
            if point not in front:
                assert any(
                    dominates(other, point.objective())
                    for other in objectives
                )

    def test_sweep_rejects_bad_grid_value(self):
        engine = ExploreEngine()
        with pytest.raises(PylseError, match="power of two"):
            engine.sweep("bitonic", {"n": [3]}, n_seeds=2)

    def test_unknown_family_rejected(self):
        with pytest.raises(PylseError, match="unknown design family"):
            ExploreEngine().measure("nope", {}, sigma=0.5, n_seeds=2)

    def test_stats_shape(self):
        engine = ExploreEngine()
        engine.measure("racetree", {"depth": 1}, sigma=0.5, n_seeds=3)
        stats = engine.stats()
        assert stats["computations"] == 1
        assert stats["elaborations"] == 1
        assert stats["result_cache"]["misses"] == 1


class TestExploreCli:
    def test_list_families(self, capsys):
        assert main(["explore", "--list"]) == 0
        out = capsys.readouterr().out
        for name in family_names():
            assert name in out

    def test_missing_family_is_usage_error(self, capsys):
        assert main(["explore"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_text_sweep(self, capsys):
        assert main(["explore", "racetree", "--grid", "depth=1,2",
                     "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "family 'racetree'" in out
        assert "depth=1" in out and "depth=2" in out
        assert "pareto frontier:" in out

    def test_json_sweep_schema(self, capsys):
        assert main(["explore", "bitonic", "--grid", "n=2,4",
                     "--seeds", "5", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-explore-v1"
        assert payload["grid"] == {"n": [2, 4]}
        assert len(payload["points"]) == 2
        point = payload["points"][0]
        assert point["params"] == {"n": 2}
        assert point["cost"]["jjs"] > 0
        assert point["result"]["runs"] == 5
        assert any(p["pareto"] for p in payload["points"])
        assert payload["passes"][0]["computations"] == 2

    def test_repeat_second_pass_cache_warm(self, capsys):
        assert main(["explore", "racetree", "--grid", "depth=1,2",
                     "--seeds", "4", "--repeat", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        first, second = payload["passes"]
        assert first["computations"] == 2
        assert second["computations"] == 0
        assert second["result_cache_hits"] == 2

    def test_csv_sweep(self, capsys):
        assert main(["explore", "memory", "--grid", "words=4,8",
                     "--grid", "bits=1", "--seeds", "3",
                     "--format", "csv"]) == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows[0][:4] == ["family", "words", "bits", "cells"]
        assert len(rows) == 3
        assert rows[1][0] == "memory" and rows[1][1] == "4"

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        assert main(["explore", "racetree", "--grid", "depth=1",
                     "--seeds", "3", "--format", "json",
                     "-o", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(target.read_text())["family"] == "racetree"

    def test_default_grid_used_without_flag(self, capsys):
        assert main(["explore", "racetree", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "depth=3" in out   # default grid is depth=1,2,3

    def test_unknown_axis_rejected(self, capsys):
        assert main(["explore", "bitonic", "--grid", "depth=2",
                     "--seeds", "3"]) == 1
        assert "no parameter" in capsys.readouterr().err

    def test_unknown_family_rejected(self, capsys):
        assert main(["explore", "nope", "--seeds", "3"]) == 1
        assert "unknown design family" in capsys.readouterr().err

    def test_bad_repeat_rejected(self, capsys):
        assert main(["explore", "racetree", "--grid", "depth=1",
                     "--repeat", "0"]) == 1
        assert "--repeat" in capsys.readouterr().err
