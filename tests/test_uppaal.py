"""Tests for the UPPAAL XML export and generated TCTL queries."""

import xml.etree.ElementTree as ET

from repro.core.circuit import working_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import min_max
from repro.sfq import and_s, jtl
from repro.ta import (
    correctness_query,
    no_error_query,
    to_uppaal_xml,
    translate_circuit,
)


def build_and():
    a = inp_at(30.0, name="A")
    b = inp_at(35.0, name="B")
    clk = inp_at(50.0, 100.0, name="CLK")
    and_s(a, b, clk, name="Q")
    return working_circuit()


class TestXmlExport:
    def test_xml_is_well_formed(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        xml = to_uppaal_xml(translation.network)
        root = ET.fromstring(xml)
        assert root.tag == "nta"

    def test_doctype_targets_uppaal(self):
        circuit = build_and()
        xml = to_uppaal_xml(translate_circuit(circuit).network)
        assert "Uppaal Team//DTD Flat System" in xml

    def test_one_template_per_automaton(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        root = ET.fromstring(to_uppaal_xml(translation.network))
        templates = root.findall("template")
        assert len(templates) == len(translation.network.automata)

    def test_declarations_cover_clocks_and_channels(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        root = ET.fromstring(to_uppaal_xml(translation.network))
        decl = root.find("declaration").text
        assert "clock global" in decl
        assert "chan " in decl
        for channel in translation.network.channels:
            assert channel in decl

    def test_system_instantiates_everything(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        root = ET.fromstring(to_uppaal_xml(translation.network))
        system = root.find("system").text
        for ta in translation.network.automata:
            assert ta.name in system

    def test_invariants_and_guards_serialized(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        xml = to_uppaal_xml(translation.network)
        root = ET.fromstring(xml)
        kinds = {
            label.get("kind")
            for label in root.iter("label")
        }
        assert {"invariant", "guard", "synchronisation", "assignment"} <= kinds

    def test_queries_embedded(self):
        circuit = build_and()
        translation = translate_circuit(circuit)
        xml = to_uppaal_xml(translation.network, queries=["A[] not deadlock"])
        root = ET.fromstring(xml)
        formulas = [q.find("formula").text for q in root.iter("query")]
        assert formulas == ["A[] not deadlock"]

    def test_save_roundtrip(self, tmp_path):
        from repro.ta import save_uppaal_xml

        circuit = build_and()
        translation = translate_circuit(circuit)
        path = tmp_path / "out.xml"
        save_uppaal_xml(translation.network, str(path))
        assert ET.parse(path).getroot().tag == "nta"


class TestGeneratedQueries:
    def test_query1_matches_paper_shape(self):
        """The min-max Query 1 formula from Section 5.3, scaled x10."""
        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        circuit = working_circuit()
        events = Simulation(circuit).simulate()
        translation = translate_circuit(circuit)
        tctl = correctness_query(circuit, translation, events).to_tctl()
        for constant in ("890", "2090", "3290", "1400", "2400", "3400"):
            assert f"global == {constant}" in tctl
        assert tctl.startswith("A[] (")
        assert "fta_end imply" in tctl

    def test_query2_lists_instance_error_locations(self):
        """Query 2 names locations like c0.C_err_a_1 (Section 5.3)."""
        a = inp_at(115, name="A")
        b = inp_at(64, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        circuit = working_circuit()
        tctl = no_error_query(translate_circuit(circuit)).to_tctl()
        assert "c0.C_err_" in tctl
        assert "c_inv0.C_INV_err_" in tctl

    def test_query1_without_pulses_forbids_location(self):
        a = inp_at(30.0, name="A")   # AND never fires: no b pulse
        b = inp_at(name="B")
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        circuit = working_circuit()
        events = Simulation(circuit).simulate()
        assert events["Q"] == []
        translation = translate_circuit(circuit)
        query = correctness_query(circuit, translation, events)
        assert all(not p.allowed_times for p in query.properties)
        assert "A[] not" in query.properties[0].to_tctl()
