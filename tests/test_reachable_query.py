"""Tests for the E<> reachability query (output_fires_query)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.mc import ModelChecker
from repro.sfq import and_s, jtl
from repro.ta import translate_circuit
from repro.ta.queries import Query, output_fires_query


class TestOutputFiresQuery:
    def test_satisfied_when_output_fires(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        circuit = working_circuit()
        translation = translate_circuit(circuit)
        query = output_fires_query(circuit, translation)
        result = ModelChecker(translation.network, time_limit=30).run([query])
        assert result.satisfied

    def test_violated_when_output_never_fires(self):
        a = inp_at(30.0, name="A")
        b = inp_at(name="B")               # logical 0: AND can never fire
        clk = inp_at(50.0, name="CLK")
        and_s(a, b, clk, name="Q")
        circuit = working_circuit()
        translation = translate_circuit(circuit)
        query = output_fires_query(circuit, translation)
        result = ModelChecker(translation.network, time_limit=30).run([query])
        violations = result.violations_for("reachable")
        assert violations
        assert "E<> unsatisfied" in violations[0].detail

    def test_selects_named_outputs_only(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        circuit = working_circuit()
        translation = translate_circuit(circuit)
        query = output_fires_query(circuit, translation, output_wires=["Q"])
        assert all(loc == "fta_end" for _, loc in query.error_locations)

    def test_unknown_output_rejected(self):
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        circuit = working_circuit()
        translation = translate_circuit(circuit)
        with pytest.raises(PylseError):
            output_fires_query(circuit, translation, output_wires=["A"])

    def test_tctl_rendering(self):
        query = Query(
            kind="reachable",
            error_locations=[("firingauto0", "fta_end")],
        )
        assert query.to_tctl() == "E<> (firingauto0.fta_end)"

    def test_incomplete_exploration_gives_no_verdict(self):
        """Budget exhaustion must not spuriously report E<> violated."""
        a = inp_at(100.0, 200.0, 300.0, name="A")
        jtl(a, name="Q")
        circuit = working_circuit()
        translation = translate_circuit(circuit)
        query = output_fires_query(circuit, translation)
        result = ModelChecker(translation.network, max_states=2).run([query])
        assert not result.completed
        # No 'reachable' violation claimed without a full exploration
        # (unless the target was in the explored prefix).
        if result.violations_for("reachable"):
            raise AssertionError("E<> verdict claimed on incomplete search")
