"""Tests for the vectorized multi-seed drain (``repro.core.batchsim``).

The element-wise batched == sequential property lives in
``tests/test_differential.py``; this file covers the module's contract
surface: eligibility, width resolution, the divergence report and its
exposure on ``YieldResult`` and the CLI, and reuse of a warm
``Simulation`` / compiled-circuit memo across batched drains.
"""

import pytest

from repro.core.batchsim import (
    DEFAULT_MAX_BATCH,
    BatchReport,
    batch_eligible,
    resolve_batch,
    run_batch,
)
from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.functional import hole
from repro.core.helpers import inp_at
from repro.core.ir import compile_circuit
from repro.core.montecarlo import measure_yield
from repro.core.simulation import Simulation
from repro.designs import min_max

from test_montecarlo import minmax_factory, minmax_ok


def hole_factory():
    """A Functional (hole) element: not Transitional, so not batchable."""

    @hole(delay=3.0, inputs=["a", "b"], outputs=["q"])
    def or_model(a, b, time):
        return a or b

    with fresh_circuit() as circuit:
        a = inp_at(10.0, name="A")
        b = inp_at(20.0, name="B")
        or_model(a, b).observe("Q")
    return circuit


def hole_ok(events):
    return len(events["Q"]) == 2


class TestEligibility:
    def test_transitional_design_is_eligible(self):
        compiled = compile_circuit(minmax_factory())
        assert batch_eligible(compiled)

    def test_result_is_memoized_on_the_compiled_circuit(self):
        compiled = compile_circuit(minmax_factory())
        assert batch_eligible(compiled) is batch_eligible(compiled)
        assert "batch_eligible" in compiled._cache

    def test_hole_design_is_not_eligible(self):
        compiled = compile_circuit(hole_factory())
        assert not batch_eligible(compiled)

    def test_ineligible_design_falls_back_wholesale(self):
        """A hole circuit sweeps correctly — on the sequential path,
        reported as `ineligible` — and matches the batch=0 run."""
        batched = measure_yield(hole_factory, hole_ok, 2.0, seeds=range(6))
        reference = measure_yield(
            hole_factory, hole_ok, 2.0, seeds=range(6), batch=0
        )
        assert batched == reference
        assert batched.batched_lanes == 0
        assert batched.fallback_seeds == list(range(6))
        assert batched.divergence == {"ineligible": 6}


class TestResolveBatch:
    def test_auto_and_none_cap_at_default(self):
        assert resolve_batch(None, 10) == 10
        assert resolve_batch("auto", 10) == 10
        assert resolve_batch(None, 10_000) == DEFAULT_MAX_BATCH

    def test_explicit_widths_pass_through(self):
        assert resolve_batch(0, 10) == 0
        assert resolve_batch(7, 10) == 7
        assert resolve_batch(500, 10) == 500

    @pytest.mark.parametrize("bad", [True, False, -1, 2.5, "wide"])
    def test_invalid_widths_rejected(self, bad):
        with pytest.raises(PylseError, match="batch"):
            resolve_batch(bad, 10)


class TestBatchReport:
    def test_merge_accumulates(self):
        a = BatchReport(batched_lanes=3, fallback_seeds=[7],
                        divergence={"order": 1})
        b = BatchReport(batched_lanes=2, fallback_seeds=[9, 11],
                        divergence={"order": 2, "violation": 1})
        a.merge(b)
        assert a.batched_lanes == 5
        assert a.fallback_seeds == [7, 9, 11]
        assert a.divergence == {"order": 3, "violation": 1}

    def test_count_skips_zero(self):
        report = BatchReport()
        report.count("order", 0)
        assert report.divergence == {}
        report.count("order", 2)
        report.count("order")
        assert report.divergence == {"order": 3}


class TestDivergenceObservability:
    def test_yield_result_accounts_for_every_seed(self):
        result = measure_yield(
            minmax_factory, minmax_ok, 12.0, seeds=range(50)
        )
        assert result.batched_lanes + len(result.fallback_seeds) == 50
        assert sum(result.divergence.values()) == len(result.fallback_seeds)
        # sigma 12 on Min-Max deterministically reorders some lanes
        assert result.divergence.get("order")

    def test_reference_run_reports_nothing(self):
        result = measure_yield(
            minmax_factory, minmax_ok, 12.0, seeds=range(50), batch=0
        )
        assert result.batched_lanes == 0
        assert result.fallback_seeds == []
        assert result.divergence == {}

    def test_fallback_seeds_in_seed_order(self):
        result = measure_yield(
            minmax_factory, minmax_ok, 12.0, seeds=range(100, 150)
        )
        assert result.fallback_seeds == sorted(result.fallback_seeds)
        assert all(100 <= s < 150 for s in result.fallback_seeds)


class TestCli:
    def test_batch_flag_and_stats_report(self, capsys):
        from repro.__main__ import main

        assert main(["yield", "Min-Max", "--sigma", "12", "--seeds", "40",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "batched lanes:" in out
        assert "divergence causes:" in out and "order:" in out

    def test_default_output_is_batch_free(self, capsys):
        """The CI smoke job diffs batched vs --batch 0 output verbatim."""
        from repro.__main__ import main

        assert main(["yield", "Min-Max", "--sigma", "12",
                     "--seeds", "40"]) == 0
        batched = capsys.readouterr().out
        assert main(["yield", "Min-Max", "--sigma", "12", "--seeds", "40",
                     "--batch", "0"]) == 0
        reference = capsys.readouterr().out
        assert "batched" not in batched
        assert batched == reference


class TestEdgeCases:
    def test_empty_seed_list(self):
        sim = Simulation(minmax_factory())
        outcomes, stats, report = run_batch(sim, minmax_ok, 1.0, [])
        assert outcomes == [] and stats == []
        assert report == BatchReport()

    def test_seed_none_draws_fresh_entropy(self):
        """seed=None lanes are non-reproducible by design (fresh
        SeedSequence entropy), unlike every integer seed."""
        from repro.core.batchsim import CounterNoise

        a = CounterNoise.for_seeds([None]).normal(0)
        b = CounterNoise.for_seeds([None]).normal(0)
        c = CounterNoise.for_seeds([3]).normal(0)
        d = CounterNoise.for_seeds([3]).normal(0)
        assert a[0] != b[0]
        assert c[0] == d[0]

    def test_overflow_diverges_and_matches_reference(self):
        """A max_pulses cutoff mid-batch masks every lane out; the
        replays then hit the same cutoff, so outcomes still match the
        per-seed reference run with the same limit."""
        sim = Simulation(minmax_factory())
        outcomes, _, report = run_batch(
            sim, minmax_ok, 1.0, range(8), max_pulses=3
        )
        assert report.divergence.get("overflow") == 8
        ref_sim = Simulation(minmax_factory())
        ref_outcomes, _, _ = run_batch(
            ref_sim, minmax_ok, 1.0, range(8), batch=0, max_pulses=3
        )
        assert outcomes == ref_outcomes

    def test_simultaneous_arrivals_tie_break_matches_reference(self):
        """Simultaneous pulses on AND's equal-priority a/b transitions
        force the dispatch tie-break draw; the batch steps with the
        majority's pick and replays minority lanes, which must agree
        with each lane's own sequential draw."""
        from repro.sfq import and_s

        def factory():
            with fresh_circuit() as circuit:
                a = inp_at(10.0, name="A")
                b = inp_at(10.0, name="B")
                clk = inp_at(30.0, name="CLK")
                and_s(a, b, clk, name="Q")
            return circuit

        def ok(events):
            return len(events["Q"]) == 1

        for sigma in (0.0, 4.0):
            batched = measure_yield(factory, ok, sigma, seeds=range(24))
            reference = measure_yield(
                factory, ok, sigma, seeds=range(24), batch=0
            )
            assert batched == reference
            assert list(batched.failures.items()) == list(
                reference.failures.items()
            )


class TestWarmReuse:
    """One Simulation + one compiled circuit across many batched drains."""

    def test_no_recompile_and_no_lane_state_leak(self):
        circuit = minmax_factory()
        sim = Simulation(circuit)
        compiled = compile_circuit(circuit)

        first = run_batch(sim, minmax_ok, 9.0, range(30))
        # warm memo: same compiled object, no structural recompilation
        assert compile_circuit(circuit) is compiled
        # an interleaved plain simulate() must not perturb batch state
        sim.reset()
        sim.simulate()
        second = run_batch(sim, minmax_ok, 9.0, range(30))
        assert compile_circuit(circuit) is compiled
        assert second[0] == first[0]
        assert second[2].batched_lanes == first[2].batched_lanes
        assert second[2].fallback_seeds == first[2].fallback_seeds
        assert second[2].divergence == first[2].divergence

    def test_batched_then_reset_then_sequential_is_clean(self):
        """A batched drain leaves the Simulation reusable: reset() +
        noise-free simulate() reproduces the nominal events."""
        circuit = minmax_factory()
        sim = Simulation(circuit)
        baseline = sim.simulate()
        run_batch(sim, minmax_ok, 20.0, range(40))
        sim.reset()
        assert sim.simulate() == baseline

    def test_stats_collection_reuses_the_same_sim(self):
        circuit = minmax_factory()
        sim = Simulation(circuit)
        outcomes1, stats1, _ = run_batch(
            sim, minmax_ok, 9.0, range(12), collect_stats=True
        )
        outcomes2, stats2, _ = run_batch(
            sim, minmax_ok, 9.0, range(12), collect_stats=True
        )
        assert outcomes1 == outcomes2
        assert [s.to_jsonable() for s in stats1] == [
            s.to_jsonable() for s in stats2
        ]
