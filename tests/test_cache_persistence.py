"""Cross-process persistence and the disk-hit identity contract.

The caching subsystem's hard invariant: a result served from the
persistent tier is **element-wise identical** to a fresh computation.
These tests rebuild each consumer (service, explorer, reach lint) from
scratch against a populated ``cache_dir`` — the in-memory tiers start
empty, exactly like a restarted process — and compare disk hits against
direct ``measure_yield``/``analyze_reach`` calls. The layering test pins
the dependency fix that motivated :mod:`repro.cache`: lint and explore
no longer import anything from :mod:`repro.serve`.
"""

import json
import pathlib
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import LINT_NAMESPACE, RESULTS_NAMESPACE, store_stats
from repro.core.montecarlo import YieldResult, measure_yield
from repro.core.serialize import (
    yield_result_from_jsonable,
    yield_result_to_jsonable,
)
from repro.exp.registry import build_in_fresh_circuit, registry
from repro.explore.engine import ExploreEngine
from repro.lint.reach_rules import (
    analyze_reach,
    clear_reach_cache,
    reach_analysis_from_jsonable,
    reach_analysis_to_jsonable,
)
from repro.serve import YieldService

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


# -- layering: the dependency inversion is fixed -----------------------
@pytest.mark.parametrize("package", ["lint", "explore"])
def test_no_serve_imports_outside_serve(package):
    """`repro.lint` and `repro.explore` must not import from `repro.serve`.

    Caching lives in `repro.cache` now; a lint or explore import of the
    serving layer would reintroduce the inverted dependency this refactor
    removed (and drag HTTP machinery into analysis-only processes).
    """
    offenders = []
    for path in (SRC / package).rglob("*.py"):
        text = path.read_text()
        if "from ..serve" in text or "from repro.serve" in text:
            offenders.append(str(path))
    assert offenders == []


def test_serve_cache_shim_warns_but_works():
    import importlib

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.serve.cache as shim

        shim = importlib.reload(shim)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    from repro.cache import LRUCache, MISSING, hit_rate

    assert shim.LRUCache is LRUCache
    assert shim.MISSING is MISSING
    assert shim.hit_rate is hit_rate


# -- serve: results survive a service restart --------------------------
def test_serve_restart_serves_identical_result_from_disk(tmp_path):
    payload = {"design": "Min-Max", "sigma": 0.6, "n_seeds": 12}
    cold = YieldService(cache_dir=tmp_path)
    first, cached = cold.yield_(payload)
    assert not cached and cold.computations == 1

    warm = YieldService(cache_dir=tmp_path)  # fresh process stand-in
    second, cached = warm.yield_(payload)
    assert cached and warm.computations == 0
    assert second == first

    stats = warm.stats()
    assert stats["cache"]["result_disk"]["hits"] == 1
    assert stats["cache_dir"] == str(tmp_path)


def test_serve_disk_hit_matches_direct_measurement(tmp_path):
    entry = next(e for e in registry() if e.name == "Min-Max")
    service = YieldService(cache_dir=tmp_path)
    service.yield_({"design": "Min-Max", "sigma": 0.7, "n_seeds": 9})

    warm = YieldService(cache_dir=tmp_path)
    served, cached = warm.yield_(
        {"design": "Min-Max", "sigma": 0.7, "n_seeds": 9}
    )
    assert cached

    resolved = service._resolve_design("Min-Max")
    direct = measure_yield(
        resolved.factory, resolved.predicate, 0.7, seeds=range(9)
    )
    assert served["result"] == yield_result_to_jsonable(direct)


def test_serve_critical_sigma_persists(tmp_path):
    payload = {"design": "Min-Max", "n_seeds": 6, "iterations": 3}
    cold = YieldService(cache_dir=tmp_path)
    first, cached = cold.critical_sigma(payload)
    assert not cached

    warm = YieldService(cache_dir=tmp_path)
    second, cached = warm.critical_sigma(payload)
    assert cached
    assert second == first
    assert warm.computations == 0


# -- explore: a fresh-process sweep recomputes nothing -----------------
def test_explore_rerun_in_fresh_engine_computes_zero(tmp_path):
    grid = {"n": [2, 4]}
    cold = ExploreEngine(cache_dir=tmp_path)
    first = cold.sweep("bitonic", grid, sigma=0.4, n_seeds=8)
    assert cold.computations == len(first.points)

    warm = ExploreEngine(cache_dir=tmp_path)
    second = warm.sweep("bitonic", grid, sigma=0.4, n_seeds=8)
    assert warm.computations == 0
    assert all(point.cached for point in second.points)
    for a, b in zip(first.points, second.points):
        assert a.result == b.result  # element-wise identity, not proximity


def test_explore_disk_hit_matches_direct_measurement(tmp_path):
    cold = ExploreEngine(cache_dir=tmp_path)
    cold.measure("bitonic", {"n": 4}, sigma=0.5, n_seeds=7)

    warm = ExploreEngine(cache_dir=tmp_path)
    point = warm.measure("bitonic", {"n": 4}, sigma=0.5, n_seeds=7)
    assert point.cached

    resolved = warm.resolve("bitonic", {"n": 4})
    direct = measure_yield(
        resolved.factory, resolved.predicate, 0.5, seeds=range(7)
    )
    assert point.result == direct


def test_explore_sweep_warms_the_serve_store(tmp_path):
    """Serve and explore share the results namespace: one store, one key
    contract, so a sweep pre-warms the service for the same circuits."""
    engine = ExploreEngine(cache_dir=tmp_path)
    engine.measure("bitonic", {"n": 2}, sigma=0.5, n_seeds=5)
    digest = engine.resolve("bitonic", {"n": 2}).digest

    from repro.core.ir import result_cache_key

    service = YieldService(cache_dir=tmp_path)
    key = result_cache_key(digest, sigma=0.5, n_seeds=5)
    hit = service.result_store.get(key)
    from repro.cache import MISSING

    assert hit is not MISSING
    assert hit == yield_result_to_jsonable(
        engine.result_store.get(key)
    )


# -- lint: finished reach analyses survive restarts --------------------
def test_reach_analysis_persists_and_is_identical(tmp_path):
    entry = next(e for e in registry() if e.name == "Min-Max")
    circuit = build_in_fresh_circuit(entry)
    fresh, cached = analyze_reach(circuit, cache_dir=tmp_path)
    assert not cached

    clear_reach_cache()  # fresh-process stand-in: memory tier empty
    circuit2 = build_in_fresh_circuit(entry)
    warm, cached = analyze_reach(circuit2, cache_dir=tmp_path)
    assert cached
    assert warm == fresh
    assert store_stats(tmp_path)["namespaces"][LINT_NAMESPACE]["entries"] == 1


def test_reach_analysis_round_trips_through_json():
    entry = next(e for e in registry() if e.name == "Min-Max")
    circuit = build_in_fresh_circuit(entry)
    analysis, _ = analyze_reach(circuit, use_cache=False)
    doc = json.loads(json.dumps(reach_analysis_to_jsonable(analysis)))
    assert reach_analysis_from_jsonable(doc) == analysis


# -- the yield-result codec: differential + property -------------------
def test_yield_result_round_trip_on_real_measurement():
    entry = next(e for e in registry() if e.name == "Min-Max")
    circuit = build_in_fresh_circuit(entry)
    from repro.core.simulation import Simulation
    from repro.exp.registry import PulseCountPredicate, RegistryFactory

    baseline = Simulation(circuit).simulate()
    result = measure_yield(
        RegistryFactory("Min-Max"),
        PulseCountPredicate(baseline),
        1.5,
        seeds=range(10),
    )
    doc = json.loads(json.dumps(yield_result_to_jsonable(result)))
    assert yield_result_from_jsonable(doc) == result


@settings(max_examples=50, deadline=None)
@given(
    sigma=st.floats(
        min_value=0.0, max_value=16.0,
        allow_nan=False, allow_infinity=False,
    ),
    outcomes=st.lists(
        st.sampled_from(["pass", "mis_behaved", "violation"]),
        min_size=0, max_size=40,
    ),
)
def test_yield_result_round_trip_property(sigma, outcomes):
    """Any constructible result survives the JSON round trip unchanged."""
    failures = {}
    passed = mis = vio = 0
    for seed, kind in enumerate(outcomes):
        if kind == "pass":
            passed += 1
        elif kind == "mis_behaved":
            mis += 1
            failures[seed] = "mis_behaved"
        else:
            vio += 1
            failures[seed] = "timing violation"
    result = YieldResult(
        sigma=sigma, runs=len(outcomes), passed=passed,
        mis_behaved=mis, violations=vio, failures=failures,
    )
    doc = json.loads(json.dumps(yield_result_to_jsonable(result)))
    assert yield_result_from_jsonable(doc) == result


def test_yield_result_decode_rejects_foreign_formats():
    from repro.core.errors import PylseError

    with pytest.raises(PylseError, match="format"):
        yield_result_from_jsonable({"format": "something-else"})
    with pytest.raises(PylseError):
        yield_result_from_jsonable({"format": "repro-yield-result-v1"})


# -- the store namespaces stay separate --------------------------------
def test_consumers_write_disjoint_namespaces(tmp_path):
    YieldService(cache_dir=tmp_path).yield_(
        {"design": "Min-Max", "sigma": 0.5, "n_seeds": 5}
    )
    entry = next(e for e in registry() if e.name == "AND")
    clear_reach_cache()
    analyze_reach(build_in_fresh_circuit(entry), cache_dir=tmp_path)
    stats = store_stats(tmp_path)
    assert stats["namespaces"][RESULTS_NAMESPACE]["entries"] == 1
    assert stats["namespaces"][LINT_NAMESPACE]["entries"] == 1
