"""Functional truth-table tests for all 16 basic cells (Table 3).

Clocked gates are exercised through the pure Trace Relation (fast and
exact); structural/metadata expectations pin the Table 3 counts.
"""

import pytest

from repro.sfq import (
    AND,
    BASIC_CELLS,
    C,
    DRO,
    DRO_C,
    DRO_SR,
    INV,
    InvC,
    JOIN,
    JTL,
    M,
    NAND,
    NOR,
    OR,
    S,
    XNOR,
    XOR,
)


def fired(machine, pulses, output=None):
    """Pulse times of ``output`` produced by tracing ``pulses``."""
    outs = machine.trace(pulses)
    return [t for (o, t) in outs if output is None or o == output]


def clocked_pulses(cell, a_bit, b_bit):
    pulses = []
    if a_bit:
        pulses.append(("a", 30.0))
    if b_bit:
        pulses.append(("b", 36.0))
    pulses.append(("clk", 60.0))
    pulses.append(("clk", 120.0))
    return pulses


TRUTH_TABLES = [
    (AND, lambda a, b: a and b),
    (OR, lambda a, b: a or b),
    (NAND, lambda a, b: not (a and b)),
    (NOR, lambda a, b: not (a or b)),
    (XOR, lambda a, b: a != b),
    (XNOR, lambda a, b: a == b),
]


class TestClockedGates:
    @pytest.mark.parametrize("cell_cls,logic", TRUTH_TABLES)
    @pytest.mark.parametrize("a_bit", [0, 1])
    @pytest.mark.parametrize("b_bit", [0, 1])
    def test_truth_table(self, cell_cls, logic, a_bit, b_bit):
        machine = cell_cls()._class_machine()
        pulses = clocked_pulses(cell_cls, a_bit, b_bit)
        times = fired(machine, pulses, "q")
        first_period = [t for t in times if t < 120.0]
        assert (len(first_period) == 1) == bool(logic(a_bit, b_bit))

    @pytest.mark.parametrize("cell_cls,logic", TRUTH_TABLES)
    def test_firing_time_is_clk_plus_delay(self, cell_cls, logic):
        a_bit, b_bit = next(
            (a, b) for a in (1, 0) for b in (1, 0) if logic(a, b)
        )
        machine = cell_cls()._class_machine()
        times = fired(machine, clocked_pulses(cell_cls, a_bit, b_bit), "q")
        assert times[0] == pytest.approx(60.0 + cell_cls.firing_delay)

    @pytest.mark.parametrize("cell_cls,logic", TRUTH_TABLES)
    def test_state_resets_each_period(self, cell_cls, logic):
        """Data from period 1 must not leak into period 2."""
        machine = cell_cls()._class_machine()
        times = fired(machine, clocked_pulses(cell_cls, 1, 1), "q")
        second_period = [t for t in times if t >= 120.0]
        assert (len(second_period) == 1) == bool(logic(0, 0))


class TestInverter:
    def test_fires_without_input(self):
        machine = INV()._class_machine()
        assert fired(machine, [("clk", 50.0)]) == [50.0 + INV.firing_delay]

    def test_silent_with_input(self):
        machine = INV()._class_machine()
        assert fired(machine, [("a", 30.0), ("clk", 50.0)]) == []


class TestStorage:
    def test_dro_stores_and_releases(self):
        machine = DRO()._class_machine()
        times = fired(machine, [("a", 30.0), ("clk", 50.0), ("clk", 100.0)])
        assert times == [50.0 + DRO.firing_delay]   # destructive: once only

    def test_dro_empty_read(self):
        machine = DRO()._class_machine()
        assert fired(machine, [("clk", 50.0)]) == []

    def test_dro_c_complementary(self):
        machine = DRO_C()._class_machine()
        outs = machine.trace([("a", 30.0), ("clk", 50.0), ("clk", 100.0)])
        assert [(o, t) for o, t in outs] == [
            ("q", 50.0 + DRO_C.firing_delay),
            ("qnot", 100.0 + DRO_C.firing_delay),
        ]

    def test_dro_sr_reset_clears(self):
        machine = DRO_SR()._class_machine()
        times = fired(machine, [("a", 30.0), ("rst", 40.0), ("clk", 50.0)])
        assert times == []

    def test_dro_sr_without_reset_fires(self):
        machine = DRO_SR()._class_machine()
        times = fired(machine, [("a", 30.0), ("clk", 50.0)])
        assert times == [50.0 + DRO_SR.firing_delay]


class TestAsyncCells:
    def test_jtl_passes_all(self):
        machine = JTL()._class_machine()
        times = fired(machine, [("a", 10.0), ("a", 20.0)])
        assert times == [15.0, 25.0]

    def test_splitter_duplicates(self):
        machine = S()._class_machine()
        outs = machine.trace([("a", 10.0)])
        assert sorted(outs) == [("l", 21.0), ("r", 21.0)]

    def test_merger_merges(self):
        machine = M()._class_machine()
        times = fired(machine, [("a", 10.0), ("b", 20.0)])
        assert times == [10.0 + M.firing_delay, 20.0 + M.firing_delay]

    def test_c_waits_for_both(self):
        machine = C()._class_machine()
        assert fired(machine, [("a", 10.0)]) == []
        assert fired(machine, [("a", 10.0), ("b", 40.0)]) == [40.0 + 12.0]
        assert fired(machine, [("b", 10.0), ("a", 40.0)]) == [40.0 + 12.0]

    def test_c_ignores_duplicates(self):
        machine = C()._class_machine()
        times = fired(machine, [("a", 10.0), ("a", 20.0), ("b", 40.0)])
        assert times == [52.0]

    def test_inv_c_fires_on_first(self):
        machine = InvC()._class_machine()
        assert fired(machine, [("a", 10.0), ("b", 40.0)]) == [10.0 + 14.0]
        assert fired(machine, [("b", 10.0), ("a", 40.0)]) == [10.0 + 14.0]

    def test_inv_c_rearms_after_pair(self):
        machine = InvC()._class_machine()
        times = fired(
            machine,
            [("a", 10.0), ("b", 40.0), ("b", 100.0), ("a", 130.0)],
        )
        assert times == [24.0, 114.0]


class TestJoin:
    CASES = [
        ("a_t", "b_t", "tt"),
        ("a_t", "b_f", "tf"),
        ("a_f", "b_t", "ft"),
        ("a_f", "b_f", "ff"),
    ]

    @pytest.mark.parametrize("a_rail,b_rail,expected", CASES)
    def test_pairings(self, a_rail, b_rail, expected):
        machine = JOIN()._class_machine()
        outs = machine.trace([(a_rail, 10.0), (b_rail, 30.0)])
        assert outs == [(expected, 30.0 + JOIN.firing_delay)]

    @pytest.mark.parametrize("a_rail,b_rail,expected", CASES)
    def test_pairings_b_first(self, a_rail, b_rail, expected):
        machine = JOIN()._class_machine()
        outs = machine.trace([(b_rail, 10.0), (a_rail, 30.0)])
        assert outs == [(expected, 30.0 + JOIN.firing_delay)]

    def test_sequence_of_pairs(self):
        machine = JOIN()._class_machine()
        outs = machine.trace([
            ("a_t", 10.0), ("b_f", 30.0), ("b_t", 60.0), ("a_f", 90.0),
        ])
        assert [o for o, _ in outs] == ["tf", "ft"]


class TestTable3Shapes:
    """Pin the PyLSE columns of Table 3 for every basic cell."""

    EXPECTED = {
        "C": (6, 3, 6), "C_INV": (6, 3, 6), "M": (2, 1, 2), "S": (1, 1, 1),
        "JTL": (1, 1, 1), "AND": (11, 4, 12), "OR": (4, 2, 6),
        "NAND": (12, 4, 12), "NOR": (6, 2, 6), "XOR": (9, 3, 9),
        "XNOR": (12, 4, 12), "INV": (4, 2, 4), "DRO": (4, 2, 4),
        "DRO_SR": (6, 2, 6), "DRO_C": (4, 2, 4), "JOIN": (20, 5, 20),
    }

    @pytest.mark.parametrize("cell_cls", BASIC_CELLS, ids=lambda c: c.name)
    def test_counts(self, cell_cls):
        size, states, transitions = self.EXPECTED[cell_cls.name]
        machine = cell_cls()._class_machine()
        assert cell_cls.dsl_size() == size
        assert len(machine.states) == states
        assert len(machine.transitions) == transitions

    @pytest.mark.parametrize("cell_cls", BASIC_CELLS, ids=lambda c: c.name)
    def test_every_cell_has_positive_jjs(self, cell_cls):
        assert cell_cls.jjs > 0
