"""Tests for the library-extension cells (NDRO, T1) beyond the paper's 16."""

import pytest

from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.sfq import EXTENSION_CELLS, NDRO, T1, jtl, m, ndro, t1


class TestNDRO:
    def machine(self):
        return NDRO()._class_machine()

    def test_reads_are_nondestructive(self):
        outs = self.machine().trace([
            ("set", 10.0), ("clk", 50.0), ("clk", 100.0), ("clk", 150.0),
        ])
        assert [o for o, _ in outs] == ["q", "q", "q"]

    def test_reset_stops_reads(self):
        outs = self.machine().trace([
            ("set", 10.0), ("clk", 50.0), ("rst", 70.0), ("clk", 100.0),
        ])
        assert len(outs) == 1

    def test_unset_reads_are_silent(self):
        assert self.machine().trace([("clk", 50.0)]) == []

    def test_in_circuit(self):
        set_ = inp_at(10.0, name="SET")
        rst = inp_at(120.0, name="RST")
        clk = inp(start=50, period=50, n=3, name="CLK")
        ndro(set_, rst, clk, name="Q")
        events = Simulation().simulate()
        # Reads at 50 and 100 fire; the read at 150 follows the reset.
        assert events["Q"] == [50.0 + NDRO.firing_delay, 100.0 + NDRO.firing_delay]


class TestT1:
    def test_alternating_outputs(self):
        outs = T1()._class_machine().trace([
            ("a", 10.0), ("a", 30.0), ("a", 50.0), ("a", 70.0),
        ])
        assert [o for o, _ in outs] == ["q0", "q1", "q0", "q1"]

    def test_frequency_divider_chain(self):
        """Two T1s in series divide an 8-pulse train by four."""
        a = inp(start=10, period=20, n=8, name="A")
        q0, q1 = t1(a)
        q0b, _q1b = t1(q0, names="DIV4 spare")
        del q0b
        events = Simulation().simulate()
        assert len(events["DIV4"]) == 2      # 8 / 4
        assert len(events["spare"]) == 2

    def test_divider_with_merged_monitor(self):
        """q0+q1 merged reproduces the full input rate (sanity)."""
        a = inp(start=10, period=25, n=6, name="A")
        q0, q1 = t1(a)
        m(q0, q1, name="ALL")
        events = Simulation().simulate()
        assert len(events["ALL"]) == 6


class TestRegistryHygiene:
    def test_extensions_not_in_basic_cells(self):
        from repro.sfq import BASIC_CELLS

        from repro.sfq import INH

        assert NDRO not in BASIC_CELLS
        assert T1 not in BASIC_CELLS
        assert len(BASIC_CELLS) == 16
        assert set(EXTENSION_CELLS) == {NDRO, T1, INH}

    def test_extensions_translate_to_ta(self):
        from repro.core.circuit import working_circuit
        from repro.ta import translate_circuit

        set_ = inp_at(10.0, name="SET")
        rst = inp_at(name="RST")
        clk = inp(start=50, period=50, n=2, name="CLK")
        ndro(set_, rst, clk, name="Q")
        stats = translate_circuit(working_circuit()).cell_stats()
        assert stats["channels"] == 4
        assert stats["ta"] >= 2

    def test_extensions_verify(self):
        from repro.mc import verify_design

        a = inp(start=10, period=30, n=3, name="A")
        q0, q1 = t1(a, names="Q0 Q1")
        del q0, q1
        report = verify_design(time_limit=60)
        assert report.ok, report.result.violations
