"""The compiled circuit IR: compile pass, memoization, pickling, indexes.

``compile_circuit`` is the single source of topology for every backend
(simulation, lint, static timing, TA export, serialization), so these tests
pin down its contract: dense ids mirror elaboration order, the memo is keyed
by the circuit's mutation version, tolerant compiles serve lint without
validating, and the frozen result survives a pickle round-trip with its memo
warm (the mechanism the Monte-Carlo workers rely on).
"""

import pickle

import pytest

from repro.core.analysis import clock_wires
from repro.core.circuit import Circuit, fresh_circuit
from repro.core.element import InGen
from repro.core.errors import PylseError, WireError
from repro.core.helpers import inp, inp_at
from repro.core.ir import CompiledCircuit, compile_circuit, structural_hash
from repro.core.serialize import circuit_to_json
from repro.core.simulation import Simulation
from repro.core.wire import Wire
from repro.sfq import JTL, and_s, dro, jtl, m, split


def build_fig12():
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    return circuit


def build_feedback():
    """A stateless loop: m0 -> jtl0 -> back into m0."""
    with fresh_circuit() as circuit:
        a = inp_at(5.0, name="A")
        fb = Wire("fb")
        x = m(a, fb)
        circuit.add_node(JTL(), [x], [fb])
    return circuit


class TestCompileBasics:
    def test_ids_mirror_elaboration_order(self):
        circuit = build_fig12()
        compiled = compile_circuit(circuit)
        assert [n.name for n in compiled.nodes] == [n.name for n in circuit.nodes]
        assert list(compiled.wires) == circuit.wires
        assert all(
            compiled.nodes[compiled.node_index[n.name]] is n
            for n in circuit.nodes
        )
        assert len(compiled) == len(circuit)

    def test_cells_and_inputs_partition_nodes(self):
        compiled = compile_circuit(build_fig12())
        assert [n.name for n in compiled.input_nodes()] == [
            n.name for n in compiled.circuit.input_nodes()
        ]
        assert [n.name for n in compiled.cells()] == [
            n.name for n in compiled.circuit.cells()
        ]
        assert sorted(compiled.cell_ids + compiled.input_ids) == list(
            range(len(compiled))
        )

    def test_wire_source_matches_source_of(self):
        circuit = build_fig12()
        compiled = compile_circuit(circuit)
        for wid, (src, port) in enumerate(compiled.wire_source):
            node, src_port = circuit.source_of[compiled.wires[wid]]
            assert compiled.nodes[src] is node and port == src_port

    def test_output_wire_ids_are_unconsumed(self):
        circuit = build_fig12()
        compiled = compile_circuit(circuit)
        outputs = [compiled.wires[k] for k in compiled.output_wire_ids]
        assert outputs == circuit.output_wires()
        assert all(compiled.wire_dest[k] is None for k in compiled.output_wire_ids)

    def test_topo_order_respects_edges(self):
        compiled = compile_circuit(build_fig12())
        assert compiled.is_acyclic and not compiled.feedback_edges
        position = {i: k for k, i in enumerate(compiled.topo_order)}
        assert all(position[src] < position[dst] for src, dst, _ in compiled.edges)

    def test_node_lookup(self):
        compiled = compile_circuit(build_fig12())
        assert compiled.node("and0").name == "and0"
        assert compiled.node_by_name["and0"] is compiled.node("and0")
        with pytest.raises(PylseError, match="No node named"):
            compiled.node("nope")

    def test_duplicate_node_names_rejected(self):
        circuit = Circuit()
        a = circuit.add_input(InGen([1.0]))
        # Two cells forced onto the same explicit name.
        circuit.add_node(JTL(), [a], name="dup")
        out = circuit.nodes[-1].output_wires["q"]
        circuit.add_node(JTL(), [out], name="dup")
        with pytest.raises(PylseError, match="Two nodes named 'dup'"):
            compile_circuit(circuit, validate=False)


class TestMemoization:
    def test_repeat_compile_returns_same_object(self):
        circuit = build_fig12()
        assert compile_circuit(circuit) is compile_circuit(circuit)

    def test_add_node_invalidates(self):
        circuit = build_fig12()
        first = compile_circuit(circuit)
        circuit.add_node(JTL(), [circuit.find_wire("Q")])
        second = compile_circuit(circuit)
        assert second is not first
        assert second.version > first.version

    def test_observe_invalidates(self):
        circuit = build_fig12()
        first = compile_circuit(circuit)
        circuit.find_wire("Q").observe("renamed")
        second = compile_circuit(circuit)
        assert second is not first
        assert "renamed" in second.labels

    def test_tolerant_then_strict_revalidates_in_place(self):
        circuit = build_fig12()
        tolerant = compile_circuit(circuit, validate=False)
        assert not tolerant.validated
        strict = compile_circuit(circuit)
        assert strict is tolerant and strict.validated

    def test_tolerant_compile_skips_validation(self):
        with fresh_circuit() as circuit:
            jtl(Wire("floating"), name="q")
        compiled = compile_circuit(circuit, validate=False)
        # The undriven wire only exists in dest_of, never in circuit.wires.
        assert "floating" not in compiled.wire_index
        with pytest.raises(WireError, match="has no driver"):
            compile_circuit(circuit)

    def test_simulate_uses_warm_compile(self):
        circuit = build_fig12()
        compiled = compile_circuit(circuit)
        sim = Simulation(circuit)
        events = sim.simulate()
        assert circuit._compiled_ir is compiled
        assert events["Q"] == [209.2, 259.2, 309.2]

    def test_simulation_accepts_compiled_circuit(self):
        compiled = compile_circuit(build_fig12())
        events = Simulation(compiled).simulate()
        assert events["Q"] == [209.2, 259.2, 309.2]


class TestPickleRoundTrip:
    def test_roundtrip_preserves_structure_and_memo(self):
        compiled = compile_circuit(build_fig12())
        compiled.node_by_name  # populate the lazy cache
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledCircuit)
        assert clone.structural_hash == compiled.structural_hash
        assert clone._cache == {}  # scratch never travels
        # The pickle cycle keeps the memo warm: compiling the unpickled
        # circuit is a cache hit, which is what makes shipping the compiled
        # form to Monte-Carlo workers a compile-once protocol.
        assert compile_circuit(clone.circuit) is clone

    def test_roundtrip_simulates_identically(self):
        compiled = compile_circuit(build_fig12())
        clone = pickle.loads(pickle.dumps(compiled))
        assert Simulation(clone.circuit).simulate() == Simulation(
            compiled.circuit
        ).simulate()


class TestDelayWindows:
    def test_jtl_window_is_constant(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            jtl(a, firing_delay=5.7, name="Q")
        compiled = compile_circuit(circuit)
        assert compiled.delay_window("jtl0", "q") == (5.7, 5.7)

    def test_window_spans_transitions(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            clk = inp_at(50.0, name="CLK")
            dro(a, clk, name="Q")
        compiled = compile_circuit(circuit)
        lo, hi = compiled.delay_window("dro0", "q")
        assert lo <= hi

    def test_unknown_port_raises(self):
        compiled = compile_circuit(build_fig12())
        with pytest.raises(PylseError, match="never fired by any transition"):
            compiled.delay_window("and0", "nope")


class TestTopologyAnnotations:
    def test_feedback_edges_flag_cycles(self):
        compiled = compile_circuit(build_feedback())
        assert not compiled.is_acyclic
        assert compiled.feedback_edges
        # Every node still appears exactly once in the forced order.
        assert sorted(compiled.topo_order) == list(range(len(compiled)))

    def test_cyclic_sccs_name_ordering(self):
        compiled = compile_circuit(build_feedback())
        (component,) = compiled.cyclic_sccs
        assert [compiled.nodes[i].name for i in component] == ["jtl0", "m0"]

    def test_acyclic_circuit_has_no_sccs(self):
        compiled = compile_circuit(build_fig12())
        assert compiled.cyclic_sccs == ()

    def test_clock_wires_match_analysis(self):
        circuit = build_fig12()
        compiled = compile_circuit(circuit)
        assert {
            label: list(cells) for label, cells in compiled.clock_wires.items()
        } == clock_wires(circuit)
        assert "CLK" in compiled.clock_wires

    def test_clock_reached_through_fabric(self):
        with fresh_circuit() as circuit:
            a = inp_at(100.0, name="A")
            b = inp_at(110.0, name="B")
            a2 = inp_at(120.0, name="A2")
            b2 = inp_at(130.0, name="B2")
            clk = inp_at(50.0, name="CLK")
            c1, c2 = split(jtl(clk))
            and_s(a, b, c1, name="Q1")
            and_s(a2, b2, c2, name="Q2")
        compiled = compile_circuit(circuit)
        assert set(compiled.clock_wires["CLK"]) == {"and0", "and1"}


class TestWireNamingIsolation:
    """Anonymous wire names are per-circuit, not process-global."""

    def test_back_to_back_circuits_serialize_identically(self):
        # Before the per-circuit counter, the second build's anonymous wires
        # continued from wherever the first build left the class-global
        # counter, so archived JSON depended on what ran earlier.
        first = build_fig12()
        second = build_fig12()
        assert circuit_to_json(first) == circuit_to_json(second)

    def test_back_to_back_circuits_hash_identically(self):
        assert structural_hash(build_fig12()) == structural_hash(build_fig12())

    def test_anonymous_names_start_at_zero_per_circuit(self):
        build_fig12()  # burn through some anonymous wires first
        with fresh_circuit() as circuit:
            a = inp_at(10.0)  # anonymous input wire
            jtl(a, name="Q")
        names = [w.name for w in circuit.wires]
        assert names[0] == "_0"


class TestWireIndexConsistency:
    def test_clean_circuit_has_no_problems(self):
        circuit = build_fig12()
        assert circuit.index_problems() == []

    def test_rename_keeps_index_consistent(self):
        circuit = build_fig12()
        q = circuit.find_wire("Q")
        q.observe("stage1")
        q.observe("stage2")
        assert circuit.index_problems() == []
        assert circuit.find_wire("stage2") is q
        with pytest.raises(WireError):
            circuit.find_wire("stage1")  # superseded alias dropped

    def test_feedback_wire_findable_before_driven(self):
        with fresh_circuit() as circuit:
            a = inp_at(5.0, name="A")
            fb = Wire()
            x = m(a, fb)
            fb.observe("fb_alias")
            assert circuit.find_wire("fb_alias") is fb
            circuit.add_node(JTL(), [x], [fb])
        assert circuit.index_problems() == []

    def test_corrupted_index_is_reported(self):
        circuit = build_fig12()
        stray = Wire("stray")
        circuit._wire_index["stray"] = stray
        problems = circuit.index_problems()
        assert any("no longer attached" in p for p in problems)

    def test_stale_label_is_reported(self):
        circuit = build_fig12()
        q = circuit.find_wire("Q")
        # Bypass observe() to simulate the historical staleness bug.
        q.observed_as = "sneaky"
        q._user_named = True
        problems = circuit.index_problems()
        assert problems
