"""Systematic tests of the cell wrapper functions (Table 1 / Section 4.1)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.sfq import (
    and_s, c, c_inv, dro, dro_c, dro_sr, inv_s, join, jtl, m, nand_s, ndro,
    nor_s, or_s, s, t1, xnor_s, xor_s,
)

TWO_IN_CLOCKED = [and_s, or_s, nand_s, nor_s, xor_s, xnor_s]


class TestWrapperPlacement:
    @pytest.mark.parametrize("wrapper", TWO_IN_CLOCKED, ids=lambda f: f.__name__)
    def test_clocked_gate_wrappers(self, wrapper):
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp(start=50, period=50, n=2, name="CLK")
        q = wrapper(a, b, clk, name="Q")
        assert q.name == "Q"
        node = working_circuit().cells()[0]
        assert list(node.input_wires.values()) == [a, b, clk]
        Simulation().simulate()   # runs clean

    def test_async_wrappers(self):
        a = inp_at(10.0, name="A")
        b = inp_at(40.0, name="B")
        q1 = c(a, b)
        q2 = jtl(q1)
        left, right = s(q2)
        merged = m(left, right, name="OUT")
        del merged
        events = Simulation().simulate()
        # C fires at 52, JTL at 57, splitter at 68, merger twice at 76.2.
        assert events["OUT"] == [76.2, 76.2]

    def test_c_inv_wrapper(self):
        a = inp_at(10.0, name="A")
        b = inp_at(40.0, name="B")
        c_inv(a, b, name="Q")
        assert Simulation().simulate()["Q"] == [24.0]

    def test_storage_wrappers(self):
        a = inp_at(30.0, name="A")
        clk = inp(start=50, period=50, n=2, name="CLK")
        dro(a, clk, name="Q")
        events = Simulation().simulate()
        assert events["Q"] == [55.1]

    def test_dro_sr_wrapper(self):
        a = inp_at(30.0, name="A")
        rst = inp_at(40.0, name="RST")
        clk = inp_at(60.0, name="CLK")
        dro_sr(a, rst, clk, name="Q")
        assert Simulation().simulate()["Q"] == []

    def test_dro_c_wrapper(self):
        a = inp_at(30.0, name="A")
        clk = inp(start=50, period=50, n=2, name="CLK")
        q, qnot = dro_c(a, clk, names="Q QN")
        del q, qnot
        events = Simulation().simulate()
        assert len(events["Q"]) == 1 and len(events["QN"]) == 1

    def test_inv_wrapper(self):
        a = inp_at(name="A")     # never pulses
        clk = inp_at(50.0, name="CLK")
        inv_s(a, clk, name="Q")
        assert len(Simulation().simulate()["Q"]) == 1

    def test_join_wrapper(self):
        a_t = inp_at(10.0, name="AT")
        a_f = inp_at(name="AF")
        b_t = inp_at(name="BT")
        b_f = inp_at(30.0, name="BF")
        outs = join(a_t, a_f, b_t, b_f, names="tt tf ft ff")
        del outs
        events = Simulation().simulate()
        assert len(events["tf"]) == 1
        assert not events["tt"] and not events["ft"] and not events["ff"]

    def test_extension_wrappers(self):
        set_ = inp_at(10.0, name="SET")
        rst = inp_at(name="RST")
        clk = inp(start=50, period=50, n=2, name="CLK")
        ndro(set_, rst, clk, name="Q")
        a = inp_at(200.0, 220.0, name="A2")
        q0, q1 = t1(a, names="T0 T1")
        del q0, q1
        events = Simulation().simulate()
        assert len(events["Q"]) == 2          # non-destructive readout
        assert len(events["T0"]) == len(events["T1"]) == 1


class TestDispatchPriorityReevaluation:
    def test_priority_read_from_new_state(self):
        """After the first simultaneous symbol is dispatched, the remaining
        symbols' priorities are re-read from the *new* state (the Dispatch
        Relation's argmin is per-configuration, not per-group)."""
        from repro.core.machine import PylseMachine, Transition

        machine = PylseMachine(
            name="P2", inputs=["x", "y"], outputs=["q"],
            transitions=[
                # In 'idle', x has priority; in 'next', y does.
                Transition(0, "idle", "x", "next", 0),
                Transition(1, "idle", "y", "idle", 1, firing={"q": 1.0}),
                Transition(2, "next", "y", "idle", 0, firing={"q": 2.0}),
                Transition(3, "next", "x", "next", 1),
            ],
        )
        config, outs = machine.dispatch(
            machine.initial_configuration(), {"x", "y"}, 10.0
        )
        # x first (priority 0 in idle) -> 'next'; then y fires with delay 2.
        assert outs == [("q", 12.0)]
        assert config.state == "idle"
