"""The Section 5.3 agreement check: TA execution vs discrete-event simulation.

"Once in UPPAAL, we checked that their internal simulator agrees with ours
from an input/output perspective" — reproduced with the bundled concrete
TA executor on every basic cell and the smaller designs.
"""

import pytest

from repro.core.errors import PylseError
from repro.core.simulation import Simulation
from repro.exp.registry import build_in_fresh_circuit, registry
from repro.mc.tasim import TASimulator, ta_events
from repro.ta import translate_circuit

ENTRIES = {e.name: e for e in registry()}
BASIC = [e for e in registry() if e.is_basic_cell]


def compare(entry):
    circuit = build_in_fresh_circuit(entry)
    sim_events = Simulation(circuit).simulate()
    translation = translate_circuit(circuit)
    ta = ta_events(translation.network)
    for wire in circuit.output_wires():
        name = wire.observed_as
        expected = sim_events[name]
        got = ta.get(name, [])
        # The TA side carries exact scaled integers; the simulator side can
        # accumulate float representation error (e.g. 49.400000000000006).
        assert got == pytest.approx(expected, abs=1e-6), (
            entry.name, name, got, expected,
        )


@pytest.mark.parametrize("entry", BASIC, ids=lambda e: e.name)
def test_every_basic_cell_agrees(entry):
    compare(entry)


@pytest.mark.parametrize(
    "name", ["Min-Max", "Race Tree", "Adder (xSFQ)"]
)
def test_designs_agree(name):
    compare(ENTRIES[name])


class TestExecutorMechanics:
    def test_error_location_reported(self):
        from repro.core.circuit import fresh_circuit
        from repro.core.helpers import inp, inp_at
        from repro.sfq import and_s

        with fresh_circuit() as circuit:
            a = inp_at(125, 175, name="A")
            b = inp_at(99, 185, name="B")        # Figure 13 setup violation
            clk = inp(start=50, period=50, n=4, name="CLK")
            and_s(a, b, clk, name="Q")
        translation = translate_circuit(circuit)
        with pytest.raises(PylseError, match="error location"):
            ta_events(translation.network)
        run = TASimulator(translation.network).run()
        assert run.error is not None
        assert "AND_err_b" in run.error

    def test_step_budget_enforced(self):
        from repro.core.circuit import fresh_circuit
        from repro.core.helpers import inp_at
        from repro.sfq import jtl

        with fresh_circuit() as circuit:
            a = inp_at(*[10.0 * k + 10 for k in range(20)], name="A")
            jtl(a, name="Q")
        translation = translate_circuit(circuit)
        with pytest.raises(PylseError, match="exceeded"):
            TASimulator(translation.network).run(max_steps=3)

    def test_quiescence(self):
        from repro.core.circuit import fresh_circuit
        from repro.core.helpers import inp_at
        from repro.sfq import jtl

        with fresh_circuit() as circuit:
            a = inp_at(50.0, name="A")
            jtl(a, name="Q")
        translation = translate_circuit(circuit)
        run = TASimulator(translation.network).run()
        assert run.error is None
        assert run.sends["Q"] == [550]         # scaled x10
        assert run.final_time >= 550
