"""Unit tests for the PyLSE Machine formalism (Section 3 / Figure 6)."""

import math

import pytest

from repro.core.errors import (
    PriorInputViolation,
    PylseError,
    TransitionTimeViolation,
    WellFormednessError,
)
from repro.core.machine import Configuration, PylseMachine, Transition


def two_state_machine(**overrides):
    """idle --a--> busy (fires q after 5); busy --a--> idle; tt on first."""
    defaults = dict(transition_time=2.0, firing={"q": 5.0})
    defaults.update(overrides)
    return PylseMachine(
        name="T",
        inputs=["a"],
        outputs=["q"],
        transitions=[
            Transition(id=0, source="idle", trigger="a", dest="busy",
                       priority=0, **defaults),
            Transition(id=1, source="busy", trigger="a", dest="idle",
                       priority=0),
        ],
    )


class TestConstruction:
    def test_states_collected_in_order(self):
        m = two_state_machine()
        assert m.states == ("idle", "busy")

    def test_initial_configuration(self):
        config = two_state_machine().initial_configuration()
        assert config.state == "idle"
        assert config.tau_done == 0.0
        assert config.theta["a"] == -math.inf

    def test_delta_total(self):
        m = two_state_machine()
        assert m.delta("idle", "a").dest == "busy"
        assert m.delta("busy", "a").dest == "idle"

    def test_delta_unknown_pair_raises(self):
        with pytest.raises(PylseError, match="no transition"):
            two_state_machine().delta("idle", "zzz")

    def test_missing_transition_rejected(self):
        with pytest.raises(WellFormednessError, match="not fully specified"):
            PylseMachine(
                name="Bad", inputs=["a", "b"], outputs=["q"],
                transitions=[
                    Transition(0, "idle", "a", "idle", 0, firing={"q": 1.0}),
                ],
            )

    def test_unknown_trigger_rejected(self):
        with pytest.raises(WellFormednessError, match="unknown input"):
            PylseMachine(
                name="Bad", inputs=["a"], outputs=["q"],
                transitions=[
                    Transition(0, "idle", "x", "idle", 0, firing={"q": 1.0}),
                ],
            )

    def test_unknown_output_rejected(self):
        with pytest.raises(WellFormednessError, match="unknown output"):
            PylseMachine(
                name="Bad", inputs=["a"], outputs=["q"],
                transitions=[
                    Transition(0, "idle", "a", "idle", 0, firing={"z": 1.0}),
                ],
            )

    def test_no_output_anywhere_rejected(self):
        with pytest.raises(WellFormednessError, match="ever fires"):
            PylseMachine(
                name="Bad", inputs=["a"], outputs=["q"],
                transitions=[Transition(0, "idle", "a", "idle", 0)],
            )

    def test_duplicate_state_input_pair_rejected(self):
        with pytest.raises(WellFormednessError, match="must be a function"):
            PylseMachine(
                name="Bad", inputs=["a"], outputs=["q"],
                transitions=[
                    Transition(0, "idle", "a", "idle", 0, firing={"q": 1.0}),
                    Transition(1, "idle", "a", "idle", 1),
                ],
            )

    def test_missing_initial_state_rejected(self):
        with pytest.raises(WellFormednessError, match="initial state"):
            PylseMachine(
                name="Bad", inputs=["a"], outputs=["q"], initial="nowhere",
                transitions=[
                    Transition(0, "idle", "a", "idle", 0, firing={"q": 1.0}),
                ],
            )

    def test_negative_transition_time_rejected(self):
        with pytest.raises(WellFormednessError, match="negative transition"):
            two_state_machine(transition_time=-1.0)

    def test_invalid_past_constraint_rejected(self):
        with pytest.raises(WellFormednessError, match="past-constraint"):
            two_state_machine(past_constraints={"a": -3.0})

    def test_constraint_on_unknown_input_rejected(self):
        with pytest.raises(WellFormednessError, match="constrains unknown"):
            two_state_machine(past_constraints={"zzz": 3.0})

    def test_no_inputs_rejected(self):
        with pytest.raises(WellFormednessError, match="no inputs"):
            PylseMachine(name="Bad", inputs=[], outputs=["q"], transitions=[])


class TestStep:
    """The Transition Relation: Normal-kappa and the two error rules."""

    def test_normal_step_updates_configuration(self):
        m = two_state_machine()
        config, outs = m.step(m.initial_configuration(), "a", 10.0)
        assert config.state == "busy"
        assert config.tau_done == 12.0          # tau_tran + tau_arr
        assert config.theta["a"] == 10.0
        assert outs == [("q", 5.0)]

    def test_arrival_exactly_at_tau_done_is_legal(self):
        m = two_state_machine()
        config, _ = m.step(m.initial_configuration(), "a", 10.0)
        config, _ = m.step(config, "a", 12.0)    # tau_arr == tau_done
        assert config.state == "idle"

    def test_error_kappa_tran(self):
        m = two_state_machine()
        config, _ = m.step(m.initial_configuration(), "a", 10.0)
        with pytest.raises(TransitionTimeViolation, match="still transitioning"):
            m.step(config, "a", 11.0)

    def test_error_kappa_cons(self):
        m = two_state_machine(past_constraints={"a": 50.0})
        config, _ = m.step(m.initial_configuration(), "a", 10.0)
        config, _ = m.step(config, "a", 20.0)    # back to idle, theta[a]=20
        with pytest.raises(PriorInputViolation, match="past_constraints"):
            m.step(config, "a", 30.0)            # 30 < 20 + 50

    def test_constraint_satisfied_when_enough_time_passed(self):
        m = two_state_machine(past_constraints={"a": 5.0})
        config, _ = m.step(m.initial_configuration(), "a", 10.0)
        config, _ = m.step(config, "a", 20.0)
        config, _ = m.step(config, "a", 25.0)    # exactly theta + dist
        assert config.state == "busy"

    def test_wildcard_constraint_covers_all_inputs(self):
        m = PylseMachine(
            name="W", inputs=["a", "b"], outputs=["q"],
            transitions=[
                Transition(0, "idle", "a", "idle", 0, firing={"q": 1.0},
                           past_constraints={"*": 10.0}),
                Transition(1, "idle", "b", "idle", 0),
            ],
        )
        config = m.initial_configuration()
        config, _ = m.step(config, "b", 5.0)
        with pytest.raises(PriorInputViolation, match="input 'b'"):
            m.step(config, "a", 8.0)             # b seen 3 < 10 ago

    def test_explicit_constraint_overrides_wildcard(self):
        m = PylseMachine(
            name="W", inputs=["a", "b"], outputs=["q"],
            transitions=[
                Transition(0, "idle", "a", "idle", 0, firing={"q": 1.0},
                           past_constraints={"*": 10.0, "b": 1.0}),
                Transition(1, "idle", "b", "idle", 0),
            ],
        )
        config = m.initial_configuration()
        config, _ = m.step(config, "b", 5.0)
        config, outs = m.step(config, "a", 8.0)  # b constrained to 1.0 only
        assert outs == [("q", 1.0)]

    def test_never_seen_inputs_never_violate(self):
        m = two_state_machine(past_constraints={"a": 1e9})
        config, _ = m.step(m.initial_configuration(), "a", 0.0)
        assert config.state == "busy"


class TestDispatchAndTrace:
    def make_priority_machine(self):
        """Two inputs; 'clk' has priority 0 over 'a' at 1, from idle."""
        return PylseMachine(
            name="P", inputs=["a", "clk"], outputs=["q"],
            transitions=[
                Transition(0, "idle", "clk", "idle", 0, firing={"q": 2.0}),
                Transition(1, "idle", "a", "armed", 1),
                Transition(2, "armed", "clk", "idle", 0),
                Transition(3, "armed", "a", "armed", 1),
            ],
        )

    def test_choose_respects_priority(self):
        m = self.make_priority_machine()
        assert m.choose("idle", {"a", "clk"}) == "clk"

    def test_choose_tie_deterministic_without_rng(self):
        m = self.make_priority_machine()
        assert m.choose("armed", {"a"}) == "a"

    def test_dispatch_processes_all_simultaneous_inputs(self):
        m = self.make_priority_machine()
        config, outs = m.dispatch(m.initial_configuration(), {"a", "clk"}, 5.0)
        # clk first (fires q at 7.0), then a moves idle -> armed.
        assert outs == [("q", 7.0)]
        assert config.state == "armed"

    def test_dispatch_unknown_input_rejected(self):
        m = self.make_priority_machine()
        with pytest.raises(PylseError, match="unknown input"):
            m.dispatch(m.initial_configuration(), {"zzz"}, 5.0)

    def test_trace_accumulates_outputs_in_time_order(self):
        m = self.make_priority_machine()
        outs = m.trace([("clk", 10.0), ("clk", 5.0)])
        assert outs == [("q", 7.0), ("q", 12.0)]

    def test_trace_groups_simultaneous_pulses(self):
        m = self.make_priority_machine()
        outs = m.trace([("a", 5.0), ("clk", 5.0), ("clk", 10.0)])
        # t=5: clk fires then a arms; t=10: clk in armed, no output.
        assert outs == [("q", 7.0)]

    def test_trace_empty_input(self):
        m = self.make_priority_machine()
        assert m.trace([]) == []

    def test_transitions_from(self):
        m = self.make_priority_machine()
        assert {t.trigger for t in m.transitions_from("idle")} == {"a", "clk"}


class TestConfigurationImmutability:
    def test_step_does_not_mutate_input_configuration(self):
        m = two_state_machine()
        config = m.initial_configuration()
        m.step(config, "a", 10.0)
        assert config.state == "idle"
        assert config.theta["a"] == -math.inf

    def test_configuration_is_frozen(self):
        config = Configuration("idle", 0.0, {})
        with pytest.raises(AttributeError):
            config.state = "busy"  # type: ignore[misc]
