"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_delay, bitonic_sorter, min_max
from repro.sfq import C, DRO, InvC, M


# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------
def spaced_times(min_size=1, max_size=6, gap=10.0):
    """Strictly increasing pulse times with a minimum gap."""
    return st.lists(
        st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
        min_size=min_size, max_size=max_size,
    ).map(lambda deltas: [
        round(sum(deltas[: k + 1]) + gap * (k + 1), 3)
        for k in range(len(deltas))
    ])


# --------------------------------------------------------------------------
# machine-level properties
# --------------------------------------------------------------------------
class TestMergerProperties:
    @given(a=spaced_times(), b=spaced_times())
    @settings(max_examples=40)
    def test_merger_output_is_sorted_union(self, a, b):
        machine = M()._class_machine()
        b = [t + 5.0 for t in b]  # avoid exact collisions with a
        outs = machine.trace([("a", t) for t in a] + [("b", t) for t in b])
        expected = sorted(t + M.firing_delay for t in a + b)
        got = [t for _, t in outs]
        assert all(math.isclose(x, y) for x, y in zip(got, expected))
        assert len(got) == len(expected)


class TestCElementProperties:
    @given(a=st.floats(1, 500), b=st.floats(1, 500))
    @settings(max_examples=60)
    def test_c_fires_at_max(self, a, b):
        machine = C()._class_machine()
        outs = machine.trace([("a", a), ("b", b)])
        if a == b:
            # Simultaneous arrivals dispatch in sequence: still one firing.
            assert len(outs) == 1
        else:
            assert outs == [("q", max(a, b) + C.firing_delay)]

    @given(a=st.floats(1, 500), b=st.floats(1, 500))
    @settings(max_examples=60)
    def test_inv_c_fires_at_min(self, a, b):
        machine = InvC()._class_machine()
        outs = machine.trace([("a", a), ("b", b)])
        assert len(outs) == 1
        if a != b:
            assert outs == [("q", min(a, b) + InvC.firing_delay)]

    @given(rounds=st.lists(
        st.tuples(st.floats(1, 40), st.floats(1, 40)),
        min_size=1, max_size=5,
    ))
    @settings(max_examples=40)
    def test_c_round_trip(self, rounds):
        """Across rounds of (a, b) pairs, C fires once per round at the max."""
        machine = C()._class_machine()
        pulses, expected, offset = [], [], 0.0
        for da, db in rounds:
            ta, tb = offset + da, offset + db
            if ta == tb:
                tb += 1.0
            pulses += [("a", ta), ("b", tb)]
            expected.append(max(ta, tb) + C.firing_delay)
            offset = max(ta, tb) + 100.0
        outs = machine.trace(pulses)
        assert [t for _, t in outs] == expected


class TestDROProperties:
    @given(data=spaced_times(max_size=4), clks=spaced_times(max_size=4))
    @settings(max_examples=40)
    def test_dro_fires_at_most_once_per_clock(self, data, clks):
        machine = DRO()._class_machine()
        clks = [t + 500.0 for t in clks]  # keep clocks clear of data pulses
        outs = machine.trace(
            [("a", t) for t in data] + [("clk", t) for t in clks]
        )
        assert len(outs) <= len(clks)
        # And exactly once here: all data precede the first clock.
        assert len(outs) == (1 if data else 0)


# --------------------------------------------------------------------------
# full-circuit properties
# --------------------------------------------------------------------------
class TestSorterProperties:
    @given(perm=st.permutations([10.0, 35.0, 60.0, 85.0]))
    @settings(max_examples=20, deadline=None)
    def test_bitonic4_sorts_any_permutation(self, perm):
        with fresh_circuit() as circuit:
            ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(perm)]
            bitonic_sorter(ins, output_names=[f"o{k}" for k in range(4)])
        events = Simulation(circuit).simulate()
        outputs = [events[f"o{k}"][0] for k in range(4)]
        assert outputs == sorted(t + bitonic_delay(4) for t in perm)

    @given(perm=st.permutations([5.0, 20.0, 33.0, 45.0, 60.0, 70.0, 82.0, 90.0]))
    @settings(max_examples=8, deadline=None)
    def test_bitonic8_sorts_any_permutation(self, perm):
        with fresh_circuit() as circuit:
            ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(perm)]
            bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
        events = Simulation(circuit).simulate()
        outputs = [events[f"o{k}"][0] for k in range(8)]
        assert outputs == sorted(t + bitonic_delay(8) for t in perm)

    @given(
        a=st.floats(10, 200), b=st.floats(10, 200)
    )
    @settings(max_examples=30, deadline=None)
    def test_minmax_orders_any_pair(self, a, b):
        with fresh_circuit() as circuit:
            wa = inp_at(a, name="A")
            wb = inp_at(b, name="B")
            low, high = min_max(wa, wb)
            low.observe("low")
            high.observe("high")
        events = Simulation(circuit).simulate()
        assert events["low"] == [min(a, b) + 25.0]
        assert events["high"] == [max(a, b) + 25.0]
