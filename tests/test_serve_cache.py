"""Cache-correctness tests: LRU mechanics and structural-hash keying.

Two layers. The :class:`~repro.serve.cache.LRUCache` unit tests pin the
mechanics the service leans on — hard capacity bound under churn,
recency refresh on ``get`` (and *not* on ``peek``), eviction counters,
capacity-0 disablement. The :class:`~repro.serve.service.YieldService`
tests then pin the semantics built on top: the result and compiled
caches evict independently (losing a compiled design never drops its
cached results), and a mutated circuit — a new structural hash — can
never be served a stale entry while the original stays cached.
"""

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.serialize import circuit_to_json
from repro.designs import min_max
from repro.serve import MISSING, LRUCache, YieldService, hit_rate


# -- LRUCache mechanics ------------------------------------------------
def test_lru_bound_holds_under_churn():
    cache = LRUCache(4)
    for i in range(100):
        cache.put(i, i * 10)
    assert len(cache) == 4
    assert list(cache.keys()) == [96, 97, 98, 99]
    stats = cache.stats()
    assert stats["size"] == 4
    assert stats["capacity"] == 4
    assert stats["evictions"] == 96


def test_lru_get_refreshes_recency():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # "a" is now most recent
    cache.put("c", 3)  # evicts "b", the least recently used
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache


def test_lru_peek_touches_neither_recency_nor_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    before = cache.stats()
    assert cache.peek("a") == 1
    assert cache.peek("nope") is MISSING
    assert cache.stats() == before  # no hit/miss recorded
    cache.put("c", 3)  # peek did not refresh "a": it is the LRU entry
    assert "a" not in cache
    assert "b" in cache


def test_lru_update_moves_to_front_without_eviction():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # update, not insert: nothing evicted
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 0
    cache.put("c", 3)  # now "b" is the LRU entry
    assert cache.get("a") == 10
    assert "b" not in cache


def test_lru_counters_and_hit_rate():
    cache = LRUCache(8)
    assert hit_rate(cache.stats()) is None
    cache.put("a", 1)
    cache.get("a")
    cache.get("a")
    cache.get("missing")
    stats = cache.stats()
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert hit_rate(stats) == pytest.approx(2 / 3)


def test_lru_capacity_zero_disables():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is MISSING


def test_lru_rejects_bad_capacity():
    for capacity in (-1, 2.5, "big", True):
        with pytest.raises(PylseError):
            LRUCache(capacity)


# -- service-level keying ----------------------------------------------
def _minmax_text(a_time=60.0, b_time=25.0):
    with fresh_circuit() as circuit:
        a = inp_at(a_time, name="A")
        b = inp_at(b_time, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit_to_json(circuit)


def test_result_and_compiled_caches_evict_independently():
    """Evicting a compiled design must not drop its cached results."""
    service = YieldService(workers=1, cache_size=8, compiled_cache_size=1)
    request = {"design": "JTL", "sigma": 0.5, "n_seeds": 4}
    _, cached = service.yield_(dict(request))
    assert cached is False
    # Resolving a second design evicts JTL from the 1-entry compiled cache.
    service.yield_({"design": "AND", "sigma": 0.5, "n_seeds": 4})
    compiled_stats = service.compiled_cache.stats()
    assert compiled_stats["size"] == 1
    assert compiled_stats["evictions"] == 1
    # JTL's *result* survived: the repeat is a hit, no new computation.
    _, cached = service.yield_(dict(request))
    assert cached is True
    assert service.computations == 2
    assert service.result_cache.stats()["size"] == 2


def test_result_cache_churn_leaves_compiled_cache_alone():
    """Result-cache eviction must not drop the compiled design."""
    service = YieldService(workers=1, cache_size=2, compiled_cache_size=8)
    for i in range(4):  # 4 distinct sigmas churn the 2-entry result cache
        service.yield_({"design": "JTL", "sigma": 0.25 * (i + 1),
                        "n_seeds": 3})
    result_stats = service.result_cache.stats()
    assert result_stats["size"] == 2
    assert result_stats["evictions"] == 2
    compiled_stats = service.compiled_cache.stats()
    assert compiled_stats["size"] == 1
    assert compiled_stats["evictions"] == 0
    # The evicted sigma recomputes (a genuine miss, not a stale hit) ...
    _, cached = service.yield_({"design": "JTL", "sigma": 0.25,
                                "n_seeds": 3})
    assert cached is False
    # ... from the still-resolved compiled entry, untouched by the churn.
    assert service.compiled_cache.stats()["size"] == 1
    assert service.compiled_cache.stats()["evictions"] == 0


def test_mutated_circuit_never_hits_stale_entry():
    """A changed circuit gets a new structural hash, hence a fresh miss."""
    service = YieldService(workers=1)
    original = _minmax_text(a_time=60.0)
    mutated = _minmax_text(a_time=80.0)  # same topology, new schedule

    params = {"sigma": 0.4, "n_seeds": 4}
    first, cached = service.yield_({"circuit": original, **params})
    assert cached is False
    repeat, cached = service.yield_({"circuit": original, **params})
    assert cached is True
    assert repeat == first

    changed, cached = service.yield_({"circuit": mutated, **params})
    assert cached is False, "a mutated circuit must never hit a stale entry"
    assert changed["structural_hash"] != first["structural_hash"]
    assert service.computations == 2

    # The original entry is untouched by the mutated submission.
    again, cached = service.yield_({"circuit": original, **params})
    assert cached is True
    assert again == first


def test_distinct_parameters_are_distinct_keys():
    """Every measurement parameter participates in the cache key."""
    service = YieldService(workers=1)
    base = {"design": "JTL", "sigma": 0.5, "n_seeds": 4, "seed0": 0}
    service.yield_(dict(base))
    variants = [
        {**base, "sigma": 0.6},
        {**base, "n_seeds": 5},
        {**base, "seed0": 1},
        {**base, "batch": 2},
    ]
    for variant in variants:
        _, cached = service.yield_(variant)
        assert cached is False, variant
    # batch=None (the default) and batch="auto" are the same computation
    # by the determinism contract, so they share one key.
    _, cached = service.yield_({**base, "batch": "auto"})
    assert cached is True
