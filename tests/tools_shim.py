"""Helpers shared between the tools/ scripts and their tests."""


def golden_slug(name: str) -> str:
    """The filename slug tools/gen_goldens.py uses for a design name."""
    return name.lower().replace(" ", "_").replace("(", "").replace(")", "")
