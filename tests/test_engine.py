"""Tests for the persistent YieldEngine (repro.core.parallel).

Covers the engine-specific contracts on top of ``test_parallel.py``'s
bit-identity suite: pool reuse (one pool across a whole bisection
search), the adaptive serial fallback, crash degradation back to the
sequential reference path, per-chunk retry-once, and stats determinism
under the chunked engine.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.core.circuit import Circuit, fresh_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp_at
from repro.core.montecarlo import critical_sigma, measure_yield, yield_curve
from repro.core.parallel import (
    YieldEngine,
    _engine_chunk,
    _engine_worker_init,
    default_engine,
    run_chunk,
    shutdown_default_engines,
)
from repro.designs import min_max

#: Captured at import time in the parent; a forked pool worker inherits
#: this value but has a different pid — which is how ``crashing_predicate``
#: kills workers while staying harmless in the parent. (The injection
#: lives in the predicate because workers no longer run the factory at
#: all: the parent ships the compiled circuit via the pool initializer.)
_PARENT_PID = os.getpid()

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="worker-crash injection relies on fork inheritance",
)


def minmax_factory() -> Circuit:
    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit


def minmax_ok(events) -> bool:
    return (
        len(events["low"]) == 1
        and len(events["high"]) == 1
        and events["low"][0] < events["high"][0]
    )


def crashing_predicate(events) -> bool:
    """Judges fine in the parent, kills any pool worker that runs it."""
    if os.getpid() != _PARENT_PID:
        os._exit(13)
    return minmax_ok(events)


def unpicklable_hole_factory() -> Circuit:
    """Builds fine, but the hole's nested function defeats pickling."""
    from repro.core.functional import hole

    @hole(delay=5.0, inputs=["a", "b"], outputs=["lo", "hi"])
    def local_minmax(a, b, time):
        return (a and b) or None, a or b

    with fresh_circuit() as circuit:
        a = inp_at(60.0, name="A")
        b = inp_at(25.0, name="B")
        lo, hi = local_minmax(a, b)
        lo.observe("low")
        hi.observe("high")
    return circuit


@pytest.fixture(autouse=True)
def _clean_default_engines():
    yield
    shutdown_default_engines()


class TestPoolReuse:
    def test_critical_sigma_creates_exactly_one_pool(self):
        """The acceptance contract: every bisection iteration shares one
        warm pool."""
        with YieldEngine(workers=2, adaptive=False) as engine:
            value = critical_sigma(
                minmax_factory, minmax_ok, target_yield=0.9,
                sigma_hi=16.0, seeds=range(6), iterations=3,
                workers=2, engine=engine,
            )
            assert engine.pools_created == 1
            assert engine.last_backend == "pool"
        sequential = critical_sigma(
            minmax_factory, minmax_ok, target_yield=0.9,
            sigma_hi=16.0, seeds=range(6), iterations=3,
        )
        assert value == sequential

    def test_yield_curve_reuses_one_pool(self):
        with YieldEngine(workers=2, adaptive=False) as engine:
            curve = yield_curve(
                minmax_factory, minmax_ok, sigmas=(0.0, 6.0, 12.0),
                seeds=range(8), workers=2, engine=engine,
            )
            assert engine.pools_created == 1
        assert curve == yield_curve(
            minmax_factory, minmax_ok, sigmas=(0.0, 6.0, 12.0),
            seeds=range(8),
        )

    def test_task_change_recreates_pool(self):
        """A different factory/predicate means a different initializer
        payload, so the pool is rebuilt once."""
        from test_parallel import minmax_factory as other_factory

        with YieldEngine(workers=2, adaptive=False) as engine:
            measure_yield(minmax_factory, minmax_ok, 0.0, seeds=range(4),
                          engine=engine)
            measure_yield(other_factory, minmax_ok, 0.0, seeds=range(4),
                          engine=engine)
            assert engine.pools_created == 2

    def test_default_engine_cached_by_worker_count(self):
        assert default_engine(2) is default_engine(2)
        assert default_engine(2) is not default_engine(3)

    def test_default_engine_revived_after_shutdown(self):
        engine = default_engine(2)
        shutdown_default_engines()
        revived = default_engine(2)
        assert revived is not engine
        assert not revived.closed


class TestInitBlobProtocol:
    def test_compiled_circuit_shipped_when_picklable(self):
        """The pool initializer carries the parent's compiled circuit, so
        workers neither re-elaborate nor recompile."""
        from repro.core.ir import CompiledCircuit, compile_circuit

        task_blob = pickle.dumps((minmax_factory, minmax_ok))
        with YieldEngine(workers=2) as engine:
            blob = engine._task_init_blob(minmax_factory, minmax_ok, task_blob)
            kind, payload, predicate = pickle.loads(blob)
            assert kind == "compiled"
            assert isinstance(payload, CompiledCircuit)
            assert predicate is minmax_ok
            # The pickle cycle keeps the memo warm on the receiving side.
            assert compile_circuit(payload.circuit) is payload
            # One pickling per task: the blob is cached.
            assert engine._task_init_blob(
                minmax_factory, minmax_ok, task_blob
            ) is blob

    def test_factory_fallback_when_compiled_form_unpicklable(self):
        """Hole circuits wrap arbitrary callables; when the compiled form
        cannot pickle, the initializer falls back to shipping the factory
        and the worker elaborates once itself."""
        task_blob = pickle.dumps((unpicklable_hole_factory, minmax_ok))
        with YieldEngine(workers=2) as engine:
            blob = engine._task_init_blob(
                unpicklable_hole_factory, minmax_ok, task_blob
            )
            kind, payload, predicate = pickle.loads(blob)
            assert kind == "factory"
            assert payload is unpicklable_hole_factory
            assert predicate is minmax_ok


class TestAdaptiveFallback:
    def test_small_sweep_stays_serial(self):
        """Below the floor no pool is ever spawned."""
        with YieldEngine(workers=4) as engine:
            result = measure_yield(
                minmax_factory, minmax_ok, sigma=0.0, seeds=range(4),
                engine=engine,
            )
            assert result.yield_fraction == 1.0
            assert engine.pools_created == 0
            assert engine.last_backend == "serial"

    def test_min_seeds_parallel_override(self):
        with YieldEngine(workers=2) as engine:
            measure_yield(
                minmax_factory, minmax_ok, sigma=0.0, seeds=range(30),
                engine=engine, min_seeds_parallel=100,
            )
            assert engine.pools_created == 0

    def test_cheap_task_stays_serial_even_above_floor(self):
        """Min-Max costs ~0.2 ms/seed: 30 seeds cannot amortize a pool."""
        with YieldEngine(workers=2) as engine:
            result = measure_yield(
                minmax_factory, minmax_ok, sigma=12.0, seeds=range(30),
                engine=engine,
            )
            assert engine.pools_created == 0
            assert engine.last_backend == "serial"
        assert result == measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=range(30)
        )

    def test_forced_pool_policy_overrides_adaptive(self):
        with YieldEngine(workers=2) as engine:
            result = measure_yield(
                minmax_factory, minmax_ok, sigma=12.0, seeds=range(10),
                engine=engine, min_seeds_parallel=0,
            )
            serial_pools = engine.pools_created
            outcomes, _ = engine.run(
                minmax_factory, minmax_ok, 12.0, range(10), policy="pool"
            )
            assert engine.pools_created == serial_pools + 1
        assert outcomes == [
            result.failures.get(seed, "ok") for seed in range(10)
        ]

    def test_serial_policy_never_pools(self):
        with YieldEngine(workers=2, adaptive=False) as engine:
            result = measure_yield(
                minmax_factory, minmax_ok, sigma=12.0, seeds=range(20),
                engine=engine, workers=2,
            )
            assert engine.pools_created == 1
            outcomes, _ = engine.run(
                minmax_factory, minmax_ok, 12.0, range(20), policy="serial"
            )
            assert engine.pools_created == 1  # unchanged
        assert outcomes == run_chunk(minmax_factory, minmax_ok, 12.0,
                                     list(range(20)))
        assert result.runs == 20

    def test_bad_policy_rejected(self):
        with YieldEngine(workers=2) as engine:
            with pytest.raises(PylseError, match="policy"):
                engine.run(minmax_factory, minmax_ok, 0.0, range(4),
                           policy="warp")

    def test_bad_engine_string_rejected(self):
        with pytest.raises(PylseError, match="unknown engine"):
            measure_yield(minmax_factory, minmax_ok, 0.0, seeds=range(2),
                          engine="hyperdrive")


class TestStatsDeterminism:
    def test_stats_bit_identical_under_chunked_engine(self):
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=range(12),
            workers=1, collect_stats=True,
        )
        with YieldEngine(workers=2, adaptive=False,
                         chunks_per_worker=2) as engine:
            parallel = measure_yield(
                minmax_factory, minmax_ok, sigma=12.0, seeds=range(12),
                workers=2, collect_stats=True, engine=engine,
            )
        assert parallel.stats.to_jsonable() == sequential.stats.to_jsonable()
        assert parallel.stats.runs == 12
        assert list(parallel.failures.items()) == list(
            sequential.failures.items()
        )

    def test_adaptive_serial_stats_match_reference(self):
        """The calibration-prefix + serial-rest path folds in seed order."""
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=range(10),
            workers=1, collect_stats=True,
        )
        with YieldEngine(workers=2, min_seeds_parallel=0) as engine:
            adaptive = measure_yield(
                minmax_factory, minmax_ok, sigma=12.0, seeds=range(10),
                workers=2, collect_stats=True, engine=engine,
            )
            assert engine.last_backend == "serial"  # too cheap to pool
        assert adaptive.stats.to_jsonable() == sequential.stats.to_jsonable()


class TestDegradation:
    @FORK_ONLY
    def test_worker_crash_falls_back_to_identical_result(self):
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=range(20), workers=1
        )
        with YieldEngine(workers=2, adaptive=False) as engine:
            with pytest.warns(RuntimeWarning, match="retrying once"):
                degraded = measure_yield(
                    minmax_factory, crashing_predicate, sigma=12.0,
                    seeds=range(20), workers=2, engine=engine,
                )
            assert engine.fallbacks == 1
            assert engine.parallel_disabled
            assert engine.last_backend == "degraded"
            # retry-once spawned a second pool before giving up
            assert engine.pools_created == 2
            assert degraded == sequential

            # Subsequent calls skip the pool entirely: no thrash.
            again = measure_yield(
                minmax_factory, crashing_predicate, sigma=12.0, seeds=range(20),
                workers=2, engine=engine,
            )
            assert engine.last_backend == "serial"
            assert engine.pools_created == 2
            assert again == sequential

    @FORK_ONLY
    def test_crash_degradation_with_stats(self):
        sequential = measure_yield(
            minmax_factory, minmax_ok, sigma=12.0, seeds=range(10),
            workers=1, collect_stats=True,
        )
        with YieldEngine(workers=2, adaptive=False) as engine:
            with pytest.warns(RuntimeWarning):
                degraded = measure_yield(
                    minmax_factory, crashing_predicate, sigma=12.0,
                    seeds=range(10), workers=2, engine=engine,
                    collect_stats=True,
                )
        assert degraded.stats.to_jsonable() == sequential.stats.to_jsonable()

    def test_retry_once_recovers_without_degrading(self):
        """A transient failure costs one warning, not the pool."""
        from concurrent.futures.process import BrokenProcessPool

        engine = YieldEngine(workers=2, adaptive=False, chunks_per_worker=1)
        blob = pickle.dumps(("factory", minmax_factory, minmax_ok))
        # Run the worker initializer in-process so the fake pool can
        # execute chunk tasks inline.
        _engine_worker_init(blob)

        class FakeFuture:
            def __init__(self, fail, fn, args):
                self._fail = fail
                self._fn = fn
                self._args = args

            def result(self):
                if self._fail:
                    raise BrokenProcessPool("injected transient crash")
                return self._fn(*self._args)

        class FakePool:
            def __init__(self):
                self.rounds = 0

            def submit(self, fn, *args):
                # Every future of the first submission round fails; the
                # resubmitted round succeeds.
                return FakeFuture(self.rounds == 0, fn, args)

            def shutdown(self, **kwargs):
                self.rounds += 1

        fake = FakePool()

        def install_fake(task_blob, init_blob):
            # Mirror _ensure_pool: register the pool on the engine so the
            # failure path's _shutdown_pool() reaches fake.shutdown().
            engine._pool = fake
            engine._task_key = task_blob
            return fake

        engine._ensure_pool = install_fake
        with pytest.warns(RuntimeWarning, match="retrying once"):
            outcomes, _ = engine.run(
                minmax_factory, minmax_ok, 12.0, range(12)
            )
        assert not engine.parallel_disabled
        assert engine.fallbacks == 0
        assert outcomes == run_chunk(
            minmax_factory, minmax_ok, 12.0, list(range(12))
        )

    def test_closed_engine_rejected(self):
        engine = YieldEngine(workers=2)
        engine.close()
        with pytest.raises(PylseError, match="closed"):
            engine.run(minmax_factory, minmax_ok, 0.0, range(4))


class TestWorkerReuseSemantics:
    def test_engine_chunk_matches_reference_chunk(self):
        """The reused-circuit worker loop is bit-identical to fresh
        elaboration per seed (run in-process via the initializer)."""
        blob = pickle.dumps(("factory", minmax_factory, minmax_ok))
        _engine_worker_init(blob)
        seeds = list(range(25))
        outcomes, report = _engine_chunk(12.0, seeds)
        assert outcomes == run_chunk(minmax_factory, minmax_ok, 12.0, seeds)
        assert report.batched_lanes + len(report.fallback_seeds) == len(seeds)

    def test_simulation_reset_allows_reuse(self):
        from repro.core.simulation import Simulation

        circuit = minmax_factory()
        sim = Simulation(circuit)
        first = sim.simulate(variability={"stddev": 3.0}, seed=7)
        snapshot = {k: list(v) for k, v in first.items()}
        sim.reset()
        assert sim.events == {}
        assert sim.pulses_processed == 0
        assert sim.activity == {}
        again = sim.simulate(variability={"stddev": 3.0}, seed=7)
        assert again == snapshot

    def test_engine_rejects_bad_chunks_per_worker(self):
        with pytest.raises(PylseError, match="chunks_per_worker"):
            YieldEngine(workers=2, chunks_per_worker=0)
