"""Machine-level lint rules (PL1xx): one intentionally broken machine per rule."""

import pytest

from repro.core.machine import Transition
from repro.core.transitional import Transitional
from repro.lint import Severity, lint_machine, machine_findings, machine_spec
from repro.lint.machine_rules import MachineSpec
from repro.sfq import AND, JTL


def T(tid, src, trig, dst, priority=0, tt=0.0, firing=None, past=None):
    return Transition(
        id=tid, source=src, trigger=trig, dest=dst, priority=priority,
        transition_time=tt, firing=firing or {}, past_constraints=past or {},
    )


def spec(transitions, inputs, outputs=("q",), name="M"):
    return MachineSpec(
        name=name, inputs=tuple(inputs), outputs=tuple(outputs),
        transitions=tuple(transitions), initial="idle",
    )


def rules_of(findings):
    return {f.rule for f in findings}


class TestMachineRules:
    def test_pl101_pl102_unreachable_state_and_dead_transition(self):
        s = spec(
            [
                T(0, "idle", "a", "idle", firing={"q": 5.0}),
                T(1, "orphan", "a", "idle"),
            ],
            inputs=("a",),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL101", "PL102"}
        pl101 = next(f for f in findings if f.rule == "PL101")
        assert pl101.location.state == "orphan"
        pl102 = next(f for f in findings if f.rule == "PL102")
        assert pl102.location.transition_id == 1

    def test_pl103_output_never_fired(self):
        s = spec(
            [T(0, "idle", "a", "idle", firing={"q": 5.0})],
            inputs=("a",), outputs=("q", "r"),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL103"}
        assert findings[0].location.port == "r"

    def test_pl104_incomplete_alphabet(self):
        s = spec(
            [T(0, "idle", "a", "idle", firing={"q": 5.0})],
            inputs=("a", "b"),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL104"}
        assert findings[0].severity is Severity.ERROR
        assert "'b'" in findings[0].message

    def test_pl105_constraint_on_unknown_input(self):
        s = spec(
            [T(0, "idle", "a", "idle", firing={"q": 5.0}, past={"zz": 4.0})],
            inputs=("a",),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL105"}
        assert "zz" in findings[0].message

    def test_pl106_transition_time_exceeds_firing_delay(self):
        s = spec(
            [T(0, "idle", "a", "idle", tt=10.0, firing={"q": 3.0})],
            inputs=("a",),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL106"}
        assert findings[0].severity is Severity.WARNING

    def test_pl107_order_dependent_equal_priorities(self):
        s = spec(
            [
                T(0, "idle", "a", "sa", priority=1),
                T(1, "idle", "b", "sb", priority=1),
                T(2, "sa", "a", "sa", priority=1),
                T(3, "sa", "b", "sa", priority=1, firing={"q": 5.0}),
                T(4, "sb", "a", "sb", priority=1),
                T(5, "sb", "b", "sb", priority=1),
            ],
            inputs=("a", "b"),
        )
        findings = machine_findings(s)
        assert rules_of(findings) == {"PL107"}
        assert findings[0].severity is Severity.INFO
        assert findings[0].location.state == "idle"

    def test_pl107_silent_when_orders_agree(self):
        # AND-style commuting data triggers must not be flagged.
        assert not lint_machine(AND).findings

    def test_pl108_nondeterministic_delta(self):
        s = spec(
            [
                T(0, "idle", "a", "idle", firing={"q": 5.0}),
                T(1, "idle", "a", "other"),
                T(2, "other", "a", "idle"),
            ],
            inputs=("a",),
        )
        findings = machine_findings(s)
        assert "PL108" in rules_of(findings)
        pl108 = next(f for f in findings if f.rule == "PL108")
        assert pl108.severity is Severity.ERROR


class TestMachineSpecNormalization:
    def test_from_transitional_class_without_validation(self):
        # A raw cell definition that PylseMachine would reject outright
        # still gets a full lint report.
        class Broken(Transitional):
            name = "BROKEN"
            inputs = ["a", "b"]
            outputs = ["q"]
            transitions = [
                {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
            ]
            firing_delay = 5.0

        report = lint_machine(Broken)
        assert rules_of(report.findings) == {"PL104"}
        assert report.errors

    def test_from_instance(self):
        report = lint_machine(JTL())
        assert not report.findings

    def test_from_machine(self):
        report = lint_machine(JTL()._class_machine())
        assert not report.findings

    def test_rejects_other_objects(self):
        with pytest.raises(TypeError):
            machine_spec("JTL")  # type: ignore[arg-type]

    def test_spec_fields(self):
        s = machine_spec(AND)
        assert s.name == "AND"
        assert s.inputs == ("a", "b", "clk")
        assert "ab_arr" in s.states()


class TestSelectionAndSuppression:
    def _two_issue_spec(self):
        return spec(
            [
                T(0, "idle", "a", "idle", firing={"q": 5.0}),
                T(1, "orphan", "a", "idle"),
            ],
            inputs=("a",),
        )

    def test_select_narrows(self):
        findings = machine_findings(self._two_issue_spec(), select=("PL101",))
        assert rules_of(findings) == {"PL101"}

    def test_ignore_prefix(self):
        findings = machine_findings(self._two_issue_spec(), ignore=("PL1",))
        assert findings == []

    def test_ignore_beats_select(self):
        findings = machine_findings(
            self._two_issue_spec(), select=("PL101",), ignore=("PL101",)
        )
        assert findings == []

    def test_comma_strings_via_lint_machine(self):
        class Sloppy(Transitional):
            name = "SLOPPY"
            inputs = ["a"]
            outputs = ["q"]
            transitions = [
                {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
                {"src": "orphan", "trigger": "a", "dst": "idle"},
            ]
            firing_delay = 5.0

        report = lint_machine(Sloppy, select="PL101,PL103")
        assert rules_of(report.findings) == {"PL101"}

    def test_cell_level_lint_suppress(self):
        class Waived(Transitional):
            name = "WAIVED"
            inputs = ["a"]
            outputs = ["q"]
            transitions = [
                {"src": "idle", "trigger": "a", "dst": "idle", "firing": "q"},
                {"src": "orphan", "trigger": "a", "dst": "idle"},
            ]
            firing_delay = 5.0
            lint_suppress = ("PL10",)

        assert not lint_machine(Waived).findings
