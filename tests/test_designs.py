"""Integration tests for the six larger designs (Table 3, Section 5)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation
from repro.designs import (
    CLOCK_PERIOD,
    MINMAX_DELAY,
    adder_test_times,
    bitonic_comparators,
    bitonic_delay,
    bitonic_sorter,
    expected_label,
    full_adder,
    min_max,
    network_depth,
    race_tree,
    race_tree_inputs,
    xsfq_full_adder,
    xsfq_ripple_adder,
)


class TestMinMax:
    def test_paper_pulse_times(self):
        """The exact times from the paper's Query 1 formula (Section 5.3)."""
        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        events = Simulation().simulate()
        assert events["low"] == [89.0, 209.0, 329.0]      # 890/2090/3290 / 10
        assert events["high"] == [140.0, 240.0, 340.0]    # 1400/2400/3400 / 10

    def test_both_paths_are_25ps(self):
        a = inp_at(100, name="A")
        b = inp_at(50, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        events = Simulation().simulate()
        assert events["low"] == [50 + MINMAX_DELAY]
        assert events["high"] == [100 + MINMAX_DELAY]

    def test_uses_five_cells(self):
        a = inp_at(100, name="A")
        b = inp_at(50, name="B")
        min_max(a, b)
        assert len(working_circuit().cells()) == 5


class TestBitonic:
    def test_comparator_counts(self):
        assert len(bitonic_comparators(4)) == 6
        assert len(bitonic_comparators(8)) == 24

    def test_depths(self):
        assert network_depth(4) == 3
        assert network_depth(8) == 6
        assert bitonic_delay(8) == 150.0

    def test_non_power_of_two_rejected(self):
        from repro.core.errors import PylseError

        with pytest.raises(PylseError):
            bitonic_comparators(6)

    def test_cell_count_matches_table3(self):
        ins = [inp_at(10.0 * k + 5, name=f"i{k}") for k in range(8)]
        bitonic_sorter(ins)
        assert len(working_circuit().cells()) == 120   # 24 comparators x 5

    def test_sorts_and_delays(self):
        times = [20, 70, 10, 45, 5, 90, 33, 60]
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
        bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])
        events = Simulation().simulate()
        outputs = [events[f"o{k}"] for k in range(8)]
        assert all(len(out) == 1 for out in outputs)
        flat = [out[0] for out in outputs]
        assert flat == sorted(t + 150.0 for t in times)

    def test_four_input_variant(self):
        times = [40, 10, 30, 20]
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
        bitonic_sorter(ins, output_names=["o0", "o1", "o2", "o3"])
        events = Simulation().simulate()
        flat = [events[f"o{k}"][0] for k in range(4)]
        assert flat == sorted(t + bitonic_delay(4) for t in times)


class TestRaceTree:
    @pytest.mark.parametrize(
        "x1,x2", [(3.0, 4.0), (3.0, 15.0), (14.0, 2.0), (16.0, 17.0)]
    )
    def test_single_correct_winner(self, x1, x2):
        times = race_tree_inputs(x1, x2)
        wires = {k: inp_at(v, name=k) for k, v in times.items()}
        leaves = race_tree(
            wires["x1"], wires["t1"], wires["x2a"], wires["t2"],
            wires["x2b"], wires["t3"],
        )
        for leaf, label in zip(leaves, "abcd"):
            leaf.observe(label)
        events = Simulation().simulate()
        total = sum(len(events[label]) for label in "abcd")
        assert total == 1
        winner = next(label for label in "abcd" if events[label])
        assert winner == expected_label(x1, x2)

    def test_expected_label_boundaries(self):
        assert expected_label(9.9, 9.9) == "a"
        assert expected_label(10.0, 0.0) == "c"   # >= threshold goes right
        assert expected_label(0.0, 10.0) == "b"


class TestSyncAdder:
    @pytest.mark.parametrize("combo", range(8))
    def test_all_operand_combinations(self, combo):
        a_bit, b_bit, c_bit = (combo >> 2) & 1, (combo >> 1) & 1, combo & 1
        schedule = adder_test_times(a_bit, b_bit, c_bit)
        a = inp_at(*schedule["a"], name="a")
        b = inp_at(*schedule["b"], name="b")
        cin = inp_at(*schedule["cin"], name="cin")
        clk = inp(start=50, period=CLOCK_PERIOD, n=5, name="clk")
        total, carry = full_adder(a, b, cin, clk)
        total.observe("sum")
        carry.observe("cout")
        events = Simulation().simulate()
        value = a_bit + b_bit + c_bit
        assert len(events["sum"]) == (value & 1)
        assert len(events["cout"]) == (value >> 1)


class TestXsfqAdder:
    def rail(self, bit, name):
        true = inp_at(*([10.0] if bit else []), name=f"{name}_t")
        false = inp_at(*([] if bit else [10.0]), name=f"{name}_f")
        return (true, false)

    @pytest.mark.parametrize("combo", range(8))
    def test_full_adder_dual_rail(self, combo):
        a_bit, b_bit, c_bit = (combo >> 2) & 1, (combo >> 1) & 1, combo & 1
        total, carry = xsfq_full_adder(
            self.rail(a_bit, "a"), self.rail(b_bit, "b"), self.rail(c_bit, "c")
        )
        total[0].observe("st")
        total[1].observe("sf")
        carry[0].observe("ct")
        carry[1].observe("cf")
        events = Simulation().simulate()
        value = a_bit + b_bit + c_bit
        assert (len(events["st"]), len(events["sf"])) == (value & 1, 1 - (value & 1))
        assert (len(events["ct"]), len(events["cf"])) == (value >> 1, 1 - (value >> 1))

    @pytest.mark.parametrize("a_val,b_val", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_two_bit_ripple(self, a_val, b_val):
        a_bits = [self.rail((a_val >> k) & 1, f"a{k}") for k in range(2)]
        b_bits = [self.rail((b_val >> k) & 1, f"b{k}") for k in range(2)]
        cin = self.rail(0, "cin")
        sums, carry = xsfq_ripple_adder(a_bits, b_bits, cin)
        for k, (true, false) in enumerate(sums):
            true.observe(f"s{k}_t")
            false.observe(f"s{k}_f")
        carry[0].observe("cout_t")
        carry[1].observe("cout_f")
        events = Simulation().simulate()
        expected = a_val + b_val
        got = sum(
            (1 << k) * len(events[f"s{k}_t"]) for k in range(2)
        ) + 4 * len(events["cout_t"])
        assert got == expected
        # Dual-rail invariant: exactly one rail per signal fired.
        for k in range(2):
            assert len(events[f"s{k}_t"]) + len(events[f"s{k}_f"]) == 1
        assert len(events["cout_t"]) + len(events["cout_f"]) == 1
