"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "JTL" in out and "Min-Max" in out

    def test_datasheet(self, capsys):
        assert main(["datasheet", "AND"]) == 0
        out = capsys.readouterr().out
        assert "Cell: AND" in out and "q@9.2" in out

    def test_datasheet_unknown_cell(self, capsys):
        assert main(["datasheet", "NOPE"]) == 2
        assert "Unknown cell" in capsys.readouterr().err

    def test_dot(self, capsys):
        assert main(["dot", "DRO"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "DRO"')

    def test_simulate(self, capsys):
        assert main(["simulate", "JTL"]) == 0
        out = capsys.readouterr().out
        assert "pulses" in out

    def test_simulate_with_vcd(self, tmp_path, capsys):
        vcd = tmp_path / "out.vcd"
        assert main(["simulate", "Min-Max", "--vcd", str(vcd)]) == 0
        assert vcd.exists()
        assert "$timescale" in vcd.read_text()

    def test_yield_sequential(self, capsys):
        assert main(["yield", "Min-Max", "--sigma", "0.1",
                     "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo yield for Min-Max" in out
        assert "runs: 5" in out
        assert "yield:" in out

    def test_yield_parallel_matches_cli_contract(self, capsys):
        assert main(["yield", "Min-Max", "--sigma", "0.1", "--seeds", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers: 2" in out

    def test_yield_unknown_design(self, capsys):
        assert main(["yield", "NOPE"]) == 2

    def test_verify_satisfied(self, capsys):
        assert main(["verify", "JTL"]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_verify_budget_exhaustion_nonzero_exit(self, capsys):
        code = main(["verify", "Bitonic Sort 4", "--max-states", "50",
                     "--time-limit", "5"])
        assert code == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_energy(self, capsys):
        assert main(["energy", "Min-Max"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out and "aJ" in out

    def test_unknown_design(self, capsys):
        assert main(["simulate", "NOPE"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliExtensions:
    def test_lint_clean_design(self, capsys):
        assert main(["lint", "Min-Max"]) == 0
        out = capsys.readouterr().out
        assert "path balance: clean" in out

    def test_lint_reports_imbalance(self, capsys):
        # The race tree's leaf C elements see deliberately skewed inputs.
        assert main(["lint", "Race Tree"]) == 1
        out = capsys.readouterr().out
        assert "path-balance findings" in out

    def test_lint_reports_clock_skew(self, capsys):
        main(["lint", "Adder (Sync)"])
        out = capsys.readouterr().out
        assert "clock 'clk' skew" in out

    def test_trace(self, capsys):
        assert main(["trace", "JTL"]) == 0
        out = capsys.readouterr().out
        assert "jtl0(JTL)" in out
        assert "timing slack report" in out

    def test_export_stdout(self, capsys):
        assert main(["export", "JTL"]) == 0
        out = capsys.readouterr().out
        assert '"format": "repro-circuit-v1"' in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "circuit.json"
        assert main(["export", "Min-Max", "-o", str(target)]) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-circuit-v1"

    def test_export_roundtrips_via_library(self, tmp_path, capsys):
        from repro.core.serialize import circuit_from_json
        from repro.core.simulation import Simulation

        target = tmp_path / "mm.json"
        main(["export", "Min-Max", "-o", str(target)])
        rebuilt = circuit_from_json(target.read_text())
        events = Simulation(rebuilt).simulate()
        assert events["low"] == [89.0, 209.0, 329.0]
