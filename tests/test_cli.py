"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "JTL" in out and "Min-Max" in out

    def test_datasheet(self, capsys):
        assert main(["datasheet", "AND"]) == 0
        out = capsys.readouterr().out
        assert "Cell: AND" in out and "q@9.2" in out

    def test_datasheet_unknown_cell(self, capsys):
        assert main(["datasheet", "NOPE"]) == 2
        assert "Unknown cell" in capsys.readouterr().err

    def test_dot(self, capsys):
        assert main(["dot", "DRO"]) == 0
        out = capsys.readouterr().out
        assert out.startswith('digraph "DRO"')

    def test_simulate(self, capsys):
        assert main(["simulate", "JTL"]) == 0
        out = capsys.readouterr().out
        assert "pulses" in out

    def test_simulate_with_vcd(self, tmp_path, capsys):
        vcd = tmp_path / "out.vcd"
        assert main(["simulate", "Min-Max", "--vcd", str(vcd)]) == 0
        assert vcd.exists()
        assert "$timescale" in vcd.read_text()

    def test_yield_sequential(self, capsys):
        assert main(["yield", "Min-Max", "--sigma", "0.1",
                     "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo yield for Min-Max" in out
        assert "runs: 5" in out
        assert "yield:" in out

    def test_yield_parallel_matches_cli_contract(self, capsys):
        assert main(["yield", "Min-Max", "--sigma", "0.1", "--seeds", "4",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "workers: 2" in out

    def test_yield_stats(self, capsys):
        assert main(["yield", "Min-Max", "--sigma", "0.1", "--seeds", "3",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "yield:" in out
        assert "simulation metrics (3 runs)" in out

    def test_yield_stats_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "sweep.json"
        assert main(["yield", "Min-Max", "--sigma", "0.1", "--seeds", "3",
                     "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-obs-metrics-v1"
        assert payload["runs"] == 3

    def test_yield_unknown_design(self, capsys):
        assert main(["yield", "NOPE"]) == 2

    def test_yield_negative_workers_exits_1(self, capsys):
        assert main(["yield", "Min-Max", "--seeds", "2",
                     "--workers", "-1"]) == 1
        err = capsys.readouterr().err
        assert "workers must be a non-negative integer" in err

    def test_yield_unpicklable_predicate_exits_1(self, capsys, monkeypatch):
        # A closure predicate cannot be shipped to pool workers; the CLI
        # must surface the PylseError as a clean nonzero exit, not a
        # mid-pool traceback.
        import repro.__main__ as cli

        monkeypatch.setattr(
            cli, "PulseCountPredicate", lambda baseline: (lambda events: True)
        )
        assert main(["yield", "Min-Max", "--seeds", "4",
                     "--workers", "2"]) == 1
        err = capsys.readouterr().err
        assert "picklable" in err

    def test_verify_satisfied(self, capsys):
        assert main(["verify", "JTL"]) == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_verify_budget_exhaustion_nonzero_exit(self, capsys):
        code = main(["verify", "Bitonic Sort 4", "--max-states", "50",
                     "--time-limit", "5"])
        assert code == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_energy(self, capsys):
        assert main(["energy", "Min-Max"]) == 0
        out = capsys.readouterr().out
        assert "total:" in out and "aJ" in out

    def test_unknown_design(self, capsys):
        assert main(["simulate", "NOPE"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliExtensions:
    def test_lint_clean_design(self, capsys):
        assert main(["lint", "Min-Max"]) == 0
        out = capsys.readouterr().out
        assert "== Min-Max ==" in out
        assert "0 error(s)" in out

    def test_lint_reports_imbalance(self, capsys):
        # The race tree's leaf C elements see deliberately skewed inputs:
        # warnings, so the default --fail-on error still exits 0.
        assert main(["lint", "Race Tree"]) == 0
        assert "PL205 warning" in capsys.readouterr().out
        assert main(["lint", "Race Tree", "--fail-on", "warning"]) == 1

    def test_lint_reports_clock_structurally(self, capsys):
        main(["lint", "Adder (Sync)"])
        out = capsys.readouterr().out
        assert "clock 'clk': reaches 7 clocked cell(s)" in out

    def test_lint_multiple_designs(self, capsys):
        assert main(["lint", "Min-Max", "Race Tree"]) == 0
        out = capsys.readouterr().out
        assert "== Min-Max ==" in out and "== Race Tree ==" in out

    def test_lint_all_registry_designs_error_free(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert out.count("== ") >= 16

    def test_lint_select_and_ignore(self, capsys):
        assert main(["lint", "Race Tree", "--select", "PL3"]) == 0
        assert "PL205" not in capsys.readouterr().out
        assert main(["lint", "Race Tree", "--ignore", "PL205",
                     "--fail-on", "warning"]) == 0

    def test_lint_sarif_format(self, capsys):
        assert main(["lint", "Adder (Sync)", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        for result in doc["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_lint_json_format_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "lint.json"
        assert main(["lint", "Min-Max", "--format", "json",
                     "-o", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["format"] == "repro-lint-v1"
        assert doc["reports"][0]["design"] == "Min-Max"

    def test_lint_requires_names_or_all(self, capsys):
        assert main(["lint"]) == 2

    def test_lint_unknown_design(self, capsys):
        assert main(["lint", "NOPE"]) == 2

    def test_trace(self, capsys):
        assert main(["trace", "JTL"]) == 0
        out = capsys.readouterr().out
        assert "jtl0(JTL)" in out
        assert "timing slack report" in out

    def test_trace_stats(self, capsys):
        assert main(["trace", "Min-Max", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "simulation metrics" in out
        assert "max heap depth" in out
        assert "idle--a->idle" in out  # transition tallies by label

    def test_trace_stats_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "metrics.json"
        assert main(["trace", "Min-Max", "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-obs-metrics-v1"
        assert "jtl0" in payload["cells"]

    def test_trace_provenance_wire(self, capsys):
        assert main(["trace", "Min-Max", "--provenance", "high"]) == 0
        out = capsys.readouterr().out
        assert "causal chain of last pulse on 'high':" in out
        assert "(circuit input" in out

    def test_trace_provenance_trace_mode(self, capsys):
        assert main(["trace", "JTL", "--provenance", "trace"]) == 0
        out = capsys.readouterr().out
        assert "(circuit input" in out

    def test_trace_provenance_unknown_wire_exits_1(self, capsys):
        assert main(["trace", "Min-Max", "--provenance", "nope"]) == 1
        assert "No pulse recorded" in capsys.readouterr().err

    def test_export_stdout(self, capsys):
        assert main(["export", "JTL"]) == 0
        out = capsys.readouterr().out
        assert '"format": "repro-circuit-v1"' in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "circuit.json"
        assert main(["export", "Min-Max", "-o", str(target)]) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload["format"] == "repro-circuit-v1"

    def test_export_roundtrips_via_library(self, tmp_path, capsys):
        from repro.core.serialize import circuit_from_json
        from repro.core.simulation import Simulation

        target = tmp_path / "mm.json"
        main(["export", "Min-Max", "-o", str(target)])
        rebuilt = circuit_from_json(target.read_text())
        events = Simulation(rebuilt).simulate()
        assert events["low"] == [89.0, 209.0, 329.0]


class TestCacheCli:
    """`python -m repro cache stats|gc|clear` against real stores.

    The stores are written by the actual consumers — the yield service,
    the explore engine, and the reach lint — so these tests also pin that
    one directory serves all three (distinct namespaces, one CLI).
    """

    @pytest.fixture()
    def populated_store(self, tmp_path):
        from repro.exp.registry import build_in_fresh_circuit, registry
        from repro.explore.engine import ExploreEngine
        from repro.lint.reach_rules import analyze_reach, clear_reach_cache
        from repro.serve import YieldService

        store = tmp_path / "store"
        YieldService(cache_dir=store).yield_(
            {"design": "Min-Max", "sigma": 0.5, "n_seeds": 4}
        )
        ExploreEngine(cache_dir=store).measure(
            "bitonic", {"n": 2}, sigma=0.5, n_seeds=4
        )
        entry = next(e for e in registry() if e.name == "AND")
        clear_reach_cache()
        analyze_reach(build_in_fresh_circuit(entry), cache_dir=store)
        return store

    def test_stats_text_and_json(self, populated_store, capsys):
        assert main(["cache", "stats", "--cache-dir",
                     str(populated_store)]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "lint" in out

        assert main(["cache", "stats", "--cache-dir",
                     str(populated_store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["namespaces"]["results"]["entries"] == 2
        assert payload["namespaces"]["lint"]["entries"] == 1

    def test_gc_bounds_the_store(self, populated_store, capsys):
        assert main(["cache", "gc", "--cache-dir", str(populated_store),
                     "--max-bytes", "1K"]) == 0
        assert "gc: removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir",
                     str(populated_store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bytes"] <= 1024

    def test_clear_namespace_then_all(self, populated_store, capsys):
        assert main(["cache", "clear", "--cache-dir", str(populated_store),
                     "--namespace", "lint"]) == 0
        assert "namespace 'lint'" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir",
                     str(populated_store)]) == 0
        assert "whole store" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir",
                     str(populated_store), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_gc_rejects_bad_size(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "lots"]) == 1
        assert "size must look like" in capsys.readouterr().err

    def test_serve_cli_accepts_cache_dir(self, tmp_path, capsys):
        # The explore path exercises --cache-dir end-to-end through the
        # CLI; a second run against the same store computes nothing.
        store = tmp_path / "explore-store"
        assert main(["explore", "bitonic", "--grid", "n=2", "--seeds", "4",
                     "--cache-dir", str(store), "--format", "json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["passes"][0]["computations"] == 1
        assert main(["explore", "bitonic", "--grid", "n=2", "--seeds", "4",
                     "--cache-dir", str(store), "--format", "json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["passes"][0]["computations"] == 0
        # Identical measurements; only the cached diagnostic flips.
        strip = [
            [dict(p, cached=None) for p in run["points"]]
            for run in (first, second)
        ]
        assert strip[0] == strip[1]
        assert all(p["cached"] for p in second["points"])
