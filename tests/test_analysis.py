"""Tests for static path-delay / design-rule analysis."""

import pytest

from repro.core.analysis import (
    balance_report,
    circuit_graph,
    clock_skew,
    path_delays,
    total_jjs,
)
from repro.core.circuit import working_circuit
from repro.core.errors import PylseError
from repro.core.helpers import inp, inp_at
from repro.designs import bitonic_delay, bitonic_sorter, full_adder, min_max
from repro.sfq import and_s, c, c_inv, jtl, s, split


class TestCircuitGraph:
    def test_nodes_and_kinds(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        graph = circuit_graph()
        assert graph.nodes["in:A"]["kind"] == "input"
        assert graph.nodes["jtl0"]["kind"] == "cell"
        assert graph.nodes["out:Q"]["kind"] == "output"

    def test_edge_delays_are_firing_delays(self):
        a = inp_at(10.0, name="A")
        q = jtl(a)
        jtl(q, name="Q")
        graph = circuit_graph()
        assert graph["in:A"]["jtl0"]["delay"] == 0.0
        assert graph["jtl0"]["jtl1"]["delay"] == 5.0

    def test_override_reflected(self):
        a = inp_at(10.0, name="A")
        q = jtl(a, firing_delay=2.0)
        jtl(q, name="Q")
        graph = circuit_graph()
        assert graph["jtl0"]["jtl1"]["delay"] == 2.0


class TestPathDelays:
    def test_min_max_is_balanced_at_25(self):
        """Figure 11's arithmetic, computed automatically."""
        a = inp_at(115.0, name="A")
        b = inp_at(64.0, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
        delays = path_delays()
        assert delays[("A", "low")] == (25.0, 25.0)
        assert delays[("A", "high")] == (25.0, 25.0)
        assert delays[("B", "low")] == (25.0, 25.0)

    def test_bitonic_depth_delay(self):
        ins = [inp_at(10.0 * k + 5, name=f"i{k}") for k in range(4)]
        bitonic_sorter(ins, output_names=["o0", "o1", "o2", "o3"])
        delays = path_delays()
        expected = bitonic_delay(4)
        assert delays[("i0", "o0")] == (expected, expected)

    def test_unbalanced_paths_detected(self):
        a = inp_at(10.0, name="A")
        a0, a1 = s(a)
        longer = jtl(a1)
        low = c_inv(a0, longer, name="q")
        del low
        delays = path_delays()
        lo, hi = delays[("A", "q")]
        assert hi - lo == 5.0      # the extra JTL

    def test_cycle_rejected(self):
        from repro.core.wire import Wire
        from repro.sfq import M, S

        a = inp_at(10.0, name="A")
        circuit = working_circuit()
        loop = Wire("loop")
        merged = Wire("merged")
        circuit.add_node(M(), [a, loop], [merged])
        out = Wire("OUT")
        circuit.add_node(S(), [merged], [out, loop])
        with pytest.raises(PylseError, match="loops"):
            path_delays()


class TestBalanceReport:
    def test_balanced_min_max_is_clean(self):
        a = inp_at(115.0, name="A")
        b = inp_at(64.0, name="B")
        min_max(a, b)
        assert balance_report() == []

    def test_imbalance_flagged_with_skew(self):
        a = inp_at(10.0, name="A")
        a0, a1 = s(a)
        delayed = jtl(a1, firing_delay=7.0)
        c(a0, delayed, name="q")
        findings = balance_report()
        assert len(findings) == 1
        assert findings[0].cell == "C"
        assert findings[0].skew == 7.0
        assert "skew 7" in str(findings[0])

    def test_tolerance_suppresses_small_skew(self):
        a = inp_at(10.0, name="A")
        a0, a1 = s(a)
        delayed = jtl(a1, firing_delay=1.0)
        c(a0, delayed, name="q")
        assert balance_report(tolerance=2.0) == []
        assert len(balance_report(tolerance=0.5)) == 1

    def test_clk_port_excluded_by_default(self):
        a = inp_at(30.0, name="A")
        b = inp_at(35.0, name="B")
        clk = inp(start=50, period=50, n=2, name="CLK")
        and_s(a, b, clk, name="Q")
        assert balance_report() == []


class TestClockSkew:
    def test_uniform_tree_has_zero_skew(self):
        """The adder's 8-leaf clock tree is deliberately uniform."""
        a = inp_at(30.0, name="a")
        b = inp_at(name="b")
        cin = inp_at(name="cin")
        clk = inp(start=50, period=50, n=5, name="clk")
        full_adder(a, b, cin, clk)
        lo, hi = clock_skew("clk")
        assert lo == hi == 33.0    # three splitter levels

    def test_skewed_tree_detected(self):
        a = inp_at(30.0, name="a")
        b = inp_at(35.0, name="b")
        clk = inp(start=50, period=50, n=2, name="clk")
        c1, c2, c3 = split(clk, n=3)    # depths 1 and 2
        and_s(a, b, c1, name="q1")
        from repro.sfq import dro

        dro(c2, c3)                      # (ab)use: c2 as data, c3 as clock
        lo, hi = clock_skew("clk")
        assert lo == 11.0 and hi == 22.0

    def test_unknown_clock_rejected(self):
        inp_at(10.0, name="A")
        jtl(working_circuit().find_wire("A"), name="Q")
        with pytest.raises(PylseError, match="No circuit input"):
            clock_skew("nope")


class TestTotalJJs:
    def test_min_max_jj_count(self):
        a = inp_at(115.0, name="A")
        b = inp_at(64.0, name="B")
        min_max(a, b)
        # 2 splitters (3) + InvC (6) + C (5) + JTL (2)
        assert total_jjs() == 3 + 3 + 6 + 5 + 2

    def test_jjs_override_counts(self):
        a = inp_at(10.0, name="A")
        jtl(a, jjs=4, name="Q")
        assert total_jjs() == 4
