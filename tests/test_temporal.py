"""Tests for the race-logic / temporal-computing toolkit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.errors import PylseError
from repro.core.simulation import Simulation
from repro.sfq import C, INH, InvC
from repro.temporal import (
    TemporalCode,
    delay_by,
    first_arrival,
    inhibit,
    last_arrival,
    max_n,
    min_n,
    tree_latency,
    winner_take_all,
)


class TestTemporalCode:
    def test_roundtrip(self):
        code = TemporalCode(offset=10, unit=5)
        assert code.to_time(3) == 25.0
        assert code.from_time(25.0) == 3.0
        assert code.from_time(50.0, latency=25.0) == 3.0

    def test_invalid_params(self):
        with pytest.raises(PylseError):
            TemporalCode(unit=0)
        with pytest.raises(PylseError):
            TemporalCode(offset=-1)
        with pytest.raises(PylseError):
            TemporalCode().to_time(-2)

    def test_encode_inputs_names(self):
        code = TemporalCode()
        with fresh_circuit() as circuit:
            wires = code.encode_inputs([1, 2], prefix="v")
        assert [w.name for w in wires] == ["v0", "v1"]
        del circuit

    def test_decode_events(self):
        code = TemporalCode(offset=0, unit=1)
        decoded = code.decode_events(
            {"a": [7.0], "b": []}, names=["a", "b"]
        )
        assert decoded == {"a": 7.0, "b": None}


class TestInhCell:
    def test_signal_passes_when_uninhibited(self):
        outs = INH()._class_machine().trace([("b", 10.0)])
        assert outs == [("q", 10.0 + INH.firing_delay)]

    def test_inhibitor_blocks_later_signal(self):
        outs = INH()._class_machine().trace([("a", 5.0), ("b", 10.0)])
        assert outs == []

    def test_simultaneous_arrival_blocks(self):
        """Priorities process the inhibitor first on exact ties."""
        outs = INH()._class_machine().trace([("a", 10.0), ("b", 10.0)])
        assert outs == []

    def test_multiple_signals_before_inhibitor_pass(self):
        outs = INH()._class_machine().trace([
            ("b", 5.0), ("b", 10.0), ("a", 20.0), ("b", 30.0),
        ])
        assert len(outs) == 2


class TestPrimitives:
    def test_first_and_last_arrival(self):
        code = TemporalCode(offset=10, unit=10)
        with fresh_circuit() as circuit:
            a, b = code.encode_inputs([2, 5])
            first_arrival(a, b, name="lo")
            # fresh wires needed: encode again for the max
            a2, b2 = code.encode_inputs([2, 5], prefix="y")
            last_arrival(a2, b2, name="hi")
        events = Simulation(circuit).simulate()
        assert events["lo"] == [code.to_time(2) + InvC.firing_delay]
        assert events["hi"] == [code.to_time(5) + C.firing_delay]

    def test_delay_by(self):
        with fresh_circuit() as circuit:
            code = TemporalCode(offset=10, unit=10)
            x = code.encode_input(3, name="x")
            delay_by(x, 40.0, name="y")      # +4 in units of 10
        events = Simulation(circuit).simulate()
        assert code.from_time(events["y"][0]) == 7.0

    def test_inhibit_wrapper(self):
        with fresh_circuit() as circuit:
            from repro.core.helpers import inp_at

            blocker = inp_at(5.0, name="blk")
            sig = inp_at(10.0, name="sig")
            inhibit(blocker, sig, name="q")
        events = Simulation(circuit).simulate()
        assert events["q"] == []


class TestTrees:
    def test_tree_latency(self):
        assert tree_latency(1) == 0.0
        assert tree_latency(2) == InvC.firing_delay
        assert tree_latency(4) == 2 * InvC.firing_delay
        assert tree_latency(5) == 3 * InvC.firing_delay
        assert tree_latency(4, C) == 2 * C.firing_delay

    def test_empty_rejected(self):
        with pytest.raises(PylseError):
            min_n([])

    @given(values=st.lists(
        st.integers(min_value=0, max_value=12), min_size=2, max_size=6,
    ))
    @settings(max_examples=25, deadline=None)
    def test_min_n_property(self, values):
        code = TemporalCode(offset=10, unit=10)
        with fresh_circuit() as circuit:
            min_n(code.encode_inputs(values), name="MIN")
        events = Simulation(circuit).simulate()
        decoded = code.from_time(events["MIN"][0], tree_latency(len(values)))
        assert decoded == min(values)

    @given(values=st.lists(
        st.integers(min_value=0, max_value=12), min_size=2, max_size=6,
    ))
    @settings(max_examples=25, deadline=None)
    def test_max_n_property(self, values):
        code = TemporalCode(offset=10, unit=10)
        with fresh_circuit() as circuit:
            max_n(code.encode_inputs(values), name="MAX")
        events = Simulation(circuit).simulate()
        decoded = code.from_time(events["MAX"][0], tree_latency(len(values), C))
        assert decoded == max(values)


class TestWinnerTakeAll:
    def run_wta(self, values):
        code = TemporalCode(offset=10, unit=10)
        labels = [f"w{k}" for k in range(len(values))]
        with fresh_circuit() as circuit:
            winner_take_all(code.encode_inputs(values), names=labels)
        events = Simulation(circuit).simulate()
        return [k for k, label in enumerate(labels) if events[label]]

    def test_two_way(self):
        assert self.run_wta([5, 2]) == [1]
        assert self.run_wta([2, 5]) == [0]

    def test_four_way(self):
        assert self.run_wta([6, 2, 9, 4]) == [1]

    def test_three_way_non_power_of_two(self):
        assert self.run_wta([6, 2, 9]) == [1]

    def test_exact_tie_has_no_winner(self):
        assert self.run_wta([4, 4, 8]) == []

    @given(perm=st.permutations([0, 3, 6, 9]))
    @settings(max_examples=15, deadline=None)
    def test_unique_winner_property(self, perm):
        winners = self.run_wta(list(perm))
        assert winners == [perm.index(0)]

    def test_needs_two_inputs(self):
        code = TemporalCode()
        with fresh_circuit():
            with pytest.raises(PylseError):
                winner_take_all(code.encode_inputs([1]))
