"""Stability properties of the compiled IR's structural hash.

The hash is the identity the CI manifest and compile-cache rely on, so its
contract is pinned here from both sides:

* **stable** — identical across processes, across repeat builds in one
  process, and under anonymous-wire-counter offsets and node insertion
  order for isomorphic builds;
* **sensitive** — any change to a delay, a transition time, a connection,
  an input schedule, or a user-visible label changes it.
"""

import os
import subprocess
import sys

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.ir import structural_hash
from repro.core.wire import Wire
from repro.sfq import and_s, jtl

BUILD_FIG12 = """
from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp, inp_at
from repro.core.ir import structural_hash
from repro.sfq import and_s

with fresh_circuit() as circuit:
    a = inp_at(125, 175, 225, 275, name="A")
    b = inp_at(75, 185, 225, 265, name="B")
    clk = inp(start=50, period=50, n=6, name="CLK")
    and_s(a, b, clk, name="Q")
print(structural_hash(circuit))
"""


def build_fig12():
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    return circuit


def build_chain(*, delay=None, times=(10.0,), label="Q", stages=2):
    with fresh_circuit() as circuit:
        wire = inp_at(*times, name="A")
        overrides = {} if delay is None else {"firing_delay": delay}
        for _ in range(stages):
            wire = jtl(wire, **overrides)
        wire.observe(label)
    return circuit


class TestStability:
    def test_identical_across_processes(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", BUILD_FIG12],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == structural_hash(build_fig12())

    def test_identical_across_repeat_builds(self):
        assert structural_hash(build_fig12()) == structural_hash(build_fig12())

    def test_insensitive_to_stray_wire_counter(self):
        # Wires created outside any circuit advance the class-global
        # fallback counter; adoption re-names per circuit, so the hash (and
        # the serialized form) cannot see the offset.
        first = structural_hash(build_fig12())
        for _ in range(17):
            Wire()
        assert structural_hash(build_fig12()) == first

    def test_insensitive_to_insertion_order_of_independent_nodes(self):
        def build(order):
            with fresh_circuit() as circuit:
                chains = {}
                for key in order:
                    t = {"A": 10.0, "B": 20.0}[key]
                    chains[key] = jtl(inp_at(t, name=key))
                for key in sorted(chains):
                    chains[key].observe(f"out_{key}")
            return circuit

        assert structural_hash(build("AB")) == structural_hash(build("BA"))

    def test_hash_is_hex_digest(self):
        digest = structural_hash(build_fig12())
        assert len(digest) == 64
        int(digest, 16)


class TestSensitivity:
    def test_firing_delay_changes_hash(self):
        assert structural_hash(build_chain()) != structural_hash(
            build_chain(delay=9.9)
        )

    def test_transition_time_changes_hash(self):
        def build(tt):
            with fresh_circuit() as circuit:
                a = inp_at(10.0, name="A")
                jtl(a, transition_time={("idle", "a"): tt}, name="Q")
            return circuit

        assert structural_hash(build(0.0)) != structural_hash(build(2.5))

    def test_input_schedule_changes_hash(self):
        assert structural_hash(build_chain(times=(10.0,))) != structural_hash(
            build_chain(times=(10.0, 30.0))
        )

    def test_connection_changes_hash(self):
        def build(swapped):
            with fresh_circuit() as circuit:
                a = inp_at(10.0, name="A")
                b = inp_at(20.0, name="B")
                clk = inp_at(50.0, name="CLK")
                if swapped:
                    and_s(b, a, clk, name="Q")
                else:
                    and_s(a, b, clk, name="Q")
            return circuit

        assert structural_hash(build(False)) != structural_hash(build(True))

    def test_added_node_changes_hash(self):
        assert structural_hash(build_chain(stages=2)) != structural_hash(
            build_chain(stages=3)
        )

    def test_observed_label_changes_hash(self):
        assert structural_hash(build_chain(label="Q")) != structural_hash(
            build_chain(label="R")
        )
