"""Tests for streaming re-use of asynchronous networks.

C and Inverted C elements return to idle after each pulse pair, so sorting
networks process successive value vectors on the same hardware — the basis
of examples/streaming_median.py.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import bitonic_delay, bitonic_sorter, min_max

PERIOD = 300.0


class TestMinMaxStreaming:
    @given(rounds=st.lists(
        st.tuples(st.floats(10, 80), st.floats(10, 80)),
        min_size=1, max_size=5,
    ))
    @settings(max_examples=25, deadline=None)
    def test_comparator_rearms_every_round(self, rounds):
        with fresh_circuit() as circuit:
            a = inp_at(*[pair[0] + PERIOD * k for k, pair in enumerate(rounds)],
                       name="A")
            b = inp_at(*[pair[1] + PERIOD * k for k, pair in enumerate(rounds)],
                       name="B")
            low, high = min_max(a, b)
            low.observe("low")
            high.observe("high")
        events = Simulation(circuit).simulate()
        assert len(events["low"]) == len(rounds)
        assert len(events["high"]) == len(rounds)
        for k, (x, y) in enumerate(rounds):
            assert events["low"][k] == min(x, y) + PERIOD * k + 25.0
            assert events["high"][k] == max(x, y) + PERIOD * k + 25.0


class TestSorterStreaming:
    @given(rounds=st.lists(
        st.permutations([10.0, 30.0, 50.0, 70.0]),
        min_size=1, max_size=4,
    ))
    @settings(max_examples=15, deadline=None)
    def test_bitonic4_streams_windows(self, rounds):
        with fresh_circuit() as circuit:
            inputs = []
            for lane in range(4):
                times = [r[lane] + PERIOD * k for k, r in enumerate(rounds)]
                inputs.append(inp_at(*times, name=f"i{lane}"))
            bitonic_sorter(inputs, output_names=[f"o{k}" for k in range(4)])
        events = Simulation(circuit).simulate()
        delay = bitonic_delay(4)
        for k, window in enumerate(rounds):
            got = [events[f"o{lane}"][k] - PERIOD * k - delay for lane in range(4)]
            assert got == sorted(window)

    def test_per_round_pulse_counts(self):
        rounds = [[30, 10, 40, 20], [15, 45, 5, 35]]
        with fresh_circuit() as circuit:
            inputs = []
            for lane in range(4):
                times = [r[lane] + PERIOD * k for k, r in enumerate(rounds)]
                inputs.append(inp_at(*times, name=f"i{lane}"))
            bitonic_sorter(inputs, output_names=[f"o{k}" for k in range(4)])
        events = Simulation(circuit).simulate()
        for lane in range(4):
            assert len(events[f"o{lane}"]) == len(rounds)
