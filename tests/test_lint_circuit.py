"""Circuit-level lint: structural rules (PL2xx) and the interval-based
timing rules (PL3xx), including the Figure-11 balanced/unbalanced pair."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.helpers import inp_at, inspect
from repro.core.wire import Wire
from repro.lint import Severity, lint_circuit
from repro.sfq import JTL, and_s, c, dro, jtl, m, s


def rules_of(report):
    return {f.rule for f in report.findings}


def by_rule(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestStructuralRules:
    def test_pl204_undriven_input(self):
        jtl(Wire("floating"), name="Q")
        report = lint_circuit()
        (finding,) = by_rule(report, "PL204")
        assert finding.severity is Severity.ERROR
        assert finding.location.wire == "floating"
        assert finding.location.port == "a"

    def test_pl202_dangling_wire(self):
        a = inp_at(5.0, name="A")
        jtl(a)  # output is neither consumed nor observed
        report = lint_circuit()
        (finding,) = by_rule(report, "PL202")
        assert finding.location.node == "jtl0"

    def test_pl202_silent_when_observed(self):
        a = inp_at(5.0, name="A")
        q = jtl(a)
        inspect(q, "Q")
        assert not by_rule(lint_circuit(), "PL202")

    def test_pl201_stateless_feedback_loop(self):
        a = inp_at(5.0, name="A")
        fb = Wire("fb")
        x = m(a, fb)
        working_circuit().add_node(JTL(), [x], [fb])
        report = lint_circuit()
        (finding,) = by_rule(report, "PL201")
        assert finding.severity is Severity.ERROR
        assert set(finding.data["nodes"]) == {"m0", "jtl0"}
        assert report.timing_skipped

    def test_pl201_silent_with_state_holding_cell(self):
        # The same loop through a DRO can absorb the pulse: legal feedback.
        a = inp_at(5.0, name="A")
        clk = inp_at(50.0, name="B")
        fb = Wire("fb")
        x = m(a, fb)
        q = dro(x, clk)
        working_circuit().add_node(JTL(), [q], [fb])
        report = lint_circuit()
        assert not by_rule(report, "PL201")
        assert report.timing_skipped  # cycles still preclude interval analysis

    def test_pl203_unreachable_clock_sink(self):
        a = inp_at(10.0, name="a")
        b = inp_at(10.0, name="b")
        fb = Wire("fb")
        leaf, clk_wire = s(fb)
        working_circuit().add_node(JTL(), [leaf], [fb])
        and_s(a, b, clk_wire, name="q")
        report = lint_circuit()
        (finding,) = by_rule(report, "PL203")
        assert finding.location.node == "and0"
        assert finding.location.port == "clk"

    def test_pl205_figure11_imbalance_and_jtl_fix(self):
        # Figure 11's idiom: convergent paths into a C element. Without the
        # balancing JTL one input arrives a JTL-delay early.
        a = inp_at(0.0, name="a")
        b = inp_at(0.0, name="b")
        low = c(jtl(a), b, name="low")
        report = lint_circuit()
        (finding,) = by_rule(report, "PL205")
        assert finding.location.node == "c0"
        assert finding.data["skew"] == pytest.approx(5.0)

    def test_pl205_silent_when_balanced(self):
        a = inp_at(0.0, name="a")
        b = inp_at(0.0, name="b")
        c(jtl(a), jtl(b), name="low")
        assert not by_rule(lint_circuit(), "PL205")


def _figure11_sync(clk_at: float) -> None:
    """A clocked convergence in the Figure-11 style: both data paths JTL-
    balanced; the clock's arrival time decides static safety."""
    a = inp_at(10.0, name="a")
    b = inp_at(10.0, name="b")
    clk = inp_at(clk_at, name="clk")
    and_s(jtl(a), jtl(b), jtl(clk), name="q")


class TestTimingRules:
    def test_balanced_variant_statically_safe_with_margin(self):
        # Data reaches the gate at 15; clock at 35 — 20 ps separation
        # against AND's 2.8 ps setup.
        _figure11_sync(clk_at=30.0)
        report = lint_circuit()
        assert not by_rule(report, "PL301")
        assert not by_rule(report, "PL302")
        (safe,) = by_rule(report, "PL303")
        assert safe.severity is Severity.INFO
        assert report.timing["safe_margin"] == pytest.approx(20.0 - 2.8)

    def test_unbalanced_variant_guaranteed_violation_with_path(self):
        # Clock reaches the gate at 17, data at 15: 2 ps < 2.8 ps setup on
        # every schedule — the simulator is guaranteed to raise Figure 13's
        # error, and the finding names the offending input-to-cell paths.
        _figure11_sync(clk_at=12.0)
        report = lint_circuit()
        violations = by_rule(report, "PL301")
        assert violations, "expected a guaranteed setup violation"
        assert {v.location.node for v in violations} == {"and0"}
        finding = violations[0]
        assert finding.severity is Severity.ERROR
        assert finding.data["kind"] == "setup"
        assert finding.data["margin"] == pytest.approx(2.0 - 2.8)
        path_text = "\n".join(finding.path)
        assert "in:clk@12" in path_text
        assert "and0.clk in [17, 17]" in path_text
        assert not by_rule(report, "PL303")

    def test_simultaneous_arrival_is_possible_not_guaranteed(self):
        # Clock and data both reach the gate at 15: the separation interval
        # includes both legal and illegal schedules.
        _figure11_sync(clk_at=10.0)
        report = lint_circuit()
        assert not by_rule(report, "PL301")
        assert by_rule(report, "PL302")

    def test_tolerance_demotes_thin_margins(self):
        _figure11_sync(clk_at=30.0)
        report = lint_circuit(tolerance=50.0)
        findings = by_rule(report, "PL302")
        assert findings
        assert "below the required tolerance" in findings[0].message
        assert not by_rule(report, "PL303")

    def test_clock_summary_is_structural(self):
        # The clock is found by reachability, not by its name.
        a = inp_at(10.0, name="a")
        b = inp_at(10.0, name="b")
        tick = inp_at(40.0, name="launch")
        and_s(a, b, jtl(tick), name="q")
        report = lint_circuit()
        assert "launch" in report.clocks
        assert report.clocks["launch"]["sinks"] == 1
        lo, hi = report.clocks["launch"]["skew"]
        assert lo == hi == pytest.approx(5.0)


class TestSuppression:
    def test_per_node_suppression(self):
        _figure11_sync(clk_at=12.0)
        report = lint_circuit(suppressions={"and0": ["PL301"]})
        assert not by_rule(report, "PL301")

    def test_global_suppression(self):
        a = inp_at(5.0, name="A")
        jtl(a)
        report = lint_circuit(suppressions={"*": ["PL2"]})
        assert not by_rule(report, "PL202")

    def test_cell_level_lint_suppress(self):
        class QuietJTL(JTL):
            lint_suppress = ("PL202",)

        a = inp_at(5.0, name="A")
        working_circuit().add_node(QuietJTL(), [a], [Wire()])
        assert not by_rule(lint_circuit(), "PL202")

    def test_select_and_ignore_filters(self):
        a = inp_at(5.0, name="A")
        jtl(a)  # dangles: PL202
        report = lint_circuit(select="PL3")
        assert not report.findings or rules_of(report) <= {"PL301", "PL302", "PL303"}
        report = lint_circuit(ignore="PL202")
        assert not by_rule(report, "PL202")
