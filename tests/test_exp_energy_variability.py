"""Tests for the energy and variability experiment harnesses."""

from repro.exp import energy, variability
from repro.exp.registry import registry


class TestEnergyExperiment:
    def entries(self, *names):
        return [e for e in registry() if e.name in names]

    def test_rows_for_selected_designs(self):
        rows = energy.run(self.entries("JTL", "Min-Max"))
        by_name = {r.name: r for r in rows}
        assert by_name["JTL"].jjs == 2
        assert by_name["Min-Max"].cells == 5
        assert by_name["Min-Max"].jjs == 19

    def test_energy_scales_with_activity(self):
        rows = energy.run(self.entries("JTL", "Bitonic Sort 4"))
        by_name = {r.name: r for r in rows}
        assert by_name["Bitonic Sort 4"].attojoules > by_name["JTL"].attojoules

    def test_render(self):
        text = energy.render(energy.run(self.entries("JTL")))
        assert "Energy (aJ)" in text
        assert "JTL" in text


class TestVariabilityExperiment:
    def test_zero_sigma_always_ok(self):
        rows = variability.run(sigmas=(0.0,), seeds=(0, 1, 2))
        assert rows[0].ok == rows[0].total == 3
        assert rows[0].mis_sorted == rows[0].violations == 0

    def test_large_sigma_degrades(self):
        rows = variability.run(sigmas=(0.0, 6.0), seeds=tuple(range(6)))
        assert rows[1].ok < rows[0].ok

    def test_render(self):
        text = variability.render(
            variability.run(sigmas=(0.0,), seeds=(0,))
        )
        assert "sigma" in text and "0.00" in text


class TestAgreementExperiment:
    def test_cells_agree(self):
        from repro.exp import agreement
        from repro.exp.registry import registry

        entries = [e for e in registry() if e.name in ("JTL", "AND", "Min-Max")]
        rows = agreement.run(entries)
        assert all(row.agrees for row in rows)
        assert all(row.outputs >= 1 for row in rows)

    def test_render(self):
        from repro.exp import agreement
        from repro.exp.registry import registry

        entries = [e for e in registry() if e.name == "JTL"]
        text = agreement.render(agreement.run(entries))
        assert "internal simulator agrees" in text
        assert "yes" in text
