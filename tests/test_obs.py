"""Tests for the observability layer (repro.obs).

Covers the tentpole acceptance story: the paper's Figure 13 timing
violation, simulated with an observer attached, reports the full causal
chain of the offending pulse group back to a circuit input — with the
exact rendered content pinned down — plus provenance chains on healthy
runs, the metrics JSON schema round-trip, delay-histogram merging, and
Monte-Carlo stats aggregation (sequential == parallel, bit for bit).
"""

import json

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.errors import PriorInputViolation, PylseError
from repro.core.helpers import inp, inp_at
from repro.core.montecarlo import measure_yield
from repro.core.simulation import Simulation
from repro.exp.registry import (
    PulseCountPredicate,
    RegistryFactory,
    build_in_fresh_circuit,
    registry,
)
from repro.obs import (
    DelayHistogram,
    Observer,
    SimMetrics,
    format_chain,
)
from repro.sfq import jtl, s
from repro.sfq.functions import and_s


def figure13_circuit():
    """The paper's Figure 13 stimulus: B arrives 1ps before a clock edge."""
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(99, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    return circuit


def two_jtl_circuit():
    with fresh_circuit() as circuit:
        a = inp_at(10.0, name="A")
        jtl(jtl(a), name="q")
    return circuit


class TestFigure13Provenance:
    """The violation error carries the causal chain, exactly."""

    EXPECTED_CHAIN = "clk@100 -> and0(AND)\n  CLK@100 (circuit input 'CLK')"

    def test_violation_chain_exact_content(self):
        sim = Simulation(figure13_circuit())
        with pytest.raises(PriorInputViolation) as excinfo:
            sim.simulate(observer=Observer())
        err = excinfo.value
        assert err.provenance == self.EXPECTED_CHAIN
        assert "Causal chain:" in str(err)
        assert self.EXPECTED_CHAIN in str(err)
        # The chain bottoms out at a circuit input.
        assert "circuit input" in err.provenance

    def test_violation_chain_in_general_drain(self):
        """record=True routes through _drain_general: same chain."""
        sim = Simulation(figure13_circuit())
        with pytest.raises(PriorInputViolation) as excinfo:
            sim.simulate(record=True, observer=Observer())
        assert excinfo.value.provenance == self.EXPECTED_CHAIN

    def test_without_observer_no_chain(self):
        sim = Simulation(figure13_circuit())
        with pytest.raises(PriorInputViolation) as excinfo:
            sim.simulate()
        assert excinfo.value.provenance is None
        assert "Causal chain:" not in str(excinfo.value)

    def test_violation_counted_in_metrics(self):
        observer = Observer()
        with pytest.raises(PriorInputViolation):
            Simulation(figure13_circuit()).simulate(observer=observer)
        cell = observer.metrics.cells["and0"]
        assert cell.violations == 1
        # The failed group is part of the denominator.
        assert cell.groups >= 1


class TestChains:
    EXPECTED = (
        "q@20 <- jtl1(JTL) via idle--a->idle\n"
        "  _0@15 <- jtl0(JTL) via idle--a->idle\n"
        "    A@10 (circuit input 'A')"
    )

    def test_multi_hop_chain_exact_content(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate(observer=Observer())
        assert sim.render_chain("q") == self.EXPECTED

    def test_observer_chain_query(self):
        observer = Observer()
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        assert observer.chain("q") == self.EXPECTED
        assert observer.chain("A") == "A@10 (circuit input 'A')"

    def test_chain_occurrence_selection(self):
        with fresh_circuit() as circuit:
            a = inp_at(10.0, 30.0, name="A")
            jtl(a, name="q")
        observer = Observer()
        Simulation(circuit).simulate(observer=observer)
        first = observer.chain("q", 0)
        last = observer.chain("q", -1)
        assert "A@10" in first and "A@30" in last

    def test_chain_unknown_wire_raises(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate(observer=Observer())
        with pytest.raises(PylseError, match="No pulse recorded"):
            sim.render_chain("nope")

    def test_chain_occurrence_out_of_range(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate(observer=Observer())
        with pytest.raises(PylseError, match="out of range"):
            sim.render_chain("q", 7)

    def test_render_chain_without_observer_raises(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate()
        with pytest.raises(PylseError, match="No provenance recorded"):
            sim.render_chain("q")

    def test_reconvergent_fanin_renders_see_above(self):
        # Split one pulse and rejoin it: both chain branches reach the
        # same ancestor, printed once and referenced after.
        from repro.sfq import c

        with fresh_circuit() as circuit:
            a = inp_at(10.0, name="A")
            left, right = s(a)
            c(jtl(left), jtl(right), name="q")
        sim = Simulation(circuit)
        sim.simulate(observer=Observer())
        chain = sim.render_chain("q")
        assert chain.count("(circuit input 'A')") == 1
        assert "(see above)" in chain

    def test_provenance_with_variability(self):
        """The general drain records chains under delay noise too."""
        observer = Observer()
        sim = Simulation(two_jtl_circuit())
        sim.simulate(variability={"stddev": 0.5}, seed=7, observer=observer)
        chain = sim.render_chain("q")
        assert "(circuit input 'A')" in chain
        assert "jtl1(JTL)" in chain


class TestRenderTraceProvenance:
    def test_trace_lines_annotated_with_chains(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate(record=True, observer=Observer())
        text = sim.render_trace(provenance=True)
        assert "jtl1(JTL)" in text
        assert "    q@20 <- jtl1(JTL) via idle--a->idle" in text
        assert "A@10 (circuit input 'A')" in text

    def test_trace_provenance_requires_observer(self):
        sim = Simulation(two_jtl_circuit())
        sim.simulate(record=True)
        with pytest.raises(PylseError, match="provenance"):
            sim.render_trace(provenance=True)

    def test_plain_trace_unchanged_by_observer(self):
        sim1 = Simulation(two_jtl_circuit())
        sim1.simulate(record=True)
        plain = sim1.render_trace()
        sim2 = Simulation(two_jtl_circuit())
        sim2.simulate(record=True, observer=Observer())
        assert sim2.render_trace() == plain


class TestObserverConfig:
    def test_both_collectors_off_rejected(self):
        with pytest.raises(PylseError, match="observe nothing"):
            Observer(provenance=False, metrics=False)

    def test_metrics_only_has_no_graph(self):
        observer = Observer(provenance=False, metrics=True)
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        assert observer.graph is None
        assert observer.metrics.pulses_processed > 0
        with pytest.raises(PylseError, match="provenance=False"):
            observer.chain("q")

    def test_provenance_only_has_no_metrics(self):
        observer = Observer(provenance=True, metrics=False)
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        assert observer.metrics is None
        assert "A@10" in observer.chain("q")

    def test_observer_reuse_accumulates_runs(self):
        observer = Observer(provenance=False, metrics=True)
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        assert observer.metrics.runs == 2
        assert observer.metrics.cells["jtl0"].groups == 2

    def test_events_identical_with_and_without_observer(self):
        circuit = two_jtl_circuit()
        base = Simulation(circuit).simulate()
        observed = Simulation(circuit).simulate(observer=Observer())
        assert observed == base


class TestMetrics:
    def _collect(self):
        observer = Observer(provenance=False, metrics=True)
        entry = next(e for e in registry() if e.name == "Min-Max")
        Simulation(build_in_fresh_circuit(entry)).simulate(observer=observer)
        return observer.metrics

    def test_counters_match_activity(self):
        observer = Observer(provenance=False, metrics=True)
        entry = next(e for e in registry() if e.name == "Min-Max")
        sim = Simulation(build_in_fresh_circuit(entry))
        sim.simulate(observer=observer)
        for name, (pulses_in, pulses_out) in sim.activity.items():
            cell = observer.metrics.cells.get(name)
            if cell is None:  # node never dispatched
                assert pulses_in == 0
                continue
            assert cell.pulses_in == pulses_in
            assert cell.pulses_out == pulses_out

    def test_max_heap_depth_positive(self):
        metrics = self._collect()
        assert metrics.max_heap_depth >= 1
        assert metrics.pulses_processed > 0
        assert metrics.input_pulses > 0

    def test_json_roundtrip_is_identity(self):
        metrics = self._collect()
        text = metrics.to_json()
        rebuilt = SimMetrics.from_json(text)
        assert rebuilt.to_json() == text
        payload = json.loads(text)
        assert payload["format"] == "repro-obs-metrics-v1"
        assert sorted(payload["cells"]) == list(payload["cells"])

    def test_from_json_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="repro-obs-metrics-v1"):
            SimMetrics.from_jsonable({"format": "nope"})

    def test_render_mentions_every_cell(self):
        metrics = self._collect()
        table = metrics.render()
        for name in metrics.cells:
            assert name in table

    def test_provenance_jsonable_schema(self):
        observer = Observer()
        Simulation(two_jtl_circuit()).simulate(observer=observer)
        payload = observer.graph.to_jsonable()
        assert payload["format"] == "repro-obs-provenance-v1"
        pulses = payload["pulses"]
        assert [p["pid"] for p in pulses] == list(range(len(pulses)))
        roots = [p for p in pulses if not p["parents"]]
        assert all(p["cell"] == "InGen" for p in roots)


class TestPendingCollapse:
    def test_three_way_duplicate_collapse_merges_parents(self):
        """>2 same-slot pulses: later records drop, parents accumulate."""
        from repro.obs import ProvenanceGraph

        graph = ProvenanceGraph()
        roots = [
            graph.new_pulse(f"in{i}", 0.0, f"g{i}", "InGen", "out")
            for i in range(3)
        ]
        survivor = None
        for root in roots:
            pid = graph.new_pulse("w", 10.0, "m0", "M", "q", (root,))
            survivor = graph.register_pending(5, "a", 10.0, pid)
        assert survivor == 3  # the first emitted pulse represents all three
        record = graph.record(survivor)
        assert record.parents == tuple(roots)
        # Duplicates were removed; pid == index invariant holds.
        assert [r.pid for r in graph.records] == list(range(len(graph)))
        assert graph.pulses_on("w") == [survivor]
        (consumed,) = graph.take_parents(5, ["a"], 10.0)
        assert consumed == survivor


class TestDelayHistogram:
    def test_add_and_stats(self):
        hist = DelayHistogram(bin_width=1.0)
        for delay in (0.2, 0.7, 1.5, 3.0):
            hist.add(delay)
        assert hist.count == 4
        assert hist.bins == {0: 2, 1: 1, 3: 1}
        assert hist.min == 0.2 and hist.max == 3.0
        assert hist.mean == pytest.approx((0.2 + 0.7 + 1.5 + 3.0) / 4)

    def test_merge_sums_bins_and_bounds(self):
        a, b = DelayHistogram(1.0), DelayHistogram(1.0)
        a.add(0.5)
        b.add(0.6)
        b.add(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.bins == {0: 2, 5: 1}
        assert a.min == 0.5 and a.max == 5.0

    def test_merge_rejects_mismatched_bin_width(self):
        a, b = DelayHistogram(1.0), DelayHistogram(0.5)
        with pytest.raises(ValueError, match="bin width"):
            a.merge(b)

    def test_empty_histogram(self):
        hist = DelayHistogram()
        assert hist.mean is None and hist.min is None and hist.max is None
        rebuilt = DelayHistogram.from_jsonable(hist.to_jsonable())
        assert rebuilt.count == 0 and rebuilt.mean is None

    def test_rejects_nonpositive_bin_width(self):
        with pytest.raises(ValueError):
            DelayHistogram(0.0)


class TestYieldStats:
    def _setup(self):
        entry = next(e for e in registry() if e.name == "Min-Max")
        factory = RegistryFactory(entry.name)
        baseline = Simulation(factory()).simulate()
        return factory, PulseCountPredicate(baseline)

    def test_collect_stats_populates_result(self):
        factory, predicate = self._setup()
        result = measure_yield(
            factory, predicate, sigma=0.5, seeds=range(4), collect_stats=True
        )
        assert result.stats is not None
        assert result.stats.runs == 4
        assert result.stats.cells  # per-cell breakdown present

    def test_stats_off_by_default(self):
        factory, predicate = self._setup()
        result = measure_yield(factory, predicate, sigma=0.5, seeds=range(2))
        assert result.stats is None

    def test_parallel_stats_bit_identical_to_sequential(self):
        factory, predicate = self._setup()
        seq = measure_yield(
            factory, predicate, sigma=1.0, seeds=range(8),
            workers=1, collect_stats=True,
        )
        par = measure_yield(
            factory, predicate, sigma=1.0, seeds=range(8),
            workers=3, collect_stats=True,
        )
        assert seq.stats.to_json() == par.stats.to_json()
        assert seq.failures == par.failures
        assert (seq.passed, seq.mis_behaved, seq.violations) == (
            par.passed, par.mis_behaved, par.violations
        )

    def test_stats_survive_violations(self):
        """Seeds that violate still contribute metrics to the aggregate."""
        factory, predicate = self._setup()
        result = measure_yield(
            factory, predicate, sigma=6.0, seeds=range(12),
            collect_stats=True,
        )
        assert result.stats.runs == 12
        if result.violations:
            total = sum(
                cell.violations for cell in result.stats.cells.values()
            )
            assert total == result.violations


class TestLatencyQuantiles:
    """Nearest-rank quantile regression: index is ceil(q*n)-1, not int(q*n)."""

    def _stats(self, samples):
        from repro.obs import LatencyStats

        stats = LatencyStats()
        for sample in samples:
            stats.add(sample)
        return stats

    def test_p50_of_ten_is_fifth_smallest(self):
        stats = self._stats(range(1, 11))
        # ceil(0.5 * 10) = 5th smallest (1-indexed) = 5; the old
        # int(q * n) indexing returned the 6th.
        assert stats.quantile(0.50) == 5

    def test_p99_of_hundred_is_99th_not_max(self):
        stats = self._stats(range(1, 101))
        assert stats.quantile(0.99) == 99
        assert stats.quantile(1.0) == 100

    def test_single_sample_every_quantile(self):
        stats = self._stats([7.0])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert stats.quantile(q) == 7.0

    def test_empty_window_is_none(self):
        stats = self._stats([])
        assert stats.quantile(0.5) is None
