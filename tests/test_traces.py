"""Tests for counterexample traces and the deadlock query."""

from repro.core.circuit import working_circuit
from repro.core.helpers import inp, inp_at
from repro.mc import ModelChecker
from repro.sfq import and_s, jtl
from repro.ta import deadlock_query, no_error_query, translate_circuit


def build_fig13():
    a = inp_at(125, 175, name="A")
    b = inp_at(99, 185, name="B")
    clk = inp(start=50, period=50, n=4, name="CLK")
    and_s(a, b, clk, name="Q")
    return translate_circuit(working_circuit())


class TestCounterexampleTraces:
    def test_error_violation_carries_trace(self):
        translation = build_fig13()
        result = ModelChecker(translation.network, time_limit=60).run(
            [no_error_query(translation)]
        )
        violation = result.violations_for("query2")[0]
        assert violation.trace, "expected a counterexample trace"
        # The final step must enter the error location.
        assert violation.location in violation.trace[-1]

    def test_trace_steps_are_transitions(self):
        translation = build_fig13()
        result = ModelChecker(translation.network, time_limit=60).run(
            [no_error_query(translation)]
        )
        violation = result.violations_for("query2")[0]
        # Each step names at least one automaton and an action.
        for step in violation.trace:
            assert "-->" in step
        # The scenario: CLK handled, then B stored, then the violating CLK.
        joined = " ".join(violation.trace)
        assert "CLK!" in joined and "B!" in joined

    def test_format_trace_numbering(self):
        translation = build_fig13()
        result = ModelChecker(translation.network, time_limit=60).run(
            [no_error_query(translation)]
        )
        text = result.violations_for("query2")[0].format_trace()
        assert text.splitlines()[0].startswith("  1. ")


class TestDeadlockQuery:
    def test_good_deadlock_on_finite_schedule(self):
        """The paper's point (Section 5.3): 'A[] not deadlock' is not useful
        because exhausting the input schedule also deadlocks the network."""
        a = inp_at(100.0, name="A")
        jtl(a, name="Q")
        translation = translate_circuit(working_circuit())
        result = ModelChecker(translation.network, time_limit=30).run(
            [deadlock_query(), no_error_query(translation)]
        )
        # No timing errors...
        assert not result.violations_for("query2")
        # ...but the network still "deadlocks" once the pulse is consumed.
        deadlocks = result.violations_for("no_deadlock")
        assert deadlocks
        assert deadlocks[0].trace  # reachable via a real path

    def test_deadlock_tctl_string(self):
        assert deadlock_query().to_tctl() == "A[] not deadlock"
