"""End-to-end tests for the HTTP yield service (repro.serve).

Every test runs against a live in-process server (``serving()`` on an
ephemeral port) driven through ``http.client`` — real sockets, real
threads, the same path ``python -m repro serve`` takes. Locked here:

* a warm hit is *byte-identical* to the cold miss that populated it,
  with the cache outcome carried out-of-band in ``X-Repro-Cache``;
* concurrent identical requests coalesce onto exactly one computation;
* malformed circuits, unknown designs, bad parameters, and bad paths map
  to structured ``{"error": {"code", "message"}}`` responses;
* ``/healthz`` and ``/stats`` keep their documented shapes.
"""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.core.circuit import fresh_circuit
from repro.core.helpers import inp_at
from repro.core.serialize import circuit_to_json
from repro.designs import min_max
from repro.serve import SERVE_VERSION, serving

N_CLIENTS = 6


@pytest.fixture()
def server():
    with serving(port=0, workers=1) as srv:
        yield srv


def _call(port, method, path, body=None):
    """One request; returns (status, headers dict, raw body bytes)."""
    conn = HTTPConnection("127.0.0.1", port)
    try:
        data = None
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body)
        conn.request(method, path, body=data,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


def _minmax_text(a_time=60.0, b_time=25.0):
    """A serialized Min-Max comparator circuit (repro-circuit-v1 text)."""
    with fresh_circuit() as circuit:
        a = inp_at(a_time, name="A")
        b = inp_at(b_time, name="B")
        low, high = min_max(a, b)
        low.observe("low")
        high.observe("high")
    return circuit_to_json(circuit)


# -- happy path --------------------------------------------------------
def test_healthz_shape(server):
    port = server.server_address[1]
    status, headers, raw = _call(port, "GET", "/healthz")
    assert status == 200
    body = json.loads(raw)
    assert body["status"] == "ok"
    assert body["version"] == SERVE_VERSION
    assert body["workers"] == 1
    assert body["designs"] > 0
    assert body["uptime_s"] >= 0


def test_yield_miss_then_hit_byte_identical(server):
    port = server.server_address[1]
    request = {"design": "Min-Max", "sigma": 0.5, "n_seeds": 10}
    status1, headers1, raw1 = _call(port, "POST", "/yield", request)
    status2, headers2, raw2 = _call(port, "POST", "/yield", request)
    assert status1 == status2 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    assert raw1 == raw2  # the hit serves the exact cached bytes

    body = json.loads(raw1)
    assert body["design"] == "Min-Max"
    assert body["structural_hash"]
    result = body["result"]
    assert result["format"] == "repro-yield-result-v1"
    assert result["runs"] == 10
    assert result["sigma"] == 0.5
    assert 0.0 <= result["yield"] <= 1.0
    assert result["passed"] + result["mis_behaved"] + \
        result["violations"] == 10

    assert server.service.computations == 1


def test_submitted_circuit_keyed_by_structure_not_bytes(server):
    """Text and dict submissions of the same circuit hit one cache entry."""
    port = server.server_address[1]
    text = _minmax_text()
    as_text = {"circuit": text, "sigma": 0.4, "n_seeds": 6}
    as_dict = {"circuit": json.loads(text), "sigma": 0.4, "n_seeds": 6}
    status1, headers1, raw1 = _call(port, "POST", "/yield", as_text)
    # Different request bytes, same structural hash: must hit.
    status2, headers2, raw2 = _call(port, "POST", "/yield", as_dict)
    assert status1 == status2 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    assert raw1 == raw2
    assert json.loads(raw1)["design"] is None
    assert server.service.computations == 1


def test_concurrent_identical_requests_coalesce(server, monkeypatch):
    """N simultaneous identical misses -> exactly one engine computation."""
    import repro.serve.service as service_mod

    calls = []
    real_measure = service_mod.measure_yield

    def slow_measure(*args, **kwargs):
        calls.append(threading.get_ident())
        # Hold the leader long enough for every follower's request to be
        # in flight (queued on the compute lock) before the result lands
        # in the cache. The assertions below hold regardless of timing —
        # an already-cached key is never recomputed — the delay just makes
        # the coalescing path the one actually taken.
        threading.Event().wait(0.5)
        return real_measure(*args, **kwargs)

    monkeypatch.setattr(service_mod, "measure_yield", slow_measure)

    port = server.server_address[1]
    request = {"design": "JTL", "sigma": 0.5, "n_seeds": 5}
    outcomes = [None] * N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS)

    def client(index):
        barrier.wait()
        outcomes[index] = _call(port, "POST", "/yield", request)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    assert len(calls) == 1, "identical concurrent requests must coalesce"
    assert server.service.computations == 1
    statuses = {status for status, _, _ in outcomes}
    assert statuses == {200}
    bodies = {raw for _, _, raw in outcomes}
    assert len(bodies) == 1, "every client must see identical bytes"
    hits = sum(
        1 for _, headers, _ in outcomes
        if headers["X-Repro-Cache"] == "hit"
    )
    assert hits == N_CLIENTS - 1  # one miss (the leader), rest served


def test_yield_curve_shares_the_measurement_cache(server):
    port = server.server_address[1]
    request = {
        "design": "JTL", "sigmas": [0.25, 0.75], "n_seeds": 8, "seed0": 0,
    }
    status1, headers1, raw1 = _call(port, "POST", "/yield_curve", request)
    assert status1 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    body = json.loads(raw1)
    assert body["sigmas"] == [0.25, 0.75]
    assert len(body["results"]) == 2
    assert all(r["runs"] == 8 for r in body["results"])

    # The identical curve again: every point is cached now.
    status2, headers2, raw2 = _call(port, "POST", "/yield_curve", request)
    assert headers2["X-Repro-Cache"] == "hit"
    assert raw1 == raw2

    # A /yield at a curve point with the same parameters is a hit too —
    # one shared measurement cache, not per-endpoint silos.
    status3, headers3, raw3 = _call(port, "POST", "/yield", {
        "design": "JTL", "sigma": 0.25, "n_seeds": 8, "seed0": 0,
    })
    assert status3 == 200
    assert headers3["X-Repro-Cache"] == "hit"
    assert json.loads(raw3)["result"] == body["results"][0]


def test_critical_sigma_cached(server):
    port = server.server_address[1]
    request = {
        "design": "JTL", "target_yield": 0.9, "sigma_hi": 4.0,
        "iterations": 3, "n_seeds": 5,
    }
    status1, headers1, raw1 = _call(port, "POST", "/critical_sigma", request)
    assert status1 == 200
    body = json.loads(raw1)
    assert isinstance(body["critical_sigma"], float)
    assert 0.0 <= body["critical_sigma"] <= 4.0

    status2, headers2, raw2 = _call(port, "POST", "/critical_sigma", request)
    assert headers2["X-Repro-Cache"] == "hit"
    assert raw1 == raw2


# -- error mapping -----------------------------------------------------
def _error(raw):
    return json.loads(raw)["error"]


def test_unknown_design_is_structured_404(server):
    port = server.server_address[1]
    status, _, raw = _call(port, "POST", "/yield", {"design": "No-Such"})
    assert status == 404
    error = _error(raw)
    assert error["code"] == "unknown_design"
    assert "No-Such" in error["message"]


def test_malformed_circuit_is_structured_400(server):
    port = server.server_address[1]
    for circuit in ("this is not json", {"format": "bogus", "cells": 3}):
        status, _, raw = _call(port, "POST", "/yield", {"circuit": circuit})
        assert status == 400
        assert _error(raw)["code"] == "bad_request"


def test_design_and_circuit_together_rejected(server):
    port = server.server_address[1]
    status, _, raw = _call(port, "POST", "/yield", {
        "design": "JTL", "circuit": _minmax_text(),
    })
    assert status == 400
    assert "exactly one" in _error(raw)["message"]


def test_bad_parameters_rejected(server):
    port = server.server_address[1]
    cases = [
        {"design": "JTL", "sigma": -1.0},
        {"design": "JTL", "n_seeds": 0},
        {"design": "JTL", "n_seeds": True},
        {"design": "JTL", "sigma": "big"},
        {"design": "JTL", "batch": -2},
        {"design": 7},
    ]
    for case in cases:
        status, _, raw = _call(port, "POST", "/yield", case)
        assert status == 400, case
        assert _error(raw)["code"] == "bad_request", case


def test_non_json_body_rejected(server):
    port = server.server_address[1]
    status, _, raw = _call(port, "POST", "/yield", b"{not json")
    assert status == 400
    assert _error(raw)["code"] == "bad_request"


def test_unknown_paths_404(server):
    port = server.server_address[1]
    for method, path in [("GET", "/nope"), ("POST", "/nope"),
                         ("GET", "/yield")]:
        status, _, raw = _call(port, method, path, body={} if
                               method == "POST" else None)
        assert status == 404, (method, path)
        assert _error(raw)["code"] == "not_found"


# -- introspection -----------------------------------------------------
def test_stats_shape_and_counters(server):
    port = server.server_address[1]
    request = {"design": "Min-Max", "sigma": 0.5, "n_seeds": 5}
    _call(port, "POST", "/yield", request)
    _call(port, "POST", "/yield", request)
    _call(port, "POST", "/yield", {"design": "No-Such"})

    status, _, raw = _call(port, "GET", "/stats")
    assert status == 200
    body = json.loads(raw)
    assert body["format"] == "repro-serve-stats-v1"
    assert body["workers"] == 1
    assert body["computations"] == 1
    assert body["coalesced"] == 0

    for cache_name in ("result", "compiled"):
        stats = body["cache"][cache_name]
        assert set(stats) == {
            "size", "capacity", "hits", "misses", "evictions",
        }
    assert body["cache"]["result"]["size"] == 1

    endpoint = body["endpoints"]["/yield"]
    assert endpoint["requests"] == 3
    assert endpoint["hits"] == 1
    assert endpoint["misses"] == 1
    assert endpoint["errors"] == 1
    latency = endpoint["latency"]
    assert set(latency) == {
        "count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p95_ms",
        "p99_ms",
    }
    assert latency["count"] == 3
    assert latency["p50_ms"] >= 0
