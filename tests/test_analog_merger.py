"""Tests for the series-junction solver extension and the analog merger."""

import numpy as np
import pytest

from repro.analog import (
    DEFAULT_JUNCTION,
    Netlist,
    add_input_stage,
    add_jtl,
    connect,
    simulate,
)
from repro.analog.cells import add_merger
from repro.core.errors import PylseError

DT = 0.1


def merger_fixture(a_times, b_times, probe_idle_chain=False):
    nl = Netlist("merger")
    sa = add_input_stage(nl, a_times)
    sb = add_input_stage(nl, b_times)
    ja, oa = add_jtl(nl)
    jb, ob = add_jtl(nl)
    connect(nl, sa, ja)
    connect(nl, sb, jb)
    in_a, in_b, out = add_merger(nl)
    connect(nl, oa, in_a)
    connect(nl, ob, in_b)
    jo, oo = add_jtl(nl)
    connect(nl, out, jo)
    nl.mark_output(oo, "q")
    if probe_idle_chain:
        nl.mark_output(jb, "b_chain")
    return nl


class TestJunctionBranches:
    def test_netlist_counts_series_junctions(self):
        nl = Netlist("t")
        a, b = nl.add_node(), nl.add_node()
        nl.add_junction_branch(a, b)
        assert nl.n_junctions == 3
        assert any(line.startswith("BS0") for line in nl.lines())

    def test_self_branch_rejected(self):
        nl = Netlist("t")
        a = nl.add_node()
        with pytest.raises(PylseError):
            nl.add_junction_branch(a, a)

    def test_unknown_node_rejected(self):
        nl = Netlist("t")
        a = nl.add_node()
        with pytest.raises(PylseError):
            nl.add_junction_branch(a, 7)

    def test_two_pi_difference_carries_no_current(self):
        """The property inductors lack: a stored 2-pi slip across a series
        junction relaxes to zero current (sin is periodic)."""
        nl = merger_fixture([20.0], [400.0])
        res = simulate(nl, 120, DT)
        # After the merge: the driven side slipped, the idle side did not,
        # yet the circuit sits in a static state (no oscillating phases).
        assert res.pulses["q"]


class TestMergerBehavior:
    def test_merges_pulse_from_either_input(self):
        a_only = simulate(merger_fixture([20.0], [900.0]), 100, DT).pulses["q"]
        b_only = simulate(merger_fixture([900.0], [20.0]), 100, DT).pulses["q"]
        assert len(a_only) == 1
        assert len(b_only) == 1
        assert a_only[0] == pytest.approx(b_only[0], abs=0.5)

    def test_both_inputs_give_two_outputs(self):
        pulses = simulate(merger_fixture([20.0], [60.0]), 130, DT).pulses["q"]
        assert len(pulses) == 2

    def test_pulse_trains_merge(self):
        pulses = simulate(
            merger_fixture([20.0, 100.0], [60.0, 140.0]), 220, DT
        ).pulses["q"]
        assert len(pulses) == 4

    def test_close_pulses_both_pass(self):
        pulses = simulate(merger_fixture([20.0], [38.0]), 110, DT).pulses["q"]
        assert len(pulses) == 2

    def test_recovery_dead_time(self):
        """Pulses closer than the cell's ~15 ps recovery merge into one —
        the analog origin of the minimum pulse separation that the PyLSE
        level models with transition times."""
        pulses = simulate(merger_fixture([20.0], [30.0]), 110, DT).pulses["q"]
        assert len(pulses) == 1

    def test_documented_back_action_on_idle_input(self):
        """The known caveat: a merge launches one backward fluxon into the
        idle input chain (why real confluence buffers add buffer stages)."""
        nl = merger_fixture([20.0], [900.0], probe_idle_chain=True)
        res = simulate(nl, 120, DT)
        assert len(res.pulses["b_chain"]) == 1
