"""Tests for the Hole Description level (Functional elements, Figure 9)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.errors import HoleError
from repro.core.functional import Functional, hole
from repro.core.helpers import inp_at
from repro.core.simulation import Simulation
from repro.designs import make_memory
from repro.sfq import jtl


class TestFunctionalElement:
    def test_truthy_results_fire(self):
        element = Functional(lambda a, t: a, ["a"], ["q"], delay=2.0)
        assert element.handle_inputs(["a"], 5.0) == [("q", 2.0)]
        assert element.handle_inputs([], 6.0) == []

    def test_multi_output_results(self):
        element = Functional(
            lambda a, t: (1, 0), ["a"], ["x", "y"], delay={"x": 1.0, "y": 2.0}
        )
        assert element.handle_inputs(["a"], 5.0) == [("x", 1.0)]

    def test_none_result_means_no_pulses(self):
        element = Functional(lambda a, t: None, ["a"], ["q"], delay=1.0)
        assert element.handle_inputs(["a"], 5.0) == []

    def test_wrong_result_arity_rejected(self):
        element = Functional(lambda a, t: (1, 1), ["a"], ["q"], delay=1.0)
        with pytest.raises(HoleError, match="2 value"):
            element.handle_inputs(["a"], 5.0)

    def test_single_value_with_multiple_outputs_rejected(self):
        element = Functional(lambda a, t: 1, ["a"], ["x", "y"], delay=1.0)
        with pytest.raises(HoleError, match="return a sequence"):
            element.handle_inputs(["a"], 5.0)

    def test_delay_dict_must_cover_outputs(self):
        with pytest.raises(HoleError, match="missing"):
            Functional(lambda a, t: 1, ["a"], ["x", "y"], delay={"x": 1.0})

    def test_delay_dict_unknown_output_rejected(self):
        with pytest.raises(HoleError, match="unknown output"):
            Functional(lambda a, t: 1, ["a"], ["q"], delay={"q": 1.0, "z": 2.0})

    def test_needs_callable(self):
        with pytest.raises(HoleError):
            Functional("nope", ["a"], ["q"], delay=1.0)  # type: ignore[arg-type]

    def test_needs_output(self):
        with pytest.raises(HoleError):
            Functional(lambda t: 1, [], [], delay=1.0)


class TestHoleDecorator:
    def test_decorator_instantiates_into_circuit(self):
        @hole(delay=3.0, inputs=["a", "b"], outputs=["q"])
        def or_model(a, b, time):
            return a or b

        w1 = inp_at(10.0, name="A")
        w2 = inp_at(20.0, name="B")
        q = or_model(w1, w2)
        q.observe("Q")
        events = Simulation().simulate()
        assert events["Q"] == [13.0, 23.0]

    def test_wrong_wire_count_rejected(self):
        @hole(delay=1.0, inputs=["a", "b"], outputs=["q"])
        def f(a, b, time):
            return 1

        with pytest.raises(HoleError, match="expected 2"):
            f(inp_at(1.0))

    def test_non_wire_arg_rejected(self):
        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def f(a, time):
            return 1

        with pytest.raises(HoleError, match="Wire"):
            f(3)

    def test_output_naming(self):
        @hole(delay=1.0, inputs=["a"], outputs=["x", "y"])
        def f(a, time):
            return (1, 1)

        x, y = f(inp_at(1.0, name="A"), names="X Y")
        assert x.name == "X" and y.name == "Y"

    def test_per_instance_delay_override(self):
        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def f(a, time):
            return 1

        q = f(inp_at(10.0, name="A"), delay=7.0)
        q.observe("Q")
        events = Simulation().simulate()
        assert events["Q"] == [17.0]

    def test_unknown_option_rejected(self):
        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def f(a, time):
            return 1

        with pytest.raises(HoleError, match="unknown option"):
            f(inp_at(1.0), bogus=2)

    def test_metadata_preserved(self):
        @hole(delay=1.0, inputs=["a"], outputs=["q"])
        def my_hole(a, time):
            """Docs."""
            return 1

        assert my_hole.__name__ == "my_hole"
        assert my_hole.hole_inputs == ("a",)
        assert my_hole.hole_outputs == ("q",)


class TestMemoryHole:
    def _bits(self, name, value, at):
        return [
            inp_at(*([at] if (value >> k) & 1 else []), name=f"{name}{k}")
            for k in reversed(range(4))
        ]

    def test_write_then_read(self):
        from repro.core.helpers import inp

        memory = make_memory()
        ra = self._bits("ra", 5, 60.0)
        wa = self._bits("wa", 5, 10.0)
        d1 = inp_at(10.0, name="d1")
        d0 = inp_at(name="d0")        # write 0b10
        we = inp_at(10.0, name="we")
        clk = inp(start=25.0, period=50.0, n=2, name="clk")
        q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
        q1.observe("q1")
        q0.observe("q0")
        events = Simulation().simulate()
        assert events["q1"] == [80.0]   # second clk at 75 + delay 5
        assert events["q0"] == []

    def test_read_unwritten_address_is_zero(self):
        from repro.core.helpers import inp

        memory = make_memory()
        ra = self._bits("ra", 3, 10.0)
        wa = self._bits("wa", 0, 0.0)   # no write pulses beyond address 0
        d1 = inp_at(name="d1")
        d0 = inp_at(name="d0")
        we = inp_at(name="we")
        clk = inp(start=25.0, period=50.0, n=1, name="clk")
        q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
        q1.observe("q1")
        q0.observe("q0")
        events = Simulation().simulate()
        assert events["q1"] == [] and events["q0"] == []

    def test_holes_compose_with_cells(self):
        from repro.core.helpers import inp

        memory = make_memory()
        ra = self._bits("ra", 1, 60.0)
        wa = self._bits("wa", 1, 10.0)
        d1 = inp_at(name="d1")
        d0 = inp_at(10.0, name="d0")
        we = inp_at(10.0, name="we")
        clk = inp(start=25.0, period=50.0, n=2, name="clk")
        q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
        out = jtl(q0, name="buffered")
        del q1, out
        events = Simulation().simulate()
        assert events["buffered"] == [85.0]  # 75 + 5 (hole) + 5 (JTL)
