"""Tests for the discrete-event simulator (Section 4.3)."""

import pytest

from repro.core.circuit import working_circuit
from repro.core.errors import (
    PriorInputViolation,
    PylseError,
    TransitionTimeViolation,
)
from repro.core.helpers import inp, inp_at
from repro.core.simulation import Simulation, render_waveforms
from repro.sfq import and_s, c, dro, jtl, m, s


class TestBasics:
    def test_events_include_inputs_and_outputs(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        events = Simulation().simulate()
        assert events["A"] == [10.0]
        assert events["Q"] == [15.0]

    def test_anonymous_wires_keyed_by_auto_name(self):
        a = inp_at(10.0, name="A")
        q = jtl(a)
        events = Simulation().simulate()
        assert events[q.name] == [15.0]

    def test_pulses_processed_counter(self):
        a = inp_at(10.0, 20.0, name="A")
        jtl(a, name="Q")
        sim = Simulation()
        sim.simulate()
        assert sim.pulses_processed == 2

    def test_simulation_is_repeatable(self):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        sim = Simulation()
        first = sim.simulate()
        second = sim.simulate()
        assert first == second

    def test_until_cuts_off_processing(self):
        a = inp_at(10.0, 100.0, name="A")
        jtl(a, name="Q")
        events = Simulation().simulate(until=50.0)
        assert events["Q"] == [15.0]

    def test_plot_requires_simulation(self):
        inp_at(10.0, name="A")
        with pytest.raises(PylseError, match="simulate"):
            Simulation().plot()

    def test_empty_circuit_rejected(self):
        with pytest.raises(PylseError, match="empty"):
            Simulation().simulate()


class TestSemantics:
    def test_figure12_and_gate(self):
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
        events = Simulation().simulate()
        assert events["Q"] == [209.2, 259.2, 309.2]

    def test_figure13_error_message(self):
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(99, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
        with pytest.raises(PriorInputViolation) as exc:
            Simulation().simulate()
        message = str(exc.value)
        assert "Error while sending input(s) 'clk'" in message
        assert "transition '7'" in message
        assert "It was last seen at 99.0" in message

    def test_transition_time_violation_detected(self):
        a = inp_at(30.0, name="A")
        clk = inp_at(31.0, name="CLK")  # inside the 2.5 ps hold window? no:
        # DRO hold starts when clk arrives; send a second 'a' pulse inside it.
        a2 = None
        dro(a, clk, name="Q")
        del a2
        with pytest.raises(PriorInputViolation):
            Simulation().simulate()

    def test_hold_window_violation(self):
        a = inp_at(30.0, 51.0, name="A")   # 51 is inside clk@50's 2.5 hold
        clk = inp_at(50.0, name="CLK")
        dro(a, clk, name="Q")
        with pytest.raises(TransitionTimeViolation):
            Simulation().simulate()

    def test_simultaneous_inputs_on_one_cell(self):
        a = inp_at(50.0, name="A")
        b = inp_at(50.0, name="B")
        c(a, b, name="Q")               # both arrive at once: C element fires
        events = Simulation().simulate()
        assert events["Q"] == [62.0]

    def test_merger_passes_everything(self):
        a = inp_at(10.0, 30.0, name="A")
        b = inp_at(20.0, name="B")
        m(a, b, name="Q")
        events = Simulation().simulate()
        assert events["Q"] == [18.2, 28.2, 38.2]

    def test_deep_chain_accumulates_delay(self):
        w = inp_at(0.0, name="A")
        for _ in range(10):
            w = jtl(w)
        w.observe("Q")
        events = Simulation().simulate()
        assert events["Q"] == [50.0]

    def test_splitter_fans_out_both_sides(self):
        a = inp_at(10.0, name="A")
        left, right = s(a, names="L R")
        del left, right
        events = Simulation().simulate()
        assert events["L"] == [21.0]
        assert events["R"] == [21.0]


class TestFeedbackLoop:
    def test_ring_needs_until(self):
        """A pulse circulating in a merger+splitter ring runs forever;
        the ``until`` horizon bounds it (the paper's loop use case)."""
        a = inp_at(10.0, name="A")
        circuit = working_circuit()
        from repro.core.wire import Wire
        from repro.sfq import M, S

        loop_back = Wire("loop")
        merged = Wire("merged")
        circuit.add_node(M(), [a, loop_back], [merged])
        out = Wire("OUT")
        circuit.add_node(S(), [merged], [out, loop_back])
        events = Simulation().simulate(until=100.0)
        assert len(events["OUT"]) >= 4          # one lap every 19.2 ps
        laps = [t2 - t1 for t1, t2 in zip(events["OUT"], events["OUT"][1:])]
        assert all(abs(lap - 19.2) < 1e-9 for lap in laps)


class TestRenderWaveforms:
    def test_render_contains_all_series(self):
        text = render_waveforms({"A": [1.0, 2.0], "B": []}, width=20)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("A")
        assert "2 pulses" in lines[0]
        assert "no pulses" in lines[1]

    def test_render_marks_pulses(self):
        text = render_waveforms({"A": [0.0, 100.0]}, width=10)
        row = text.splitlines()[0]
        assert row.count("|") == 2

    def test_plot_returns_rendering(self, capsys):
        a = inp_at(10.0, name="A")
        jtl(a, name="Q")
        sim = Simulation()
        sim.simulate()
        rendering = sim.plot()
        captured = capsys.readouterr()
        assert rendering in captured.out
        assert "A" in rendering and "Q" in rendering
