"""The ``python -m repro explore`` subcommand.

Sweeps one design family over a parameter grid and reports cost, latency,
yield, and the Pareto frontier in text, JSON, or CSV. ``--repeat`` runs
the same sweep several times through one engine — the second pass should
be pure cache hits (the CI smoke job asserts it).
"""

from __future__ import annotations

import csv
import io
import json
import sys
import time
from typing import Dict, List

from ..core.errors import PylseError
from ..core.serialize import yield_result_to_jsonable
from .engine import ExploreEngine, SweepResult, parse_grid
from .families import families, get_family

#: Format tag of the JSON payload (bump on shape changes).
EXPLORE_FORMAT = "repro-explore-v1"


def add_explore_parser(sub) -> None:
    """Register the ``explore`` subparser on the main CLI."""
    p = sub.add_parser(
        "explore",
        help="design-space sweep: cost vs latency vs yield over a "
             "parameter grid",
    )
    p.add_argument("family", nargs="?",
                   help="design family to sweep (see --list)")
    p.add_argument("--list", action="store_true", dest="list_families",
                   help="list the available families and their parameters")
    p.add_argument("--grid", action="append", default=[], metavar="SPEC",
                   help="grid axis as 'name=v1,v2,...' (repeatable); "
                        "default: the family's built-in grid")
    p.add_argument("--sigma", type=float, default=0.5,
                   help="Gaussian delay noise in ps (default 0.5)")
    p.add_argument("--seeds", type=int, default=25,
                   help="Monte-Carlo trials per grid point (default 25)")
    p.add_argument("--seed0", type=int, default=0,
                   help="first seed of the contiguous range (default 0)")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="vectorized-drain lane width; 0 = per-seed "
                        "reference drain (default: auto)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers; 0 = one per CPU (default 1)")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="run the sweep N times through one engine; "
                        "passes after the first should be cache-warm")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent on-disk result cache: a re-run sweep "
                        "in a fresh process recomputes nothing, and the "
                        "store is shared with `repro serve --cache-dir`")
    p.add_argument("--format", choices=["text", "json", "csv"],
                   default="text", help="report format (default: text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")


def _list_families() -> str:
    lines = ["Design families (python -m repro explore <family>):"]
    for family in families().values():
        params = ", ".join(
            f"{spec.name} in [{spec.lo}, {spec.hi}]"
            + (" (power of two)" if spec.power_of_two else "")
            for spec in family.params
        )
        default = " ".join(
            f"{name}={','.join(str(v) for v in values)}"
            for name, values in family.default_grid
        )
        lines.append(f"  {family.name:<12} {family.description}")
        lines.append(f"  {'':<12} params: {params}; default grid: {default}")
    return "\n".join(lines)


def _render_text(sweep: SweepResult, passes: List[Dict[str, object]]) -> str:
    pareto = set(id(point) for point in sweep.pareto)
    param_names = [name for name, _ in sweep.grid]
    param_width = max(
        12,
        max(
            (len(" ".join(f"{k}={v}" for k, v in p.params)) for p in sweep.points),
            default=12,
        ),
    )
    header = (
        f"{'params':<{param_width}} {'cells':>6} {'jjs':>6} "
        f"{'area(um^2)':>11} {'static(uW)':>11} {'latency(ps)':>12} "
        f"{'yield':>7} {'cached':>7} {'pareto':>7}"
    )
    lines = [
        f"Design-space sweep: family {sweep.family!r}, "
        f"sigma {sweep.sigma:g} ps, {sweep.n_seeds} seeds/point, "
        f"grid axes {', '.join(param_names)}",
        header,
        "-" * len(header),
    ]
    for point in sweep.points:
        params = " ".join(f"{k}={v}" for k, v in point.params)
        lines.append(
            f"{params:<{param_width}} {point.cost.cells:>6} "
            f"{point.cost.jjs:>6} {point.cost.area_um2:>11.0f} "
            f"{point.cost.static_power_w * 1e6:>11.3f} "
            f"{point.latency_ps:>12.1f} "
            f"{point.yield_fraction:>7.1%} "
            f"{'yes' if point.cached else 'no':>7} "
            f"{'*' if id(point) in pareto else '':>7}"
        )
    lines.append(
        f"pareto frontier: {len(sweep.pareto)}/{len(sweep.points)} "
        f"point(s) non-dominated under (jjs, latency, 1 - yield)"
    )
    for i, entry in enumerate(passes):
        lines.append(
            f"pass {i + 1}: {entry['seconds']:.3f} s, "
            f"{entry['computations']} computation(s), "
            f"{entry['result_cache_hits']} result-cache hit(s)"
        )
    return "\n".join(lines)


def _jsonable(sweep: SweepResult, passes, engine: ExploreEngine) -> dict:
    pareto = set(id(point) for point in sweep.pareto)
    points = []
    for point in sweep.points:
        points.append(
            {
                "params": dict(point.params),
                "structural_hash": point.digest,
                "cost": {
                    "cells": point.cost.cells,
                    "jjs": point.cost.jjs,
                    "bias_current_a": point.cost.bias_current_a,
                    "static_power_w": point.cost.static_power_w,
                    "area_um2": point.cost.area_um2,
                },
                "latency_ps": point.latency_ps,
                "result": yield_result_to_jsonable(point.result),
                "cached": point.cached,
                "pareto": id(point) in pareto,
            }
        )
    return {
        "format": EXPLORE_FORMAT,
        "family": sweep.family,
        "grid": {name: list(values) for name, values in sweep.grid},
        "sigma": sweep.sigma,
        "n_seeds": sweep.n_seeds,
        "seed0": sweep.seed0,
        "batch": sweep.batch,
        "points": points,
        "passes": passes,
        "engine": engine.stats(),
    }


def _render_csv(sweep: SweepResult) -> str:
    pareto = set(id(point) for point in sweep.pareto)
    param_names = [name for name, _ in sweep.grid]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["family", *param_names, "cells", "jjs", "area_um2",
         "static_power_uw", "latency_ps", "runs", "passed", "yield",
         "cached", "pareto"]
    )
    for point in sweep.points:
        values = dict(point.params)
        writer.writerow(
            [
                sweep.family,
                *(values[name] for name in param_names),
                point.cost.cells,
                point.cost.jjs,
                round(point.cost.area_um2, 1),
                round(point.cost.static_power_w * 1e6, 4),
                round(point.latency_ps, 2),
                point.result.runs,
                point.result.passed,
                round(point.yield_fraction, 4),
                int(point.cached),
                int(id(point) in pareto),
            ]
        )
    return buffer.getvalue().rstrip("\n")


def cmd_explore(args) -> int:
    if args.list_families:
        print(_list_families())
        return 0
    if not args.family:
        print("specify a design family or --list; e.g. "
              "`python -m repro explore bitonic --grid n=2,4,8`",
              file=sys.stderr)
        return 2
    try:
        family = get_family(args.family)
        if args.grid:
            grid = parse_grid(args.grid)
            # Reject axes the family does not have before sweeping.
            known = {spec.name for spec in family.params}
            unknown = set(grid) - known
            if unknown:
                raise PylseError(
                    f"family {family.name!r} has no parameter(s) "
                    f"{sorted(unknown)}; expected {sorted(known)}"
                )
        else:
            grid = {name: list(values) for name, values in family.default_grid}
        if args.repeat < 1:
            raise PylseError(f"--repeat must be >= 1, got {args.repeat}")
        engine = ExploreEngine(workers=args.workers,
                               cache_dir=args.cache_dir)
        passes: List[Dict[str, object]] = []
        sweep = None
        for _ in range(args.repeat):
            before = engine.stats()
            start = time.perf_counter()
            sweep = engine.sweep(
                family.name, grid, sigma=args.sigma, n_seeds=args.seeds,
                seed0=args.seed0, batch=args.batch,
            )
            seconds = time.perf_counter() - start
            after = engine.stats()
            passes.append(
                {
                    "seconds": round(seconds, 6),
                    "computations": after["computations"]
                    - before["computations"],
                    "elaborations": after["elaborations"]
                    - before["elaborations"],
                    "result_cache_hits": after["result_cache"]["hits"]
                    - before["result_cache"]["hits"],
                }
            )
    except PylseError as err:
        print(str(err), file=sys.stderr)
        return 1
    if args.format == "text":
        text = _render_text(sweep, passes)
    elif args.format == "json":
        text = json.dumps(_jsonable(sweep, passes, engine), indent=2)
    else:
        text = _render_csv(sweep)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0
