"""The explorer's parameterized design families.

A :class:`DesignFamily` is the parametric analogue of a registry
:class:`~repro.exp.registry.DesignEntry`: a named builder that elaborates
one *design point* — circuit plus canonical violation-free stimulus —
into the working circuit for a given parameter assignment. The canonical
stimulus is part of the design point (it feeds the structural hash, the
baseline predicate, and the latency metric), so equal parameters always
produce structurally identical circuits and cache keys.

Five families ship by default:

* ``bitonic`` — n-input bitonic sorter (Figure 15 generalized), fed a
  bit-reversal permutation of evenly spaced arrival times;
* ``adder_sync`` — n-bit wave-pipelined synchronous ripple adder
  computing the worst case ``(2^n - 1) + 1`` (full carry ripple);
* ``adder_xsfq`` — n-bit clock-free dual-rail ripple adder, same
  operands;
* ``racetree`` — depth-d race-logic decision tree on alternating
  low/high feature values;
* ``memory`` — words x bits behavioral memory hole, written then read
  back at the highest address.

:class:`FamilyFactory` is the picklable circuit factory
(:class:`~repro.exp.registry.RegistryFactory`'s parametric sibling), so
sweeps run unchanged on the process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..core.circuit import Circuit, fresh_circuit
from ..core.errors import PylseError
from ..core.helpers import inp, inp_at
from ..designs import adder_sync, adder_xsfq, bitonic, memory, racetree

#: A validated, canonically ordered parameter assignment.
ParamsTuple = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class ParamSpec:
    """One integer parameter of a family: name, doc, and legal range."""

    name: str
    doc: str
    lo: int
    hi: int
    power_of_two: bool = False

    def validate(self, value: object) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise PylseError(
                f"parameter {self.name!r} must be an integer, got {value!r}"
            )
        if not self.lo <= value <= self.hi:
            raise PylseError(
                f"parameter {self.name!r} must be in [{self.lo}, {self.hi}], "
                f"got {value}"
            )
        if self.power_of_two and value & (value - 1):
            raise PylseError(
                f"parameter {self.name!r} must be a power of two, got {value}"
            )
        return value


@dataclass(frozen=True)
class DesignFamily:
    """A parameterized design generator with a canonical stimulus."""

    name: str
    description: str
    params: Tuple[ParamSpec, ...]
    #: Elaborates the design point into the working circuit.
    build: Callable[[Mapping[str, int]], None]
    #: The grid the CLI sweeps when no ``--grid`` is given.
    default_grid: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def normalize(self, params: Mapping[str, int]) -> ParamsTuple:
        """Validate an assignment and return it in canonical spec order."""
        unknown = set(params) - {spec.name for spec in self.params}
        if unknown:
            raise PylseError(
                f"family {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; expected "
                f"{[spec.name for spec in self.params]}"
            )
        normalized = []
        for spec in self.params:
            if spec.name not in params:
                raise PylseError(
                    f"family {self.name!r} needs parameter {spec.name!r}"
                )
            normalized.append((spec.name, spec.validate(params[spec.name])))
        return tuple(normalized)


def _bit_reverse(value: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def _build_bitonic(params: Mapping[str, int]) -> None:
    n = params["n"]
    bits = (n - 1).bit_length()
    # Bit-reversal permutation of a 10 ps grid: distinct, well separated,
    # and thoroughly unsorted, so every comparator stage does real work.
    times = [10.0 + 10.0 * _bit_reverse(k, bits) for k in range(n)]
    ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
    bitonic.bitonic_sorter(ins, output_names=[f"o{k}" for k in range(n)])


def _build_adder_sync(params: Mapping[str, int]) -> None:
    n = params["n"]
    # Worst-case carry chain: (2^n - 1) + 1 ripples through every bit.
    schedule = adder_sync.ripple_test_times((1 << n) - 1, 1, 0, n)
    a_bits = [inp_at(*schedule[f"a{k}"], name=f"a{k}") for k in range(n)]
    b_bits = [inp_at(*schedule[f"b{k}"], name=f"b{k}") for k in range(n)]
    cin = inp_at(*schedule["cin"], name="cin")
    clk = inp(
        start=adder_sync.CLOCK_PERIOD,
        period=adder_sync.CLOCK_PERIOD,
        n=adder_sync.ripple_clock_pulses(n),
        name="clk",
    )
    sums, cout = adder_sync.ripple_adder(a_bits, b_bits, cin, clk)
    for k, wire in enumerate(sums):
        wire.observe(f"s{k}")
    cout.observe("cout")


def _build_adder_xsfq(params: Mapping[str, int]) -> None:
    n = params["n"]

    def rail(bit: int, name: str):
        true = inp_at(*([10.0] if bit else []), name=f"{name}_t")
        false = inp_at(*([] if bit else [10.0]), name=f"{name}_f")
        return (true, false)

    a = (1 << n) - 1
    b = 1
    a_bits = [rail((a >> k) & 1, f"a{k}") for k in range(n)]
    b_bits = [rail((b >> k) & 1, f"b{k}") for k in range(n)]
    cin = rail(0, "c")
    sums, cout = adder_xsfq.xsfq_ripple_adder(a_bits, b_bits, cin)
    for k, (s_t, s_f) in enumerate(sums):
        s_t.observe(f"s{k}_t")
        s_f.observe(f"s{k}_f")
    cout[0].observe("cout_t")
    cout[1].observe("cout_f")


def _build_racetree(params: Mapping[str, int]) -> None:
    depth = params["depth"]
    # Alternate low/high features by level, the generalization of the
    # registry tree's (3, 15) point: every level flips direction.
    features = [3.0 if level % 2 == 0 else 15.0 for level in range(depth)]
    times = racetree.race_tree_depth_inputs(depth, features)
    pairs = []
    for i in range((1 << depth) - 1):
        pairs.append(
            (
                inp_at(times[f"x{i}"], name=f"x{i}"),
                inp_at(times[f"t{i}"], name=f"t{i}"),
            )
        )
    leaves = racetree.race_tree_depth(pairs)
    for j, leaf in enumerate(leaves):
        leaf.observe(f"leaf{j}")


def _build_memory(params: Mapping[str, int]) -> None:
    words, bits = params["words"], params["bits"]
    mem = memory.make_memory_n(words, bits)
    names = memory.memory_port_names(words, bits)
    last = words - 1
    pattern = sum(1 << k for k in range(0, bits, 2))  # 0b...0101
    abits = (words - 1).bit_length()
    times: Dict[str, List[float]] = {name: [] for name in names}
    # Period 1 (clk at 50): write the pattern to the last address.
    for k in range(abits):
        if (last >> k) & 1:
            times[f"wa{k}"] = [10.0]
    for k in range(bits):
        if (pattern >> k) & 1:
            times[f"d{k}"] = [10.0]
    times["we"] = [10.0]
    # Period 2 (clk at 100): read it back.
    for k in range(abits):
        if (last >> k) & 1:
            times[f"ra{k}"] = [60.0]
    times["clk"] = [50.0, 100.0]
    wires = [inp_at(*times[name], name=name) for name in names]
    outs = mem(*wires)
    outs = outs if isinstance(outs, tuple) else (outs,)
    for wire, k in zip(outs, reversed(range(bits))):
        wire.observe(f"q{k}")


_FAMILIES: Tuple[DesignFamily, ...] = (
    DesignFamily(
        name="bitonic",
        description="n-input bitonic sorter on a bit-reversed time grid",
        params=(ParamSpec("n", "inputs (power of two)", 2, 64,
                          power_of_two=True),),
        build=_build_bitonic,
        default_grid=(("n", (2, 4, 8, 16)),),
    ),
    DesignFamily(
        name="adder_sync",
        description="n-bit synchronous wave-pipelined ripple adder, "
                    "worst-case carry",
        params=(ParamSpec("n", "operand bits", 1, 16),),
        build=_build_adder_sync,
        default_grid=(("n", (1, 2, 4, 8)),),
    ),
    DesignFamily(
        name="adder_xsfq",
        description="n-bit clock-free dual-rail (xSFQ) ripple adder, "
                    "worst-case carry",
        params=(ParamSpec("n", "operand bits", 1, 16),),
        build=_build_adder_xsfq,
        default_grid=(("n", (1, 2, 4, 8)),),
    ),
    DesignFamily(
        name="racetree",
        description="depth-d race-logic decision tree, alternating features",
        params=(ParamSpec("depth", "tree depth", 1, 5),),
        build=_build_racetree,
        default_grid=(("depth", (1, 2, 3)),),
    ),
    DesignFamily(
        name="memory",
        description="words x bits behavioral memory hole, write-then-read",
        params=(
            ParamSpec("words", "addressable words (power of two)", 2, 64,
                      power_of_two=True),
            ParamSpec("bits", "word width", 1, 8),
        ),
        build=_build_memory,
        default_grid=(("words", (4, 16, 64)), ("bits", (1, 2, 4))),
    ),
)


def families() -> Dict[str, DesignFamily]:
    """All registered families, by name."""
    return {family.name: family for family in _FAMILIES}


def family_names() -> List[str]:
    return [family.name for family in _FAMILIES]


def get_family(name: str) -> DesignFamily:
    table = families()
    if name not in table:
        raise PylseError(
            f"unknown design family {name!r}; available: "
            f"{', '.join(family_names())}"
        )
    return table[name]


class FamilyFactory:
    """A picklable ``CircuitFactory`` for one design point.

    Stores the family name and the normalized parameter tuple, so pool
    workers re-elaborate the point from the family table on their side —
    the parametric analogue of
    :class:`~repro.exp.registry.RegistryFactory`.
    """

    def __init__(self, family: str, params: Mapping[str, int]):
        spec = get_family(family)
        self.family = family
        self.params: ParamsTuple = spec.normalize(params)

    def __call__(self) -> Circuit:
        spec = get_family(self.family)
        with fresh_circuit() as circuit:
            spec.build(dict(self.params))
        return circuit

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"FamilyFactory({self.family!r}, {inner})"
