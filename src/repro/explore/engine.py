"""The sweep engine: cached Monte-Carlo measurement over parameter grids.

One :class:`ExploreEngine` walks a declarative parameter grid over a
:class:`~repro.explore.families.DesignFamily`, measuring each point with
the standard Monte-Carlo stack and caching aggressively at three levels —
the same layering as the yield service (:mod:`repro.serve.service`), so a
sweep point and a served request for the same circuit share semantics:

* ``(family, params) -> digest`` memo: repeated sweeps over the same grid
  never re-elaborate or re-hash a design point;
* the **resolved cache** (digest -> :class:`ResolvedPoint`): factory,
  baseline predicate, static cost, and latency, keyed by
  :func:`~repro.core.ir.structural_hash` — two parameter assignments that
  elaborate to the same circuit share one entry;
* the **result store** (:func:`~repro.core.ir.result_cache_key` ->
  :class:`~repro.core.montecarlo.YieldResult`): the canonical measurement
  memo key, so a warm sweep is pure cache lookups. A
  :class:`repro.cache.TieredCache` backs it; with ``cache_dir`` set the
  persistent tier makes a re-run sweep in a *fresh process* recompute
  nothing, and shares its ``results`` namespace with ``repro serve
  --cache-dir`` (see docs/caching.md).

Every measured point is element-wise identical to a direct
:func:`~repro.core.montecarlo.measure_yield` call with the same
parameters — caching can change *when* a result is computed, never its
value (the determinism contract that makes the key sound).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..cache import (
    DiskCache,
    LRUCache,
    MISSING,
    RESULTS_NAMESPACE,
    TieredCache,
)
from ..core.energy import CircuitCost, circuit_cost
from ..core.errors import PylseError
from ..core.ir import compile_circuit, result_cache_key
from ..core.montecarlo import YieldResult, measure_yield
from ..core.parallel import resolve_workers
from ..core.serialize import (
    yield_result_from_jsonable,
    yield_result_to_jsonable,
)
from ..core.simulation import Simulation
from ..exp.registry import PulseCountPredicate
from .families import DesignFamily, FamilyFactory, get_family
from .pareto import pareto_frontier

#: Default LRU capacities (a sweep grid is small next to a service's
#: request stream, but repeated sweeps with disjoint grids accumulate).
DEFAULT_RESULT_CACHE_SIZE = 4096
DEFAULT_RESOLVED_CACHE_SIZE = 256


@dataclass(frozen=True)
class ResolvedPoint:
    """A design point reduced to what measurement needs, keyed by digest."""

    digest: str
    factory: FamilyFactory
    predicate: PulseCountPredicate
    #: Static cost model totals (no simulation involved).
    cost: CircuitCost
    #: Last labeled pulse of the canonical noiseless run (ps): the
    #: makespan of the design point's stimulus, the sweep's latency axis.
    latency_ps: float


@dataclass(frozen=True)
class ExplorePoint:
    """One measured grid point: parameters, cost, latency, yield."""

    family: str
    params: Tuple[Tuple[str, int], ...]
    digest: str
    cost: CircuitCost
    latency_ps: float
    result: YieldResult
    #: Whether the measurement came from the result cache (diagnostic —
    #: cached and computed results are element-wise identical).
    cached: bool = field(compare=False, default=False)

    @property
    def yield_fraction(self) -> float:
        return self.result.yield_fraction

    def objective(self) -> Tuple[float, float, float]:
        """The minimized (cost, latency, 1 - yield) triple."""
        return (
            float(self.cost.jjs),
            self.latency_ps,
            1.0 - self.result.yield_fraction,
        )


@dataclass(frozen=True)
class SweepResult:
    """A full grid sweep plus its Pareto frontier."""

    family: str
    grid: Tuple[Tuple[str, Tuple[int, ...]], ...]
    sigma: float
    n_seeds: int
    seed0: int
    batch: Union[int, str, None]
    points: Tuple[ExplorePoint, ...]

    @property
    def pareto(self) -> Tuple[ExplorePoint, ...]:
        """The non-dominated points under (cost, latency, 1 - yield)."""
        return tuple(pareto_frontier(self.points, key=ExplorePoint.objective))


def parse_grid(specs: Sequence[str]) -> Dict[str, List[int]]:
    """Parse CLI grid specs ``["n=2,4,8", ...]`` into an ordered dict.

    Values must be integers (every family parameter is one); duplicates
    within one axis are rejected — they would silently re-measure (well,
    re-look-up) the same point.
    """
    grid: Dict[str, List[int]] = {}
    for spec in specs:
        name, sep, values = spec.partition("=")
        name = name.strip()
        if not sep or not name or not values.strip():
            raise PylseError(
                f"grid spec must look like 'name=v1,v2,...', got {spec!r}"
            )
        if name in grid:
            raise PylseError(f"duplicate grid axis {name!r}")
        parsed: List[int] = []
        for token in values.split(","):
            token = token.strip()
            try:
                parsed.append(int(token))
            except ValueError:
                raise PylseError(
                    f"grid axis {name!r}: values must be integers, "
                    f"got {token!r}"
                ) from None
        if len(set(parsed)) != len(parsed):
            raise PylseError(f"grid axis {name!r} has duplicate values")
        grid[name] = parsed
    if not grid:
        raise PylseError("empty grid: give at least one 'name=v1,v2,...'")
    return grid


def grid_points(grid: Mapping[str, Sequence[int]]) -> List[Dict[str, int]]:
    """The cartesian product of the grid axes, in declaration order."""
    names = list(grid)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(grid[name] for name in names))
    ]


class ExploreEngine:
    """See the module docstring; one instance amortizes across sweeps."""

    def __init__(
        self,
        workers: Optional[int] = 1,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        resolved_cache_size: int = DEFAULT_RESOLVED_CACHE_SIZE,
        cache_dir=None,
    ):
        self.workers = resolve_workers(workers)
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.result_cache = LRUCache(result_cache_size)
        #: The tiered measurement store. With ``cache_dir`` it shares the
        #: ``results`` namespace with the yield service — both key by
        #: :func:`result_cache_key` and store the canonical
        #: ``yield_result_to_jsonable`` document, so a sweep pre-warms a
        #: server pointed at the same directory (and vice versa). The
        #: in-memory tier holds live :class:`YieldResult` objects; the
        #: codec rehydrates disk hits.
        self.result_store = TieredCache(
            self.result_cache,
            None if cache_dir is None
            else DiskCache(cache_dir, RESULTS_NAMESPACE),
            encode=yield_result_to_jsonable,
            decode=yield_result_from_jsonable,
        )
        self.resolved_cache = LRUCache(resolved_cache_size)
        #: (family, params) -> digest; add-only, like the service's
        #: name -> digest memo (a design point never changes its hash).
        self._point_digest: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], str] = {}
        #: Monte-Carlo measurements actually computed (result-cache misses).
        self.computations = 0
        #: Design points elaborated + compiled (digest-memo misses).
        self.elaborations = 0

    # -- resolution -----------------------------------------------------
    def resolve(self, family: str, params: Mapping[str, int]) -> ResolvedPoint:
        """Elaborate/compile/baseline a design point, memoized by digest."""
        spec: DesignFamily = get_family(family)
        memo_key = (family, spec.normalize(params))
        digest = self._point_digest.get(memo_key)
        if digest is not None:
            resolved = self.resolved_cache.get(digest)
            if resolved is not MISSING:
                return resolved
        factory = FamilyFactory(family, params)
        circuit = factory()
        self.elaborations += 1
        digest = compile_circuit(circuit).structural_hash
        self._point_digest[memo_key] = digest
        resolved = self.resolved_cache.get(digest)
        if resolved is not MISSING:
            return resolved
        baseline = Simulation(circuit).simulate()
        latency = max(
            (times[-1] for times in baseline.values() if times),
            default=0.0,
        )
        resolved = ResolvedPoint(
            digest=digest,
            factory=factory,
            predicate=PulseCountPredicate(baseline),
            cost=circuit_cost(circuit),
            latency_ps=latency,
        )
        self.resolved_cache.put(digest, resolved)
        return resolved

    # -- measurement ----------------------------------------------------
    def measure(
        self,
        family: str,
        params: Mapping[str, int],
        sigma: float,
        n_seeds: int,
        seed0: int = 0,
        batch: Union[int, str, None] = None,
    ) -> ExplorePoint:
        """One cached yield measurement for one design point."""
        resolved = self.resolve(family, params)
        key = result_cache_key(
            resolved.digest, sigma=sigma, n_seeds=n_seeds, seed0=seed0,
            batch=batch,
        )
        result = self.result_store.get(key)
        cached = result is not MISSING
        if not cached:
            result = measure_yield(
                resolved.factory,
                resolved.predicate,
                sigma,
                seeds=range(seed0, seed0 + n_seeds),
                workers=self.workers,
                batch=batch,
            )
            self.computations += 1
            self.result_store.put(key, result)
        return ExplorePoint(
            family=family,
            params=resolved.factory.params,
            digest=resolved.digest,
            cost=resolved.cost,
            latency_ps=resolved.latency_ps,
            result=result,
            cached=cached,
        )

    # -- sweeps ---------------------------------------------------------
    def sweep(
        self,
        family: str,
        grid: Mapping[str, Sequence[int]],
        sigma: float = 0.5,
        n_seeds: int = 25,
        seed0: int = 0,
        batch: Union[int, str, None] = None,
        progress: Optional[Callable[[ExplorePoint], None]] = None,
    ) -> SweepResult:
        """Measure every point of the grid's cartesian product."""
        points: List[ExplorePoint] = []
        for assignment in grid_points(grid):
            point = self.measure(
                family, assignment, sigma=sigma, n_seeds=n_seeds,
                seed0=seed0, batch=batch,
            )
            points.append(point)
            if progress is not None:
                progress(point)
        return SweepResult(
            family=family,
            grid=tuple((name, tuple(values)) for name, values in grid.items()),
            sigma=float(sigma),
            n_seeds=n_seeds,
            seed0=seed0,
            batch=batch,
            points=tuple(points),
        )

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Cache and computation counters (the CI warm-sweep check's view)."""
        tiers = self.result_store.stats()
        return {
            "computations": self.computations,
            "elaborations": self.elaborations,
            "result_cache": tiers["memory"],
            "result_disk": tiers["disk"],
            "resolved_cache": self.resolved_cache.stats(),
        }
