"""Design-space exploration: parameterized families, sweeps, Pareto fronts.

The explorer generalizes the paper's fixed Table 2/3 evaluation into a
sweep engine over *parameterized* design families (n-bit adders, depth-d
race trees, n-word memories, n-input bitonic sorters). Each grid point is
costed statically with :func:`repro.core.energy.circuit_cost`, measured
with the full Monte-Carlo stack (:func:`repro.core.montecarlo.measure_yield`
over the batched drain / persistent pool), and cached under
:func:`repro.core.ir.result_cache_key` — the same contract the yield
service uses, so sweep points and served requests share semantics.

Entry point: ``python -m repro explore <family> --grid n=2,4,8``.
"""

from .engine import (
    DEFAULT_RESOLVED_CACHE_SIZE,
    DEFAULT_RESULT_CACHE_SIZE,
    ExploreEngine,
    ExplorePoint,
    ResolvedPoint,
    SweepResult,
    grid_points,
    parse_grid,
)
from .families import DesignFamily, FamilyFactory, families, family_names
from .pareto import dominates, pareto_frontier

__all__ = [
    "DEFAULT_RESOLVED_CACHE_SIZE",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DesignFamily",
    "ExploreEngine",
    "ExplorePoint",
    "FamilyFactory",
    "ResolvedPoint",
    "SweepResult",
    "dominates",
    "families",
    "family_names",
    "grid_points",
    "pareto_frontier",
    "parse_grid",
]
