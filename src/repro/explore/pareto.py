"""Pareto-frontier extraction for the sweep engine.

The explorer minimizes a (cost, latency, 1 - yield) triple per design
point; the frontier is the set of points no other point dominates. Plain
O(n^2) — sweep grids are tens to hundreds of points, not millions.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")
Objective = Tuple[float, ...]


def dominates(a: Objective, b: Objective) -> bool:
    """True iff ``a`` is at least as good everywhere and better somewhere.

    All objectives are minimized. Equal vectors do not dominate each
    other (both survive into the frontier).
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors must have equal length, got {len(a)} "
            f"and {len(b)}"
        )
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(
    points: Sequence[T], key: Callable[[T], Objective]
) -> List[T]:
    """The non-dominated subset of ``points``, in input order.

    Duplicate objective vectors all survive (none dominates its twin), so
    re-running a sweep never changes the frontier's membership rule.
    """
    objectives = [key(point) for point in points]
    frontier: List[T] = []
    for i, point in enumerate(points):
        if not any(
            dominates(objectives[j], objectives[i])
            for j in range(len(points))
            if j != i
        ):
            frontier.append(point)
    return frontier
