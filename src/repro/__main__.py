"""Command-line interface to the library.

Usage::

    python -m repro list                      # cells and designs
    python -m repro datasheet AND             # transition table for a cell
    python -m repro dot DRO                   # Graphviz source for a cell
    python -m repro simulate Min-Max          # simulate a registry design
    python -m repro simulate Min-Max --vcd out.vcd
    python -m repro yield Min-Max --sigma 1.0 --workers 4   # Monte-Carlo yield
    python -m repro yield Min-Max --stats --stats-json m.json  # + per-cell metrics
    python -m repro verify JTL                # model-check a design
    python -m repro energy Min-Max            # switching-energy estimate
    python -m repro lint "Adder (Sync)"       # static design-rule report
    python -m repro trace Min-Max             # dispatch-level trace + slack
    python -m repro trace Min-Max --stats --provenance max   # + metrics + chain
    python -m repro export Min-Max            # structural JSON
    python -m repro serve --port 8080 --workers 4   # yield-analysis service
    python -m repro explore adder_sync --grid n=1,2,4,8   # design-space sweep

(The table/figure experiments live under ``python -m repro.exp``.)
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.energy import energy_report
from .core.errors import PylseError
from .core.montecarlo import measure_yield
from .core.serialize import circuit_to_json
from .core.statictiming import slack_report
from .core.simulation import Simulation, render_waveforms
from .core.vcd import save_vcd
from .exp.registry import (
    PulseCountPredicate,
    RegistryFactory,
    build_in_fresh_circuit,
    registry,
)
from .lint import (
    ReachBudget,
    Severity,
    compare_with_baseline,
    json_payload,
    lint_circuit,
    lint_designs,
    load_baseline,
    render_text,
    sarif_payload,
    write_baseline,
)
from .lint import max_severity as lint_max_severity
from .mc.check import verify_design
from .obs import Observer
from .sfq import BASIC_CELLS, EXTENSION_CELLS
from .sfq.datasheet import datasheet, machine_to_dot


def _cells():
    return {cell.name: cell for cell in BASIC_CELLS + EXTENSION_CELLS}


def _designs():
    return {entry.name: entry for entry in registry()}


def cmd_list(_args) -> int:
    print("Cells (use with `datasheet` / `dot`):")
    for name in _cells():
        print(f"  {name}")
    print("\nDesigns (use with `simulate` / `verify` / `energy`):")
    for name in _designs():
        print(f"  {name}")
    return 0


def _require(table, name, kind):
    if name not in table:
        print(f"Unknown {kind} {name!r}; try `python -m repro list`.",
              file=sys.stderr)
        return None
    return table[name]


def cmd_datasheet(args) -> int:
    cell = _require(_cells(), args.name, "cell")
    if cell is None:
        return 2
    print(datasheet(cell))
    return 0


def cmd_dot(args) -> int:
    cell = _require(_cells(), args.name, "cell")
    if cell is None:
        return 2
    print(machine_to_dot(cell()._class_machine()), end="")
    return 0


def cmd_simulate(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    circuit = build_in_fresh_circuit(entry)
    sim = Simulation(circuit)
    events = sim.simulate()
    print(render_waveforms(events))
    if args.vcd:
        save_vcd(events, args.vcd, comment=f"repro design {entry.name}")
        print(f"\nwrote {args.vcd}")
    return 0


def cmd_yield(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    factory = RegistryFactory(entry.name)
    baseline = Simulation(factory()).simulate()
    predicate = PulseCountPredicate(baseline)
    collect_stats = args.stats or args.stats_json
    try:
        result = measure_yield(
            factory,
            predicate,
            sigma=args.sigma,
            seeds=range(args.seeds),
            workers=args.workers,
            collect_stats=collect_stats,
            engine=args.engine,
            min_seeds_parallel=args.min_seeds_parallel,
            batch=args.batch,
        )
    except PylseError as err:
        print(str(err), file=sys.stderr)
        return 1
    print(f"Monte-Carlo yield for {entry.name}:")
    print(f"  sigma: {result.sigma:g} ps, runs: {result.runs}")
    print(f"  workers: {args.workers}, engine: {args.engine}")
    print(f"  passed: {result.passed}  mis-behaved: {result.mis_behaved}  "
          f"violations: {result.violations}")
    print(f"  yield: {result.yield_fraction:.1%}")
    if result.failures:
        preview = ", ".join(
            f"{seed}:{kind}" for seed, kind in list(result.failures.items())[:8]
        )
        more = "..." if len(result.failures) > 8 else ""
        print(f"  failing seeds: {preview}{more}")
    if args.stats:
        # Divergence observability of the vectorized drain. Kept out of
        # the default output so batched and reference runs stay diffable
        # (the CI smoke job relies on that).
        print(f"  batched lanes: {result.batched_lanes}  "
              f"replayed seeds: {len(result.fallback_seeds)}")
        if result.divergence:
            causes = ", ".join(
                f"{cause}: {count}"
                for cause, count in sorted(result.divergence.items())
            )
            print(f"  divergence causes: {causes}")
    if result.stats is not None:
        if args.stats:
            print()
            print(result.stats.render())
        if args.stats_json:
            with open(args.stats_json, "w", encoding="utf-8") as f:
                f.write(result.stats.to_json() + "\n")
            print(f"wrote {args.stats_json}")
    return 0


def cmd_verify(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    circuit = build_in_fresh_circuit(entry)
    report = verify_design(
        circuit, max_states=args.max_states, time_limit=args.time_limit
    )
    print(report.summary())
    for violation in report.result.violations[:10]:
        print(f"  {violation.query}: {violation.automaton}.{violation.location}"
              f" — {violation.detail}")
        if violation.trace:
            print(violation.format_trace())
    return 0 if report.ok else 1


def cmd_energy(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    circuit = build_in_fresh_circuit(entry)
    sim = Simulation(circuit)
    sim.simulate()
    print(energy_report(sim).render())
    return 0


def cmd_lint(args) -> int:
    designs = _designs()
    if args.all:
        names = list(designs)
    elif args.names:
        names = args.names
    else:
        print("specify design name(s) or --all; try `python -m repro list`.",
              file=sys.stderr)
        return 2
    entries = []
    for name in names:
        entry = _require(designs, name, "design")
        if entry is None:
            return 2
        entries.append(entry)
    reports = lint_designs(
        [entry.name for entry in entries],
        workers=args.workers,
        select=args.select,
        ignore=args.ignore,
        tolerance=args.tolerance,
        reach=args.reach,
        reach_budget=ReachBudget(
            max_states=args.reach_states, time_limit=args.reach_time_limit
        ),
        reach_cache_dir=args.cache_dir,
    )
    if args.format == "text":
        text = render_text(reports)
    elif args.format == "json":
        text = json.dumps(json_payload(reports), indent=2)
    else:
        text = json.dumps(sarif_payload(reports), indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.update_baseline:
        if not args.baseline:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, reports)
        print(f"wrote {args.baseline} ({count} accepted finding(s))")
        return 0
    if args.baseline:
        # Baseline mode replaces the severity gate: pre-existing findings
        # (whatever their severity) pass, anything new fails.
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"baseline file {args.baseline!r} not found; create it with "
                f"--update-baseline",
                file=sys.stderr,
            )
            return 2
        comparison = compare_with_baseline(reports, baseline)
        print(comparison.render_text())
        return 0 if comparison.ok else 1
    if args.fail_on == "never":
        return 0
    worst = lint_max_severity(reports)
    return 1 if worst is not None and worst >= Severity.from_name(args.fail_on) else 0


def cmd_trace(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    circuit = build_in_fresh_circuit(entry)
    sim = Simulation(circuit)
    observe = args.stats or args.stats_json or args.provenance is not None
    observer = Observer() if observe else None
    try:
        sim.simulate(record=True, observer=observer)
    except PylseError as err:
        # With an observer attached the message already carries the
        # causal chain of the offending pulse group.
        print(str(err), file=sys.stderr)
        return 1
    print(sim.render_trace(provenance=args.provenance == "trace"))
    print()
    print(slack_report(sim))
    if args.provenance not in (None, "trace"):
        try:
            chain = sim.render_chain(args.provenance)
        except PylseError as err:
            print(str(err), file=sys.stderr)
            return 1
        print()
        print(f"causal chain of last pulse on {args.provenance!r}:")
        print(chain)
    if observer is not None and args.stats:
        print()
        print(observer.metrics.render())
    if observer is not None and args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as f:
            f.write(observer.metrics.to_json() + "\n")
        print(f"wrote {args.stats_json}")
    return 0


def cmd_export(args) -> int:
    entry = _require(_designs(), args.name, "design")
    if entry is None:
        return 2
    circuit = build_in_fresh_circuit(entry)
    try:
        text = circuit_to_json(circuit)
    except PylseError as err:
        print(str(err), file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_explore(args) -> int:
    from .explore.cli import cmd_explore as run_explore

    return run_explore(args)


def cmd_cache(args) -> int:
    from .cache.cli import cmd_cache as run_cache

    return run_cache(args)


def cmd_serve(args) -> int:
    from .serve import run_server

    try:
        server = run_server(
            host=args.host,
            port=args.port,
            quiet=not args.verbose,
            workers=args.workers,
            cache_size=args.cache_size,
            compiled_cache_size=args.compiled_cache_size,
            cache_dir=args.cache_dir,
        )
    except (OSError, PylseError) as err:
        print(f"cannot start server: {err}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    service = server.service
    print(f"serving yield analysis on http://{host}:{port} "
          f"(workers={service.workers}, "
          f"result cache={service.result_cache.capacity}, "
          f"compiled cache={service.compiled_cache.capacity})")
    if service.cache_dir is not None:
        print(f"persistent result cache: {service.cache_dir}")
    print("endpoints: POST /yield /yield_curve /critical_sigma, "
          "GET /healthz /stats — Ctrl-C to stop", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PyLSE reproduction: cells, designs, simulation, verification.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list cells and designs")
    p = sub.add_parser("datasheet", help="print a cell's datasheet")
    p.add_argument("name")
    p = sub.add_parser("dot", help="print a cell's Graphviz state diagram")
    p.add_argument("name")
    p = sub.add_parser("simulate", help="simulate a registry design")
    p.add_argument("name")
    p.add_argument("--vcd", help="also write a VCD waveform file")
    p = sub.add_parser("yield", help="Monte-Carlo timing yield for a design")
    p.add_argument("name")
    p.add_argument("--sigma", type=float, default=0.5,
                   help="Gaussian delay noise in ps (default 0.5)")
    p.add_argument("--seeds", type=int, default=50,
                   help="number of Monte-Carlo trials (default 50)")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool workers; 0 = one per CPU (default 1)")
    p.add_argument("--engine", choices=["auto", "pool", "serial"],
                   default="auto",
                   help="execution backend: 'auto' (persistent pool with "
                        "adaptive serial fallback when the sweep is too "
                        "small to amortize pool overhead), 'pool' (force "
                        "the process pool), 'serial' (force the in-process "
                        "reference path); default auto")
    p.add_argument("--min-seeds-parallel", type=int, default=None,
                   metavar="N",
                   help="never use the pool for sweeps with fewer than N "
                        "seeds (default: 2 x workers, adaptive)")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="vectorized-drain lane width: N seeds per batched "
                        "event-loop pass; 0 disables batching (per-seed "
                        "reference drain); default: auto")
    p.add_argument("--stats", action="store_true",
                   help="print per-cell metrics aggregated over all seeds "
                        "and the vectorized-drain divergence report")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write the aggregated metrics as JSON to FILE")
    p = sub.add_parser("verify", help="model-check a registry design")
    p.add_argument("name")
    p.add_argument("--max-states", type=int, default=200_000)
    p.add_argument("--time-limit", type=float, default=120.0)
    p = sub.add_parser("energy", help="switching-energy estimate for a design")
    p.add_argument("name")
    p = sub.add_parser(
        "lint",
        help="static analysis: machine, structural, and timing rules",
    )
    p.add_argument("names", nargs="*", metavar="name",
                   help="registry design(s) to lint")
    p.add_argument("--all", action="store_true",
                   help="lint every registry design")
    p.add_argument("--select", metavar="RULES",
                   help="comma-separated rule IDs/prefixes to enable "
                        "(e.g. PL3 or PL101,PL205); default: all")
    p.add_argument("--ignore", metavar="RULES",
                   help="comma-separated rule IDs/prefixes to disable")
    p.add_argument("--fail-on", choices=["error", "warning", "info", "never"],
                   default="error",
                   help="exit 1 when a finding of at least this severity "
                        "exists (default: error)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text", help="report format (default: text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="allowed path-balance skew and minimum acceptable "
                        "timing margin in ps (default 0)")
    p.add_argument("--reach", action="store_true",
                   help="also run the PL4xx zone-based reachability layer "
                        "(dead transitions, races, timing witnesses, stuck "
                        "states) with incremental caching")
    p.add_argument("--reach-states", type=int, default=4000,
                   help="state budget per design for --reach; exceeding it "
                        "reports the analysis as truncated (default 4000)")
    p.add_argument("--reach-time-limit", type=float, default=15.0,
                   help="wall-clock budget in seconds per design for "
                        "--reach (default 15)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist finished --reach analyses in an on-disk "
                        "store (lint namespace), so warm re-lints survive "
                        "process restarts")
    p.add_argument("--workers", type=int, default=1,
                   help="lint designs across a process pool; 0 = one per "
                        "CPU (default 1)")
    p.add_argument("--baseline", metavar="FILE",
                   help="compare findings against a baseline file: exit 0 "
                        "when only known findings fire, 1 on any new one "
                        "(replaces --fail-on)")
    p.add_argument("--update-baseline", action="store_true",
                   help="(re)write --baseline FILE accepting every current "
                        "finding")
    p = sub.add_parser("trace", help="dispatch trace + timing slack")
    p.add_argument("name")
    p.add_argument("--stats", action="store_true",
                   help="print per-cell metrics for the run")
    p.add_argument("--stats-json", metavar="FILE",
                   help="write the run's metrics as JSON to FILE")
    p.add_argument("--provenance", metavar="WIRE",
                   help="print the causal chain of the last pulse on WIRE; "
                        "the literal name 'trace' instead annotates every "
                        "trace line with its fired pulses' chains")
    p = sub.add_parser("export", help="structural JSON for a design")
    p.add_argument("name")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p = sub.add_parser(
        "serve",
        help="HTTP/JSON yield-analysis service with result caching",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 picks an ephemeral one (default 8080)")
    p.add_argument("--workers", type=int, default=1,
                   help="Monte-Carlo engine workers per request; 0 = one "
                        "per CPU (default 1)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="LRU capacity of the (hash, sigma, seeds, batch) "
                        "result cache (default 1024)")
    p.add_argument("--compiled-cache-size", type=int, default=128,
                   help="LRU capacity of the compiled-design cache "
                        "(default 128)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persistent on-disk result cache shared with "
                        "`repro explore --cache-dir` (survives restarts; "
                        "manage with `python -m repro cache`)")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per handled request")
    from .cache.cli import add_cache_parser
    from .explore.cli import add_explore_parser

    add_cache_parser(sub)
    add_explore_parser(sub)
    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "datasheet": cmd_datasheet,
        "dot": cmd_dot,
        "simulate": cmd_simulate,
        "yield": cmd_yield,
        "verify": cmd_verify,
        "energy": cmd_energy,
        "lint": cmd_lint,
        "trace": cmd_trace,
        "export": cmd_export,
        "serve": cmd_serve,
        "explore": cmd_explore,
        "cache": cmd_cache,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        sys.exit(0)
