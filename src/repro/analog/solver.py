"""Transient simulation of junction-ladder netlists.

Each node's shunt junction obeys the RCSJ equation

    PHI0_2PI * (C * phiddot + phidot / R) + Ic * sin(phi)
        = I_bias + I_pulse(t) + sum over branches PHI0_2PI * (phi_j - phi_i) / L

which we integrate as a first-order system ``y = [phi, phidot]`` with a
fixed-step classical Runge-Kutta (RK4) scheme, vectorized over all nodes
with numpy. Inductive coupling is a weighted graph Laplacian applied to the
phase vector (scipy sparse for larger networks).

Series junction branches (confluence buffers need them) carry the current

    Ic_br * sin(phi_a - phi_b) + PHI0_2PI * (phidot_a - phidot_b) / R_br
        + PHI0_2PI * C_br * (phiddot_a - phiddot_b)

whose capacitive term couples node accelerations; the solver assembles the
constant mass matrix ``M = diag(PHI0_2PI * C_i) + PHI0_2PI * C_br * L_inc``
once and solves ``M * phiddot = F`` each stage (dense inverse for small
nets, sparse LU otherwise).

Output pulses are detected as 2-pi phase slips of the probed junctions: the
pulse time is the (linearly interpolated) instant the phase crosses the next
odd multiple of pi, which coincides with the voltage-pulse peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from scipy import sparse
from scipy.sparse.linalg import splu

from ..core._np import np

from .netlist import Netlist
from .params import DT, PHI0_2PI


@dataclass
class TransientResult:
    """Outcome of a transient run."""

    netlist: Netlist
    t_end: float
    dt: float
    #: output name -> list of detected pulse times (ps)
    pulses: Dict[str, List[float]] = field(default_factory=dict)
    #: final phases, for slip counting / debugging
    final_phases: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: number of RK4 steps taken
    steps: int = 0

    def pulse_counts(self) -> Dict[str, int]:
        return {name: len(times) for name, times in self.pulses.items()}


class TransientSolver:
    """Compiled state for repeated transient runs of one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        n = netlist.n_nodes
        self.n = n
        self.ic = np.array([node.params.ic for node in netlist.nodes])
        self.inv_r = np.array([1.0 / node.params.r for node in netlist.nodes])
        self.cap = np.array([node.params.c for node in netlist.nodes])
        self.bias = np.array([node.bias for node in netlist.nodes])
        self.laplacian = self._build_laplacian()
        self._compile_junction_branches()
        self.output_nodes = sorted(netlist.outputs)
        self.output_names = [netlist.outputs[k] for k in self.output_nodes]
        self._pulse_sources = list(netlist.inputs)

    def _build_laplacian(self):
        """Weighted Laplacian: (L @ phi)[i] = sum_j (phi_i - phi_j) / L_ij."""
        n = self.n
        rows, cols, vals = [], [], []
        for branch in self.netlist.branches:
            w = 1.0 / branch.inductance
            rows += [branch.a, branch.b, branch.a, branch.b]
            cols += [branch.a, branch.b, branch.b, branch.a]
            vals += [w, w, -w, -w]
        lap = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(n, n), dtype=np.float64
        )
        if n <= 64:
            return lap.toarray()
        return lap

    def _compile_junction_branches(self) -> None:
        branches = self.netlist.junction_branches
        self.has_jb = bool(branches)
        if not self.has_jb:
            self._mass_solve = None
            return
        self.jb_a = np.array([b.a for b in branches])
        self.jb_b = np.array([b.b for b in branches])
        self.jb_ic = np.array([b.params.ic for b in branches])
        self.jb_inv_r = np.array([1.0 / b.params.r for b in branches])
        # Mass matrix: node capacitances + branch-capacitance incidence.
        n = self.n
        mass = sparse.lil_matrix((n, n))
        for k in range(n):
            mass[k, k] = PHI0_2PI * self.cap[k]
        for b in branches:
            cb = PHI0_2PI * b.params.c
            mass[b.a, b.a] += cb
            mass[b.b, b.b] += cb
            mass[b.a, b.b] -= cb
            mass[b.b, b.a] -= cb
        if n <= 64:
            inv = np.linalg.inv(mass.toarray())
            self._mass_solve = lambda f: inv @ f
        else:
            lu = splu(mass.tocsc())
            self._mass_solve = lu.solve

    # ------------------------------------------------------------------
    def _injected(self, t: float) -> np.ndarray:
        inj = np.zeros(self.n)
        for src in self._pulse_sources:
            for t0 in src.times:
                # Only evaluate sources within 6 sigma of the pulse center.
                if abs(t - t0) < 6.0 * src.width:
                    arg = (t - t0) / src.width
                    inj[src.node] += src.amplitude * np.exp(-0.5 * arg * arg)
        return inj

    def _derivatives(self, t: float, phi: np.ndarray, dphi: np.ndarray):
        coupling = -PHI0_2PI * (self.laplacian @ phi)
        total = (
            self.bias
            + self._injected(t)
            + coupling
            - self.ic * np.sin(phi)
            - PHI0_2PI * self.inv_r * dphi
        )
        if not self.has_jb:
            ddphi = total / (PHI0_2PI * self.cap)
            return dphi, ddphi
        # Series-junction branch currents (supercurrent + damping): flow
        # from node a to node b, i.e. out of a and into b.
        delta = phi[self.jb_a] - phi[self.jb_b]
        ddelta = dphi[self.jb_a] - dphi[self.jb_b]
        i_branch = self.jb_ic * np.sin(delta) + PHI0_2PI * self.jb_inv_r * ddelta
        np.subtract.at(total, self.jb_a, i_branch)
        np.add.at(total, self.jb_b, i_branch)
        ddphi = self._mass_solve(total)
        return dphi, ddphi

    # ------------------------------------------------------------------
    def run(self, t_end: float, dt: float = DT) -> TransientResult:
        """Integrate from rest to ``t_end``; detect output pulses."""
        phi = np.zeros(self.n)
        dphi = np.zeros(self.n)
        steps = int(np.ceil(t_end / dt))
        pulses: Dict[str, List[float]] = {name: [] for name in self.output_names}
        # Next odd-multiple-of-pi threshold per probed node.
        thresholds = {node: np.pi for node in self.output_nodes}

        t = 0.0
        for _ in range(steps):
            k1p, k1v = self._derivatives(t, phi, dphi)
            k2p, k2v = self._derivatives(t + dt / 2, phi + dt / 2 * k1p, dphi + dt / 2 * k1v)
            k3p, k3v = self._derivatives(t + dt / 2, phi + dt / 2 * k2p, dphi + dt / 2 * k2v)
            k4p, k4v = self._derivatives(t + dt, phi + dt * k3p, dphi + dt * k3v)
            new_phi = phi + dt / 6 * (k1p + 2 * k2p + 2 * k3p + k4p)
            new_dphi = dphi + dt / 6 * (k1v + 2 * k2v + 2 * k3v + k4v)

            for node, name in zip(self.output_nodes, self.output_names):
                threshold = thresholds[node]
                while new_phi[node] >= threshold:
                    # Linear interpolation of the crossing instant.
                    span = new_phi[node] - phi[node]
                    frac = (threshold - phi[node]) / span if span > 0 else 1.0
                    pulses[name].append(t + frac * dt)
                    threshold += 2 * np.pi
                thresholds[node] = threshold

            phi, dphi = new_phi, new_dphi
            t += dt

        return TransientResult(
            netlist=self.netlist,
            t_end=t_end,
            dt=dt,
            pulses=pulses,
            final_phases=phi,
            steps=steps,
        )


def simulate(netlist: Netlist, t_end: float, dt: float = DT) -> TransientResult:
    """One-shot transient simulation of a netlist."""
    return TransientSolver(netlist).run(t_end, dt)
