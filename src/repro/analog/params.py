"""Physical constants and default device parameters for the analog level.

Units are chosen so the numbers stay near 1 and match SFQ practice:

* time — picoseconds (ps)
* voltage — millivolts (mV)
* current — milliamperes (mA)
* resistance — ohms (mV/mA)
* inductance — picohenries (pH = mV·ps/mA)
* capacitance — picofarads (pF = mA·ps/mV)

The magnetic flux quantum is then ``PHI0 = 2.0678 mV·ps``; an SFQ pulse has
area exactly ``PHI0`` (a voltage pulse of ~0.5 mV lasting a few ps).

Default junction parameters follow typical externally-shunted Nb junctions
(critical current 0.1 mA, shunt resistance ~5 ohm for a McCumber parameter
near critical damping).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Magnetic flux quantum in mV * ps.
PHI0 = 2.0678

#: PHI0 / 2 pi — the phase-to-flux conversion factor.
PHI0_2PI = PHI0 / 6.283185307179586


@dataclass(frozen=True)
class JunctionParams:
    """RCSJ (resistively and capacitively shunted junction) parameters."""

    ic: float = 0.1      # critical current (mA)
    r: float = 5.0       # shunt resistance (ohm)
    c: float = 0.15      # junction + shunt capacitance (pF)

    def mccumber(self) -> float:
        """The Stewart-McCumber damping parameter beta_c."""
        return self.r * self.r * self.c * self.ic / PHI0_2PI / 1.0

    def scaled(self, factor: float) -> "JunctionParams":
        """A junction ``factor`` times larger (Ic and C scale up, R down)."""
        return JunctionParams(
            ic=self.ic * factor, r=self.r / factor, c=self.c * factor
        )


#: The workhorse junction every cell is built from.
DEFAULT_JUNCTION = JunctionParams()

#: Standard JTL loop inductance (LIc about PHI0/2).
L_JTL = 10.0

#: Inductance of inter-cell connections.
L_CONNECT = 10.0

#: Default bias, as a fraction of Ic.
BIAS_FRACTION = 0.7

#: Default integration step (ps). Pulse widths are ~4 ps, so this resolves
#: each pulse with ~80 samples.
DT = 0.05
