"""Parameter calibration for the analog cell library.

Real SFQ cell design is a margin-tuning exercise; this module ships the
harness used to set the constants in :mod:`repro.analog.cells`:

* :func:`measure_cell_delays` — input-to-output latency of each cell (used
  to choose ``BALANCE_STAGES`` for the comparator's max path);
* :func:`check_behaviors` — the functional contract of every cell
  (propagate / split / coincide / first-arrival+absorb) as pass/fail;
* :func:`margin_sweep` — scale one global parameter (e.g. all bias
  currents) and report where each behavior breaks, the analog analogue of a
  critical-margin analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .cells import add_c_element, add_input_stage, add_inv_c, add_jtl, add_splitter
from .compose import connect, min_max_netlist
from .netlist import Netlist
from .params import DT
from .solver import simulate


def _single_cell(cell, a_times, b_times):
    nl = Netlist("probe")
    sa = add_input_stage(nl, a_times)
    sb = add_input_stage(nl, b_times)
    ja, oa = add_jtl(nl)
    jb, ob = add_jtl(nl)
    connect(nl, sa, ja)
    connect(nl, sb, jb)
    in_a, in_b, out = cell(nl)
    connect(nl, oa, in_a)
    connect(nl, ob, in_b)
    jo, oo = add_jtl(nl)
    connect(nl, out, jo)
    nl.mark_output(oo, "q")
    return nl


def measure_cell_delays(dt: float = DT) -> Dict[str, float]:
    """Input-to-output latency (ps) of JTL stage, splitter, C, and InvC."""
    delays: Dict[str, float] = {}

    nl = Netlist("jtl_delay")
    src = add_input_stage(nl, [20.0])
    i1, o1 = add_jtl(nl, 6)
    connect(nl, src, i1)
    nl.mark_output(i1, "first")
    nl.mark_output(o1, "last")
    res = simulate(nl, 80, dt)
    delays["jtl_stage"] = (res.pulses["last"][0] - res.pulses["first"][0]) / 5

    nl = Netlist("split_delay")
    src = add_input_stage(nl, [20.0])
    drv, left, _right = add_splitter(nl)
    connect(nl, src, drv)
    nl.mark_output(left, "l")
    res = simulate(nl, 80, dt)
    delays["splitter"] = res.pulses["l"][0] - 20.0

    res = simulate(_single_cell(add_c_element, [20.0], [40.0]), 120, dt)
    delays["c_after_second"] = res.pulses["q"][0] - 40.0

    res = simulate(_single_cell(add_inv_c, [20.0], [40.0]), 120, dt)
    delays["inv_c_after_first"] = res.pulses["q"][0] - 20.0
    return delays


@dataclass
class BehaviorCheck:
    """One functional contract and whether the current parameters meet it."""

    name: str
    passed: bool
    detail: str


def check_behaviors(dt: float = DT) -> List[BehaviorCheck]:
    """The functional contract of every analog cell, as pass/fail checks."""
    checks: List[BehaviorCheck] = []

    def record(name: str, passed: bool, detail: str) -> None:
        checks.append(BehaviorCheck(name, passed, detail))

    nl = Netlist("jtl")
    src = add_input_stage(nl, [20.0, 60.0])
    i1, o1 = add_jtl(nl, 4)
    connect(nl, src, i1)
    nl.mark_output(o1, "q")
    pulses = simulate(nl, 120, dt).pulses["q"]
    record("jtl propagates each pulse", len(pulses) == 2, f"got {len(pulses)}")

    nl = Netlist("split")
    src = add_input_stage(nl, [20.0])
    drv, left, right = add_splitter(nl)
    connect(nl, src, drv)
    nl.mark_output(left, "l")
    nl.mark_output(right, "r")
    res = simulate(nl, 80, dt)
    record(
        "splitter duplicates",
        len(res.pulses["l"]) == 1 and len(res.pulses["r"]) == 1,
        f"l={len(res.pulses['l'])} r={len(res.pulses['r'])}",
    )

    pulses = simulate(_single_cell(add_c_element, [20.0], [50.0]), 130, dt).pulses["q"]
    record(
        "C fires once after second input",
        len(pulses) == 1 and pulses[0] > 50.0,
        f"pulses={pulses}",
    )
    pulses = simulate(_single_cell(add_c_element, [20.0], [400.0]), 200, dt).pulses["q"]
    record("C holds on single input", len(pulses) == 0, f"pulses={pulses}")

    pulses = simulate(_single_cell(add_inv_c, [20.0], [50.0]), 130, dt).pulses["q"]
    record(
        "InvC fires once after first input",
        len(pulses) == 1 and pulses[0] < 60.0,
        f"pulses={pulses}",
    )
    pulses = simulate(
        _single_cell(add_inv_c, [20.0, 90.0], [55.0, 125.0]), 200, dt
    ).pulses["q"]
    record("InvC re-arms across rounds", len(pulses) == 2, f"pulses={pulses}")

    res = simulate(min_max_netlist([60.0], [25.0]), 140, dt)
    low, high = res.pulses["low"], res.pulses["high"]
    record(
        "min-max orders outputs",
        len(low) == 1 and len(high) == 1 and low[0] < high[0],
        f"low={low} high={high}",
    )
    return checks


def margin_sweep(
    mutate: Callable[[Netlist, float], None],
    factors: Tuple[float, ...] = (0.8, 0.9, 1.0, 1.1, 1.2),
    dt: float = DT,
) -> Dict[float, bool]:
    """Re-run the min-max contract under a global parameter perturbation.

    ``mutate(netlist, factor)`` rewrites a built netlist in place (e.g.
    scaling every bias current); the sweep reports for each factor whether
    the min-max pair still orders its outputs correctly.
    """
    outcome: Dict[float, bool] = {}
    for factor in factors:
        nl = min_max_netlist([60.0], [25.0])
        mutate(nl, factor)
        res = simulate(nl, 140, dt)
        low, high = res.pulses["low"], res.pulses["high"]
        outcome[factor] = (
            len(low) == 1 and len(high) == 1 and low[0] < high[0]
        )
    return outcome


def scale_all_biases(netlist: Netlist, factor: float) -> None:
    """A mutate function for :func:`margin_sweep`: global bias scaling."""
    from .netlist import JunctionNode

    netlist.nodes = [
        JunctionNode(n.index, n.params, n.bias * factor, n.label)
        for n in netlist.nodes
    ]
