"""Schematic-level netlists: junction nodes joined by inductive branches.

The analog substrate models circuits in the standard discrete sine-Gordon
form used for SFQ conceptual studies: every node carries one shunted
Josephson junction to ground (plus a DC bias source), and nodes are joined
by inductors. A single flux quantum then manifests as a 2-pi phase slip
propagating from node to node — exactly the pulse the PyLSE level abstracts.

The builder also renders a SPICE-style text listing (:meth:`Netlist.lines`)
whose length is the "Schematic Lines" column of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from .params import BIAS_FRACTION, DEFAULT_JUNCTION, JunctionParams


@dataclass(frozen=True)
class JunctionNode:
    """One circuit node: shunted junction + bias source to ground."""

    index: int
    params: JunctionParams
    bias: float          # absolute bias current (mA)
    label: str


@dataclass(frozen=True)
class Branch:
    """An inductor between two nodes."""

    a: int
    b: int
    inductance: float    # pH


@dataclass(frozen=True)
class JunctionBranch:
    """A Josephson junction in *series* between two nodes.

    Its phase is the node-phase difference, so a stored 2-pi difference
    carries no static current (sin is 2-pi periodic) — the property that
    lets series junctions block back-propagation in confluence buffers,
    unlike inductive branches which hold flux as circulating current.
    """

    a: int
    b: int
    params: JunctionParams


@dataclass(frozen=True)
class PulseInput:
    """A current-pulse source into a node (the DC-to-SFQ converter stand-in).

    Each entry of ``times`` produces one Gaussian current pulse of the given
    amplitude and width, tuned to nucleate exactly one flux quantum.
    """

    node: int
    times: Tuple[float, ...]
    amplitude: float = 0.16   # mA
    width: float = 2.0        # ps (Gaussian sigma)
    label: str = "in"


class Netlist:
    """A mutable builder for junction-ladder circuits."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.nodes: List[JunctionNode] = []
        self.branches: List[Branch] = []
        self.junction_branches: List[JunctionBranch] = []
        self.inputs: List[PulseInput] = []
        #: node index -> output name, for pulse probing
        self.outputs: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def add_node(
        self,
        params: Optional[JunctionParams] = None,
        bias_fraction: float = BIAS_FRACTION,
        label: str = "n",
    ) -> int:
        params = params if params is not None else DEFAULT_JUNCTION
        node = JunctionNode(
            index=len(self.nodes),
            params=params,
            bias=bias_fraction * params.ic,
            label=f"{label}{len(self.nodes)}",
        )
        self.nodes.append(node)
        return node.index

    def add_branch(self, a: int, b: int, inductance: float) -> None:
        for idx in (a, b):
            if not 0 <= idx < len(self.nodes):
                raise PylseError(f"Branch references unknown node {idx}")
        if a == b:
            raise PylseError("Branch endpoints must differ")
        if inductance <= 0:
            raise PylseError(f"Branch inductance must be positive, got {inductance}")
        self.branches.append(Branch(a, b, inductance))

    def add_junction_branch(
        self,
        a: int,
        b: int,
        params: Optional[JunctionParams] = None,
    ) -> None:
        """A series junction from node ``a`` to node ``b``."""
        for idx in (a, b):
            if not 0 <= idx < len(self.nodes):
                raise PylseError(f"Junction branch references unknown node {idx}")
        if a == b:
            raise PylseError("Junction branch endpoints must differ")
        self.junction_branches.append(
            JunctionBranch(a, b, params if params is not None else DEFAULT_JUNCTION)
        )

    def add_pulse_input(
        self,
        node: int,
        times: Sequence[float],
        amplitude: float = 0.16,
        width: float = 2.0,
        label: str = "in",
    ) -> None:
        self.inputs.append(
            PulseInput(node, tuple(sorted(times)), amplitude, width, label)
        )

    def mark_output(self, node: int, name: str) -> None:
        if node in self.outputs:
            raise PylseError(f"Node {node} is already output {self.outputs[node]!r}")
        self.outputs[node] = name

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_junctions(self) -> int:
        return len(self.nodes) + len(self.junction_branches)

    def lines(self) -> List[str]:
        """SPICE-style text listing (unflattened component per line)."""
        out = [f"* {self.name}"]
        for node in self.nodes:
            p = node.params
            out.append(
                f"B{node.index} {node.label} gnd jj ic={p.ic:g} r={p.r:g} c={p.c:g}"
            )
            out.append(f"I{node.index} gnd {node.label} dc {node.bias:g}")
        for k, branch in enumerate(self.branches):
            out.append(
                f"L{k} {self.nodes[branch.a].label} {self.nodes[branch.b].label} "
                f"{branch.inductance:g}"
            )
        for k, jb in enumerate(self.junction_branches):
            out.append(
                f"BS{k} {self.nodes[jb.a].label} {self.nodes[jb.b].label} jj "
                f"ic={jb.params.ic:g} r={jb.params.r:g} c={jb.params.c:g}"
            )
        for k, pulse in enumerate(self.inputs):
            times = " ".join(f"{t:g}" for t in pulse.times)
            out.append(
                f"IP{k} gnd {self.nodes[pulse.node].label} pulse "
                f"a={pulse.amplitude:g} w={pulse.width:g} times=[{times}]"
            )
        for node, name in sorted(self.outputs.items()):
            out.append(f".probe v({self.nodes[node].label}) as {name}")
        out.append(".tran")
        out.append(".end")
        return out

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}: {self.n_junctions} junctions, "
            f"{len(self.branches)} inductors, {len(self.inputs)} sources)"
        )
