"""Junction-level analog simulation: the Cadence/SPICE substitute.

Table 2 and Figure 16 of the paper compare PyLSE against schematic-level
analog simulations (Cadence Virtuoso + the MITLL SFQ5ee PDK, both
proprietary). This package implements the closest open equivalent from
scratch: RCSJ Josephson-junction dynamics on ladder netlists, a fixed-step
RK4 transient solver, pulse detection via 2-pi phase slips, and tuned
netlists for the four Table 2 designs (C, InvC, min-max, bitonic-8).
See DESIGN.md for why this preserves the experiments' shape.
"""

from .cells import (
    add_c_element,
    add_merger,
    add_input_stage,
    add_inv_c,
    add_jtl,
    add_splitter,
)
from .compose import (
    BALANCE_STAGES,
    add_min_max,
    bitonic_netlist,
    c_element_netlist,
    connect,
    inv_c_netlist,
    min_max_netlist,
    pulse_map,
)
from .netlist import Branch, JunctionBranch, JunctionNode, Netlist, PulseInput
from .params import (
    BIAS_FRACTION,
    DEFAULT_JUNCTION,
    DT,
    JunctionParams,
    L_CONNECT,
    L_JTL,
    PHI0,
    PHI0_2PI,
)
from .solver import TransientResult, TransientSolver, simulate
from .tune import (
    BehaviorCheck,
    check_behaviors,
    margin_sweep,
    measure_cell_delays,
    scale_all_biases,
)

__all__ = [
    "BALANCE_STAGES",
    "BIAS_FRACTION",
    "BehaviorCheck",
    "Branch",
    "JunctionBranch",
    "DEFAULT_JUNCTION",
    "DT",
    "JunctionNode",
    "JunctionParams",
    "L_CONNECT",
    "L_JTL",
    "Netlist",
    "PHI0",
    "PHI0_2PI",
    "PulseInput",
    "TransientResult",
    "TransientSolver",
    "add_c_element",
    "add_input_stage",
    "add_inv_c",
    "add_jtl",
    "add_merger",
    "add_min_max",
    "add_splitter",
    "bitonic_netlist",
    "c_element_netlist",
    "check_behaviors",
    "connect",
    "inv_c_netlist",
    "margin_sweep",
    "measure_cell_delays",
    "min_max_netlist",
    "pulse_map",
    "scale_all_biases",
    "simulate",
]
