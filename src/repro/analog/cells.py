"""Analog (junction-level) netlist generators for the Table 2 cells.

Each generator appends one cell to a :class:`~repro.analog.netlist.Netlist`
and returns its port node indices. Cells follow standard SFQ topologies
expressed in the junction-ladder form (see :mod:`repro.analog.netlist`):

* **input stage** — a pulse-current source driving a junction (the
  DC-to-SFQ converter of Section 5.1);
* **JTL** — a chain of biased junctions joined by ~PHI0/(2 Ic) inductors;
* **splitter** — an oversized junction driving two output branches;
* **C element** — two input branches storing flux into an unbiased, oversized
  coincidence junction that only switches when both quanta are present;
* **Inverted C** — two input branches into a normally-biased junction that
  switches on the first quantum; the resulting loop flux cancels the second
  quantum (first-arrival semantics with second-pulse absorption).

The numeric parameters (set at module top) were validated by the margin
tests in ``tests/test_analog_cells.py``; the tuning harness
(:mod:`repro.analog.tune`) sweeps them to map the working region.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .netlist import Netlist
from .params import DEFAULT_JUNCTION, L_JTL

# --- splitter parameters ---------------------------------------------------
SPLITTER_SCALE = 1.6       # driver junction size, relative to default
L_SPLIT_OUT = 12.0         # inductance to each output branch (pH)

# --- C element parameters --------------------------------------------------
C_JUNCTION_SCALE = 2.2     # coincidence junction size
C_JUNCTION_BIAS = 0.1      # near-unbiased: needs both quanta to switch
L_C_STORE = 11.0           # storage-loop inductance per input (pH)
L_C_OUT = 14.0             # output coupling (pH)
C_OUT_SCALE = 1.0
C_OUT_BIAS = 0.68

# --- inverted C parameters -------------------------------------------------
INVC_INPUT_SCALE = 2.8     # oversized input buffers: immune to back-switching
INVC_INPUT_BIAS = 0.6      # under-biased buffers widen the immunity margin
INVC_TAPER_SCALE = 1.7     # taper stage so a unit JTL can drive the buffer
L_INVC_TAPER = 8.0         # taper-to-buffer coupling (pH)
INVC_CENTER_SCALE = 1.0    # normally-sized center: a single quantum flips it
INVC_CENTER_BIAS = 0.85    # high bias: low switching barrier
L_INVC_STORE = 22.0        # strong coupling: one quantum flips the center
L_INVC_OUT = 20.0          # output coupling strong enough to cascade


# --- merger (confluence buffer) parameters ---------------------------------
MERGER_BRANCH_SCALE = 1.2  # series junctions coupling each input to the
                           # common node (2-pi-periodic: no stored current)


def add_merger(netlist: Netlist, label: str = "cb") -> Tuple[int, int, int]:
    """A confluence buffer; returns ``(input a, input b, output)``.

    Two series Josephson junctions couple the input nodes to a common
    output junction; because a series junction's phase is 2-pi periodic,
    the flux stored after a merge carries no static current, so the cell
    re-arms for the next pulse from either side (unlike the inductively
    coupled C/InvC loops).

    Caveat (documented in ``tests/test_analog_merger.py``): like a minimal
    unbuffered confluence buffer, each merge also launches one
    back-propagating fluxon into the *idle* input's JTL — real cell
    libraries add further buffer stages to absorb it. Use standalone or
    behind expendable input JTLs.
    """
    in_a = netlist.add_node(label=f"{label}_a")
    in_b = netlist.add_node(label=f"{label}_b")
    common = netlist.add_node(label=f"{label}_v")
    netlist.add_junction_branch(
        in_a, common, DEFAULT_JUNCTION.scaled(MERGER_BRANCH_SCALE)
    )
    netlist.add_junction_branch(
        in_b, common, DEFAULT_JUNCTION.scaled(MERGER_BRANCH_SCALE)
    )
    return in_a, in_b, common


def add_input_stage(
    netlist: Netlist, times: Sequence[float], label: str = "in"
) -> int:
    """A DC-to-SFQ converter stand-in; returns its output node."""
    node = netlist.add_node(label=label)
    netlist.add_pulse_input(node, times, label=label)
    return node


def add_jtl(netlist: Netlist, n_stages: int = 2, label: str = "jtl") -> Tuple[int, int]:
    """A Josephson transmission line; returns ``(input node, output node)``."""
    first = netlist.add_node(label=label)
    prev = first
    for _ in range(n_stages - 1):
        nxt = netlist.add_node(label=label)
        netlist.add_branch(prev, nxt, L_JTL)
        prev = nxt
    return first, prev


def add_splitter(netlist: Netlist, label: str = "s") -> Tuple[int, int, int]:
    """A pulse splitter; returns ``(input, left output, right output)``."""
    driver = netlist.add_node(
        DEFAULT_JUNCTION.scaled(SPLITTER_SCALE), label=f"{label}_drv"
    )
    left = netlist.add_node(label=f"{label}_l")
    right = netlist.add_node(label=f"{label}_r")
    netlist.add_branch(driver, left, L_SPLIT_OUT)
    netlist.add_branch(driver, right, L_SPLIT_OUT)
    return driver, left, right


def add_c_element(netlist: Netlist, label: str = "c") -> Tuple[int, int, int]:
    """A C (coincidence) element; returns ``(input a, input b, output)``."""
    in_a = netlist.add_node(label=f"{label}_a")
    in_b = netlist.add_node(label=f"{label}_b")
    center = netlist.add_node(
        DEFAULT_JUNCTION.scaled(C_JUNCTION_SCALE),
        bias_fraction=C_JUNCTION_BIAS,
        label=f"{label}_jj",
    )
    out = netlist.add_node(
        DEFAULT_JUNCTION.scaled(C_OUT_SCALE),
        bias_fraction=C_OUT_BIAS,
        label=f"{label}_out",
    )
    netlist.add_branch(in_a, center, L_C_STORE)
    netlist.add_branch(in_b, center, L_C_STORE)
    netlist.add_branch(center, out, L_C_OUT)
    return in_a, in_b, out


def add_inv_c(netlist: Netlist, label: str = "icv") -> Tuple[int, int, int]:
    """An Inverted C element; returns ``(input a, input b, output)``."""
    taper_a = netlist.add_node(
        DEFAULT_JUNCTION.scaled(INVC_TAPER_SCALE), label=f"{label}_ta"
    )
    taper_b = netlist.add_node(
        DEFAULT_JUNCTION.scaled(INVC_TAPER_SCALE), label=f"{label}_tb"
    )
    in_a = netlist.add_node(
        DEFAULT_JUNCTION.scaled(INVC_INPUT_SCALE),
        bias_fraction=INVC_INPUT_BIAS,
        label=f"{label}_a",
    )
    in_b = netlist.add_node(
        DEFAULT_JUNCTION.scaled(INVC_INPUT_SCALE),
        bias_fraction=INVC_INPUT_BIAS,
        label=f"{label}_b",
    )
    center = netlist.add_node(
        DEFAULT_JUNCTION.scaled(INVC_CENTER_SCALE),
        bias_fraction=INVC_CENTER_BIAS,
        label=f"{label}_jj",
    )
    out = netlist.add_node(label=f"{label}_out")
    netlist.add_branch(taper_a, in_a, L_INVC_TAPER)
    netlist.add_branch(taper_b, in_b, L_INVC_TAPER)
    netlist.add_branch(in_a, center, L_INVC_STORE)
    netlist.add_branch(in_b, center, L_INVC_STORE)
    netlist.add_branch(center, out, L_INVC_OUT)
    return taper_a, taper_b, out
