"""Composite analog designs: min-max pair and bitonic sorters (Table 2).

These mirror the PyLSE designs of :mod:`repro.designs` at the junction
level: each comparator is two splitters feeding an Inverted C (min path) and
a C element (max path), and the bitonic network chains comparators exactly
as :func:`repro.designs.bitonic.bitonic_comparators` prescribes.

Just as Figure 11 balances the PyLSE min-max with a 2 ps JTL, the analog
max path is padded with JTL stages (``BALANCE_STAGES``) because the C
element switches faster than the Inverted C; the constant was calibrated
with :func:`repro.analog.tune.measure_cell_delays`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.errors import PylseError
from ..designs.bitonic import bitonic_comparators
from .cells import (
    add_c_element,
    add_input_stage,
    add_inv_c,
    add_jtl,
    add_splitter,
)
from .netlist import Netlist
from .params import L_CONNECT

#: JTL stages appended to the C-element (max) path of each comparator so
#: both comparator outputs carry the same latency.
BALANCE_STAGES = 4


def connect(netlist: Netlist, out_node: int, in_node: int) -> None:
    """Join one cell's output to another's input with a standard inductor."""
    netlist.add_branch(out_node, in_node, L_CONNECT)


def add_min_max(netlist: Netlist, a: int, b: int, label: str = "cmp") -> Tuple[int, int]:
    """One temporal comparator; returns ``(low, high)`` output nodes.

    ``a``/``b`` are upstream output nodes; the comparator adds it own input
    splitters, exactly like Figure 11a.
    """
    sa_in, sa_l, sa_r = add_splitter(netlist, label=f"{label}_sa")
    sb_in, sb_l, sb_r = add_splitter(netlist, label=f"{label}_sb")
    connect(netlist, a, sa_in)
    connect(netlist, b, sb_in)

    low_a, low_b, low = add_inv_c(netlist, label=f"{label}_icv")
    connect(netlist, sa_l, low_a)
    connect(netlist, sb_l, low_b)

    high_a, high_b, high = add_c_element(netlist, label=f"{label}_c")
    connect(netlist, sa_r, high_a)
    connect(netlist, sb_r, high_b)
    if BALANCE_STAGES:
        jtl_in, jtl_out = add_jtl(netlist, BALANCE_STAGES, label=f"{label}_bal")
        connect(netlist, high, jtl_in)
        high = jtl_out
    return low, high


def min_max_netlist(
    a_times: Sequence[float], b_times: Sequence[float]
) -> Netlist:
    """A standalone min-max pair driven by two pulse schedules."""
    netlist = Netlist("min_max")
    a = add_input_stage(netlist, a_times, label="a")
    b = add_input_stage(netlist, b_times, label="b")
    low, high = add_min_max(netlist, a, b)
    netlist.mark_output(low, "low")
    netlist.mark_output(high, "high")
    return netlist


def c_element_netlist(
    a_times: Sequence[float], b_times: Sequence[float]
) -> Netlist:
    """A standalone C element with input JTLs and an output probe."""
    netlist = Netlist("c_element")
    src_a = add_input_stage(netlist, a_times, label="a")
    src_b = add_input_stage(netlist, b_times, label="b")
    ja, oa = add_jtl(netlist)
    jb, ob = add_jtl(netlist)
    connect(netlist, src_a, ja)
    connect(netlist, src_b, jb)
    in_a, in_b, out = add_c_element(netlist)
    connect(netlist, oa, in_a)
    connect(netlist, ob, in_b)
    netlist.mark_output(out, "q")
    return netlist


def inv_c_netlist(
    a_times: Sequence[float], b_times: Sequence[float]
) -> Netlist:
    """A standalone Inverted C element with input JTLs and a probe."""
    netlist = Netlist("inv_c")
    src_a = add_input_stage(netlist, a_times, label="a")
    src_b = add_input_stage(netlist, b_times, label="b")
    ja, oa = add_jtl(netlist)
    jb, ob = add_jtl(netlist)
    connect(netlist, src_a, ja)
    connect(netlist, src_b, jb)
    in_a, in_b, out = add_inv_c(netlist)
    connect(netlist, oa, in_a)
    connect(netlist, ob, in_b)
    netlist.mark_output(out, "q")
    return netlist


def bitonic_netlist(input_times: Sequence[float]) -> Netlist:
    """An n-input bitonic sorter (n a power of two; 8 in Table 2/Figure 15).

    ``input_times[i]`` is the single pulse time presented on input ``i``;
    outputs are probed as ``o0..o(n-1)`` and should pulse in rank order.
    """
    n = len(input_times)
    if n < 2 or n & (n - 1):
        raise PylseError(f"Bitonic sorter size must be a power of two, got {n}")
    netlist = Netlist(f"bitonic_{n}")
    lanes: List[int] = [
        add_input_stage(netlist, [t], label=f"i{k}")
        for k, t in enumerate(input_times)
    ]
    for idx, (i, j, ascending) in enumerate(bitonic_comparators(n)):
        low, high = add_min_max(netlist, lanes[i], lanes[j], label=f"cmp{idx}")
        if ascending:
            lanes[i], lanes[j] = low, high
        else:
            lanes[i], lanes[j] = high, low
    for k, node in enumerate(lanes):
        netlist.mark_output(node, f"o{k}")
    return netlist


def pulse_map(result) -> Dict[str, List[float]]:
    """Round a TransientResult's pulses for comparisons and display."""
    return {
        name: [round(float(t), 2) for t in times]
        for name, times in result.pulses.items()
    }
