"""repro — a reproduction of PyLSE (PLDI 2022).

A pulse-transfer level language for superconductor electronics, embedded in
Python. The public API mirrors the paper's ``pylse`` package::

    import repro as pylse

    a = pylse.inp_at(125, 175, 225, 275, name='A')
    b = pylse.inp_at(75, 185, 225, 265, name='B')
    clk = pylse.inp(start=50, period=50, n=6, name='CLK')
    out = pylse.and_s(a, b, clk, name='Q')
    sim = pylse.Simulation()
    events = sim.simulate()
    assert events['Q'] == [209.2, 259.2, 309.2]
    sim.plot()

Subpackages:

* :mod:`repro.core` — PyLSE Machine formalism, circuits, simulation;
* :mod:`repro.sfq` — the 16-cell standard library;
* :mod:`repro.designs` — the paper's six larger designs;
* :mod:`repro.ta` — translation to Timed Automata and UPPAAL export;
* :mod:`repro.mc` — a zone-based model checker for the generated TA;
* :mod:`repro.analog` — a junction-level (RCSJ) analog circuit simulator;
* :mod:`repro.exp` — harnesses regenerating each table/figure.
"""

from .core import (
    Circuit,
    CompiledCircuit,
    compile_circuit,
    structural_hash,
    SkewFinding,
    balance_report,
    circuit_graph,
    clock_skew,
    events_to_html,
    events_to_vcd,
    path_delays,
    measure_yield,
    yield_curve,
    critical_sigma,
    YieldEngine,
    YieldResult,
    save_html,
    circuit_to_json,
    circuit_from_json,
    slack_report,
    timing_margins,
    worst_slacks,
    critical_path,
    TraceEntry,
    MarginRecord,
    save_vcd,
    total_jjs,
    Configuration,
    Events,
    FanoutError,
    Functional,
    HoleError,
    Normal,
    PriorInputViolation,
    PylseError,
    PylseMachine,
    Simulation,
    SimulationError,
    Transition,
    Transitional,
    TransitionTimeViolation,
    Uniform,
    WellFormednessError,
    Wire,
    WireError,
    fresh_circuit,
    hole,
    inp,
    inp_at,
    inspect,
    render_waveforms,
    reset_working_circuit,
    working_circuit,
)
from .sfq import (
    AND,
    BASIC_CELLS,
    EXTENSION_CELLS,
    NDRO,
    T1,
    ndro,
    t1,
    C,
    DRO,
    DRO_C,
    DRO_SR,
    INV,
    InvC,
    JOIN,
    JTL,
    M,
    NAND,
    NOR,
    OR,
    S,
    SFQ,
    XNOR,
    XOR,
    and_s,
    c,
    c_inv,
    dro,
    dro_c,
    dro_sr,
    inv_s,
    join,
    jtl,
    m,
    nand_s,
    nor_s,
    or_s,
    s,
    split,
    xnor_s,
    xor_s,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "Circuit", "CompiledCircuit", "compile_circuit", "structural_hash",
    "SkewFinding", "balance_report", "circuit_graph",
    "clock_skew", "critical_sigma", "events_to_html", "events_to_vcd",
    "measure_yield", "path_delays", "save_html", "save_vcd", "total_jjs",
    "yield_curve", "YieldEngine", "YieldResult", "circuit_to_json",
    "circuit_from_json",
    "slack_report", "timing_margins", "worst_slacks", "critical_path",
    "TraceEntry", "MarginRecord", "Configuration", "Events", "FanoutError", "Functional",
    "HoleError", "Normal", "PriorInputViolation", "PylseError",
    "PylseMachine", "Simulation", "SimulationError", "Transition",
    "Transitional", "TransitionTimeViolation", "Uniform",
    "WellFormednessError", "Wire", "WireError", "fresh_circuit", "hole",
    "inp", "inp_at", "inspect", "render_waveforms", "reset_working_circuit",
    "working_circuit",
    # cells
    "AND", "BASIC_CELLS", "C", "DRO", "DRO_C", "DRO_SR", "EXTENSION_CELLS",
    "INV", "InvC", "JOIN", "JTL", "M", "NAND", "NDRO", "NOR", "OR", "S",
    "SFQ", "T1", "XNOR", "XOR",
    "and_s", "c", "c_inv", "dro", "dro_c", "dro_sr", "inv_s", "join", "jtl",
    "m", "nand_s", "ndro", "nor_s", "or_s", "s", "split", "t1", "xnor_s",
    "xor_s",
]
