"""Timed Automata: translation (Figure 14), UPPAAL export, TCTL queries."""

from .automaton import (
    SCALE,
    Action,
    Constraint,
    Edge,
    TANetwork,
    TimedAutomaton,
    scale_time,
)
from .queries import (
    OutputTimesProperty,
    Query,
    correctness_query,
    deadlock_query,
    no_error_query,
    queries_for,
)
from .translate import (
    DEFAULT_SOAK,
    TranslationResult,
    channel_name,
    translate_circuit,
)
from .uppaal import save_uppaal_xml, to_uppaal_xml
from .uppaal_import import from_uppaal_xml

__all__ = [
    "Action",
    "Constraint",
    "DEFAULT_SOAK",
    "Edge",
    "OutputTimesProperty",
    "Query",
    "SCALE",
    "TANetwork",
    "TimedAutomaton",
    "TranslationResult",
    "channel_name",
    "correctness_query",
    "deadlock_query",
    "from_uppaal_xml",
    "no_error_query",
    "queries_for",
    "save_uppaal_xml",
    "scale_time",
    "to_uppaal_xml",
    "translate_circuit",
]
