"""Auto-generated TCTL verification queries (Section 5.3).

* **Query 1 (correctness)**: built from a PyLSE simulation's ``events``
  dict, it asserts that each firing TA feeding a circuit output can only be
  at its ``fta_end`` location (the instant an output pulse is emitted) when
  the global clock equals one of the simulation-observed pulse times::

      A[] ((firingauto3.fta_end imply (global == 890 || global == 2090)) && ...)

* **Query 2 (unreachable error states)**: asserts that no setup- or
  hold-violation location anywhere in the network is reachable::

      A[] not (c0.C_err_a_1 || c0.C_err_a_2 || ... || jtl0.JTL_err_a_2)

Both are emitted as UPPAAL-flavored TCTL strings *and* as structured
:class:`Query` objects the bundled :mod:`repro.mc` checker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.circuit import Circuit
from ..core.element import InGen
from ..core.errors import PylseError
from ..core.simulation import Events
from .automaton import scale_time
from .translate import TranslationResult, channel_name


@dataclass(frozen=True)
class OutputTimesProperty:
    """One conjunct of Query 1: ``automaton.fta_end`` only at given times."""

    automaton: str
    location: str
    allowed_times: Tuple[int, ...]  # scaled integers

    def to_tctl(self, global_clock: str = "global") -> str:
        if not self.allowed_times:
            return f"A[] not {self.automaton}.{self.location}"
        disjuncts = " || ".join(
            f"({global_clock} == {t})" for t in self.allowed_times
        )
        return f"{self.automaton}.{self.location} imply ({disjuncts})"


@dataclass
class Query:
    """A structured query the bundled model checker can decide."""

    kind: str  # 'output_times', 'no_errors', 'no_deadlock', or 'reachable'
    #: for 'output_times': the per-firing-TA conjuncts
    properties: List[OutputTimesProperty] = field(default_factory=list)
    #: for 'no_errors': (automaton, location) pairs that must be unreachable
    #: for 'reachable': (automaton, location) pairs, at least one of which
    #: must be reachable (E<> — a liveness-flavored sanity check)
    error_locations: List[Tuple[str, str]] = field(default_factory=list)

    def to_tctl(self) -> str:
        if self.kind == "reachable":
            disjuncts = " || ".join(
                f"{ta}.{loc}" for ta, loc in self.error_locations
            )
            return f"E<> ({disjuncts})"
        if self.kind == "output_times":
            conjuncts = " && ".join(
                f"({p.to_tctl()})" for p in self.properties
            )
            return f"A[] ({conjuncts})"
        if self.kind == "no_deadlock":
            return "A[] not deadlock"
        if self.kind == "no_errors":
            if not self.error_locations:
                return "A[] true"
            disjuncts = " || ".join(
                f"{ta}.{loc}" for ta, loc in self.error_locations
            )
            return f"A[] not ({disjuncts})"
        raise PylseError(f"Unknown query kind {self.kind!r}")


def correctness_query(
    circuit: Circuit,
    translation: TranslationResult,
    events: Events,
    output_wires: Sequence[str] = (),
) -> Query:
    """Query 1: outputs appear only at the simulation-observed times.

    ``events`` is the dict returned by ``Simulation.simulate``;
    ``output_wires`` names the wires to constrain (default: every circuit
    output wire).
    """
    wires = (
        [circuit.find_wire(name) for name in output_wires]
        if output_wires
        else circuit.output_wires()
    )
    properties: List[OutputTimesProperty] = []
    for wire in wires:
        channel = channel_name(wire)
        times = tuple(
            scale_time(t) for t in events.get(wire.observed_as, [])
        )
        source = circuit.source_of.get(wire)
        if source is not None and isinstance(source[0].element, InGen):
            # An input generator feeding a circuit output directly: the
            # environment TA emits exactly the schedule by construction, so
            # there is nothing to verify.
            continue
        firing_tas = translation.firing_tas_by_channel.get(channel, [])
        if not firing_tas:
            raise PylseError(
                f"No firing automata feed output wire {wire.observed_as!r}; "
                "is it really a cell output?"
            )
        for ta_name in firing_tas:
            properties.append(
                OutputTimesProperty(ta_name, "fta_end", times)
            )
    return Query(kind="output_times", properties=properties)


def no_error_query(translation: TranslationResult) -> Query:
    """Query 2: no setup/hold error location is reachable."""
    return Query(
        kind="no_errors", error_locations=translation.all_error_locations()
    )


def output_fires_query(
    circuit: Circuit,
    translation: TranslationResult,
    output_wires: Sequence[str] = (),
) -> Query:
    """``E<>`` some firing TA of each named output reaches ``fta_end``.

    The liveness-flavored complement of Query 1: Query 1 says outputs
    appear *only* at the expected times; this says they appear *at all* —
    guarding against a translation bug that silences a cell (a vacuously
    true Query 1).
    """
    wires = (
        [circuit.find_wire(name) for name in output_wires]
        if output_wires
        else circuit.output_wires()
    )
    locations: List[Tuple[str, str]] = []
    for wire in wires:
        for ta_name in translation.firing_tas_by_channel.get(
            channel_name(wire), []
        ):
            locations.append((ta_name, "fta_end"))
    if not locations:
        raise PylseError("No firing automata feed the requested outputs")
    return Query(kind="reachable", error_locations=locations)


def deadlock_query() -> Query:
    """``A[] not deadlock`` — included to reproduce the paper's point that
    plain deadlock detection is *not useful* for SCE designs: "good"
    deadlock also occurs when the user-defined input sequence is exhausted
    and no more cells can progress (Section 5.3). Expect violations on any
    finite input schedule; that is the finding, not a bug.
    """
    return Query(kind="no_deadlock")


def queries_for(
    circuit: Circuit, translation: TranslationResult, events: Events
) -> Dict[str, Query]:
    """Both auto-generated queries, keyed ``query1`` / ``query2``."""
    return {
        "query1": correctness_query(circuit, translation, events),
        "query2": no_error_query(translation),
    }
