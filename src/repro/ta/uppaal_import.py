"""Parse UPPAAL 4.x XML back into a :class:`TANetwork`.

The inverse of :mod:`repro.ta.uppaal`: round-tripping lets the exported
artifacts be re-verified by the bundled checker, and lets hand-edited
UPPAAL models (the paper's workflow includes writing extra TCTL queries in
UPPAAL itself) come back into the Python toolchain.

Supports the subset of UPPAAL syntax the exporter emits: global ``clock``
and ``chan`` declarations, one process per template, conjunctions of atomic
clock constraints in guards/invariants, ``ch!``/``ch?`` synchronisations,
and ``c = 0`` reset assignments.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

from ..core.errors import PylseError
from .automaton import Action, Constraint, TANetwork, TimedAutomaton

_CONSTRAINT_RE = re.compile(
    r"\s*([A-Za-z_]\w*)\s*(<=|>=|==|<|>)\s*(-?\d+)\s*"
)
_RESET_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*=\s*0\s*")
_SYNC_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*([!?])\s*")


def _parse_constraints(text: Optional[str], context: str) -> Tuple[Constraint, ...]:
    if not text or not text.strip():
        return ()
    constraints: List[Constraint] = []
    for atom in text.split("&&"):
        match = _CONSTRAINT_RE.fullmatch(atom)
        if not match:
            raise PylseError(f"Cannot parse constraint {atom!r} in {context}")
        clock, op, value = match.groups()
        constraints.append(Constraint(clock, op, int(value)))  # type: ignore[arg-type]
    return tuple(constraints)


def _parse_resets(text: Optional[str], context: str) -> Tuple[str, ...]:
    if not text or not text.strip():
        return ()
    resets: List[str] = []
    for atom in text.split(","):
        match = _RESET_RE.fullmatch(atom)
        if not match:
            raise PylseError(f"Cannot parse assignment {atom!r} in {context}")
        resets.append(match.group(1))
    return tuple(resets)


def _parse_declarations(text: Optional[str]) -> Tuple[List[str], List[str]]:
    clocks: List[str] = []
    channels: List[str] = []
    if not text:
        return clocks, channels
    for statement in text.split(";"):
        statement = statement.strip()
        if statement.startswith("clock "):
            clocks += [c.strip() for c in statement[6:].split(",") if c.strip()]
        elif statement.startswith("chan "):
            channels += [c.strip() for c in statement[5:].split(",") if c.strip()]
    return clocks, channels


def from_uppaal_xml(xml_text: str) -> TANetwork:
    """Parse UPPAAL XML (as produced by :func:`to_uppaal_xml`) into a network.

    Clock ownership: each clock is assigned to the first template whose
    labels mention it (the network semantics only needs the global list).
    Channels used with ``?`` by exactly one ``sink_*`` template keep their
    exporter-assigned roles; other roles are inferred from template names.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as err:
        raise PylseError(f"Invalid UPPAAL XML: {err}") from None
    if root.tag != "nta":
        raise PylseError(f"Expected <nta> root, got <{root.tag}>")

    clocks, channels = _parse_declarations(
        root.findtext("declaration", default="")
    )
    network = TANetwork()
    internal = [ch for ch in channels if ch.startswith("f_")]
    network.channels = [ch for ch in channels if not ch.startswith("f_")]
    network.internal_channels = internal
    if "global" in clocks:
        clocks.remove("global")

    remaining_clocks = set(clocks)
    for template in root.findall("template"):
        name = template.findtext("name", default="")
        if not name:
            raise PylseError("Template without a name")
        role = "cell"
        if name.startswith("firingauto"):
            role = "firing"
        elif name.startswith("input_"):
            role = "input"
        elif name.startswith("sink_"):
            role = "sink"
        id_to_name: Dict[str, str] = {}
        ta = TimedAutomaton(name=name, initial="", role=role)
        used_clocks: List[str] = []

        def note_clocks(constraints):
            for constraint in constraints:
                if constraint.clock in remaining_clocks:
                    used_clocks.append(constraint.clock)
                    remaining_clocks.discard(constraint.clock)

        for location in template.findall("location"):
            loc_id = location.get("id")
            loc_name = location.findtext("name", default=loc_id)
            id_to_name[loc_id] = loc_name
            invariant = _parse_constraints(
                next(
                    (
                        label.text
                        for label in location.findall("label")
                        if label.get("kind") == "invariant"
                    ),
                    None,
                ),
                f"{name}.{loc_name}",
            )
            note_clocks(invariant)
            ta.add_location(
                loc_name,
                invariant=invariant,
                error="_err_" in loc_name,
                end=loc_name == "fta_end",
            )
        init = template.find("init")
        if init is None or init.get("ref") not in id_to_name:
            raise PylseError(f"Template {name} has no valid <init>")
        ta.initial = id_to_name[init.get("ref")]

        edges = []
        for transition in template.findall("transition"):
            source = id_to_name[transition.find("source").get("ref")]
            target = id_to_name[transition.find("target").get("ref")]
            labels = {
                label.get("kind"): label.text
                for label in transition.findall("label")
            }
            guard = _parse_constraints(labels.get("guard"), f"{name} edge")
            resets = _parse_resets(labels.get("assignment"), f"{name} edge")
            note_clocks(guard)
            for clock in resets:
                if clock in remaining_clocks:
                    used_clocks.append(clock)
                    remaining_clocks.discard(clock)
            action = None
            sync = labels.get("synchronisation")
            if sync:
                match = _SYNC_RE.fullmatch(sync)
                if not match:
                    raise PylseError(f"Cannot parse sync {sync!r} in {name}")
                action = Action(match.group(1), match.group(2))  # type: ignore[arg-type]
            edges.append((source, target, action, guard, resets))
        ta.clocks = used_clocks
        for source, target, action, guard, resets in edges:
            ta.add_edge(source, target, action, guard, resets)
        network.add_automaton(ta)

    if remaining_clocks:
        # Clocks declared but never referenced: attach to the first TA so
        # the network's clock list stays complete.
        if network.automata:
            network.automata[0].clocks.extend(sorted(remaining_clocks))
    return network
