"""UPPAAL XML export (Section 5.3).

"The result is saved to an XML file, which can then be simulated in UPPAAL
or verified against certain properties on the command line via the
``verifyta`` program." UPPAAL itself is a closed-source binary unavailable
in this environment — the bundled :mod:`repro.mc` checker verifies the same
queries — but the XML artifact is still produced so the designs can be
loaded into a real UPPAAL installation.

The writer targets UPPAAL 4.x's flat-system DTD. All clocks and channels are
declared globally; each automaton becomes one template, instantiated once in
the ``system`` line.
"""

from __future__ import annotations

from typing import Dict, List, Optional
from xml.sax.saxutils import escape

from .automaton import TANetwork, TimedAutomaton

_HEADER = (
    "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
    "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' "
    "'http://www.it.uu.se/research/group/darts/uppaal/flat-1_1.dtd'>\n"
)


def _template_xml(ta: TimedAutomaton) -> str:
    loc_ids: Dict[str, str] = {
        loc: f"id_{ta.name}_{k}" for k, loc in enumerate(ta.locations)
    }
    parts: List[str] = [f"  <template>\n    <name>{escape(ta.name)}</name>"]
    for loc in ta.locations:
        parts.append(
            f"    <location id=\"{loc_ids[loc]}\">\n"
            f"      <name>{escape(loc)}</name>"
        )
        invariant = ta.invariants.get(loc)
        if invariant:
            text = escape(" && ".join(str(c) for c in invariant))
            parts.append(f"      <label kind=\"invariant\">{text}</label>")
        parts.append("    </location>")
    parts.append(f"    <init ref=\"{loc_ids[ta.initial]}\"/>")
    for edge in ta.edges:
        parts.append(
            "    <transition>\n"
            f"      <source ref=\"{loc_ids[edge.source]}\"/>\n"
            f"      <target ref=\"{loc_ids[edge.target]}\"/>"
        )
        if edge.guard:
            text = escape(" && ".join(str(c) for c in edge.guard))
            parts.append(f"      <label kind=\"guard\">{text}</label>")
        if edge.action is not None:
            parts.append(
                f"      <label kind=\"synchronisation\">"
                f"{escape(str(edge.action))}</label>"
            )
        if edge.resets:
            text = escape(", ".join(f"{c} = 0" for c in edge.resets))
            parts.append(f"      <label kind=\"assignment\">{text}</label>")
        parts.append("    </transition>")
    parts.append("  </template>")
    return "\n".join(parts)


def to_uppaal_xml(network: TANetwork, queries: Optional[List[str]] = None) -> str:
    """Serialize the network (and optional queries) to UPPAAL XML."""
    clocks = ", ".join(network.all_clocks())
    channels = network.all_channels()
    decls = [f"clock {clocks};"]
    if channels:
        decls.append(f"chan {', '.join(channels)};")
    parts = [_HEADER, "<nta>"]
    parts.append(f"  <declaration>{escape(' '.join(decls))}</declaration>")
    for ta in network.automata:
        parts.append(_template_xml(ta))
    names = ", ".join(ta.name for ta in network.automata)
    parts.append(f"  <system>system {escape(names)};</system>")
    if queries:
        parts.append("  <queries>")
        for q in queries:
            parts.append(
                "    <query>\n"
                f"      <formula>{escape(q)}</formula>\n"
                "      <comment/>\n"
                "    </query>"
            )
        parts.append("  </queries>")
    parts.append("</nta>")
    return "\n".join(parts) + "\n"


def save_uppaal_xml(
    network: TANetwork, path: str, queries: Optional[List[str]] = None
) -> None:
    """Write :func:`to_uppaal_xml` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(to_uppaal_xml(network, queries))
