"""Timed Automata data structures (Definition 4.1).

A Timed Automaton ``A = <L, l0, Sigma, C, E, I>`` has locations, an initial
location, actions (here: channel sends ``ch!`` and receives ``ch?``, or the
internal action), clocks, edges guarded by clock constraints, and per-
location clock invariants.

Times are represented as *scaled integers*: UPPAAL requires integer
constants in clock constraints, so all picosecond values are multiplied by
:data:`SCALE` (10 — one decimal digit of precision, exactly as the paper
upscales ``209.0`` ps to ``2090``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from ..core.errors import PylseError

#: Factor between picoseconds and the integer time units used in TA
#: constraints (one decimal digit of precision).
SCALE = 10


def scale_time(value: float) -> int:
    """Convert picoseconds to scaled integer time units.

    Raises if the value cannot be represented exactly at :data:`SCALE`
    precision (within float tolerance).
    """
    scaled = value * SCALE
    rounded = round(scaled)
    if abs(scaled - rounded) > 1e-6:
        raise PylseError(
            f"Time value {value} ps is not representable at 1/{SCALE} ps "
            "precision required for Timed Automata translation"
        )
    return int(rounded)


Op = Literal["<", "<=", "==", ">=", ">"]


@dataclass(frozen=True)
class Constraint:
    """An atomic clock constraint ``clock op constant`` (scaled integer)."""

    clock: str
    op: Op
    value: int

    def __str__(self) -> str:
        return f"{self.clock} {self.op} {self.value}"


@dataclass(frozen=True)
class Action:
    """A channel action: ``ch!`` (send) or ``ch?`` (receive)."""

    channel: str
    kind: Literal["!", "?"]

    def __str__(self) -> str:
        return f"{self.channel}{self.kind}"


@dataclass(frozen=True)
class Edge:
    """A TA edge ``<l, alpha, phi, lambda, l'>``.

    ``action`` is ``None`` for the internal action; ``guard`` is a
    conjunction of constraints; ``resets`` lists the clocks reset to zero.
    """

    source: str
    target: str
    action: Optional[Action] = None
    guard: Tuple[Constraint, ...] = ()
    resets: Tuple[str, ...] = ()

    def __str__(self) -> str:
        act = str(self.action) if self.action else "tau"
        guard = " && ".join(map(str, self.guard)) or "true"
        resets = ", ".join(self.resets)
        return f"{self.source} --{act}; {guard}; {{{resets}}}--> {self.target}"


@dataclass
class TimedAutomaton:
    """One automaton of a network; locations are plain strings."""

    name: str
    initial: str
    #: Provenance: 'cell' (a machine's main TA), 'firing', 'input' (pulse
    #: generator), or 'sink' (circuit-output receiver). Table 3's counts
    #: cover 'cell' + 'firing' only.
    role: str = "cell"
    locations: List[str] = field(default_factory=list)
    clocks: List[str] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    invariants: Dict[str, Tuple[Constraint, ...]] = field(default_factory=dict)
    #: Locations that denote timing-constraint violations (for Query 2).
    error_locations: List[str] = field(default_factory=list)
    #: Marker locations entered at the instant an output is emitted
    #: (``fta_end`` in the paper's Query 1).
    end_locations: List[str] = field(default_factory=list)

    def add_location(
        self,
        name: str,
        invariant: Sequence[Constraint] = (),
        error: bool = False,
        end: bool = False,
    ) -> str:
        if name in self.locations:
            raise PylseError(f"TA {self.name}: duplicate location {name!r}")
        self.locations.append(name)
        if invariant:
            self.invariants[name] = tuple(invariant)
        if error:
            self.error_locations.append(name)
        if end:
            self.end_locations.append(name)
        return name

    def add_edge(
        self,
        source: str,
        target: str,
        action: Optional[Action] = None,
        guard: Sequence[Constraint] = (),
        resets: Sequence[str] = (),
    ) -> Edge:
        for loc in (source, target):
            if loc not in self.locations:
                raise PylseError(f"TA {self.name}: unknown location {loc!r}")
        edge = Edge(source, target, action, tuple(guard), tuple(resets))
        self.edges.append(edge)
        return edge

    def validate(self) -> None:
        if self.initial not in self.locations:
            raise PylseError(
                f"TA {self.name}: initial location {self.initial!r} undefined"
            )
        clock_set = set(self.clocks)
        for edge in self.edges:
            for constraint in edge.guard:
                if constraint.clock not in clock_set:
                    raise PylseError(
                        f"TA {self.name}: edge {edge} guards unknown clock "
                        f"{constraint.clock!r}"
                    )
            for clock in edge.resets:
                if clock not in clock_set:
                    raise PylseError(
                        f"TA {self.name}: edge {edge} resets unknown clock "
                        f"{clock!r}"
                    )
        for loc, constraints in self.invariants.items():
            for constraint in constraints:
                if constraint.clock not in clock_set:
                    raise PylseError(
                        f"TA {self.name}: invariant at {loc} uses unknown clock "
                        f"{constraint.clock!r}"
                    )

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


@dataclass
class TANetwork:
    """A network of TAs running in parallel with binary channel handshakes.

    ``channels`` are the externally meaningful channels (circuit wires);
    ``internal_channels`` carry fire messages between a cell's main TA and
    its firing TAs. Clock names are global across the network (each TA's
    clocks are prefixed by its name at construction).
    """

    automata: List[TimedAutomaton] = field(default_factory=list)
    channels: List[str] = field(default_factory=list)
    internal_channels: List[str] = field(default_factory=list)
    #: The never-reset global time clock (present in every network).
    global_clock: str = "global"

    def add_automaton(self, ta: TimedAutomaton) -> TimedAutomaton:
        ta.validate()
        if any(existing.name == ta.name for existing in self.automata):
            raise PylseError(f"Duplicate automaton name {ta.name!r}")
        self.automata.append(ta)
        return ta

    def all_clocks(self) -> List[str]:
        clocks = [self.global_clock]
        for ta in self.automata:
            clocks.extend(ta.clocks)
        return clocks

    def all_channels(self) -> List[str]:
        return list(self.channels) + list(self.internal_channels)

    # ------------------------------------------------------------------
    # statistics for Table 3
    # ------------------------------------------------------------------
    @property
    def n_automata(self) -> int:
        return len(self.automata)

    @property
    def n_locations(self) -> int:
        return sum(ta.n_locations for ta in self.automata)

    @property
    def n_edges(self) -> int:
        return sum(ta.n_edges for ta in self.automata)

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def find(self, name: str) -> TimedAutomaton:
        for ta in self.automata:
            if ta.name == name:
                return ta
        raise PylseError(f"No automaton named {name!r}")
