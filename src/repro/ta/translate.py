"""Translation of PyLSE circuits to networks of Timed Automata (Figure 14).

Every placed cell becomes one *main* TA plus a family of *firing* TAs; input
generators become environment TAs that emit the pulse schedule; circuit
outputs get always-ready sink TAs. Channels are the circuit's wires, and a
handshake on a channel is a pulse crossing that wire.

For each PyLSE Machine transition ``src --sigma[prio, tau_tran] / firing /
constraints--> dst`` the main TA gets (Figure 14's expansion):

* an edge ``src --sigma?; {c_sigma' >= tau_dist ...}; {c_h, c_sigma}--> q0``
  checking the past constraints and starting the handler clock;
* one *setup error* location and edge per past constraint
  (``src --sigma?; c_sigma' < tau_dist--> <CELL>_err_<sigma'>_<n>``);
* an urgent chain of fire sends ``q0 --f! ; c_h == 0--> q1 ...`` (outputs
  are emitted at the transition-trigger instant; the firing TA adds the
  firing delay);
* a wait location carrying the ``c_h <= tau_tran`` invariant, with one
  *hold error* location and edge per input (pulses during the transitionary
  period are illegal) and an exit edge ``c_h == tau_tran; {c_h}`` to the
  destination state.

Each firing TA (Figure 14d) receives the internal fire message, waits
exactly the firing delay, and sends on the output wire's channel; it is
replicated by the soaking factor ``ceil(tau_fire / tau_tran)`` so the cell
can re-fire during a pending propagation.

Functional (hole) elements have no transition system and are rejected —
model checking applies to the Transitional subset of a design.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.circuit import Circuit
from ..core.element import InGen
from ..core.errors import PylseError
from ..core.ir import compile_circuit
from ..core.node import Node
from ..core.timing import nominal_delay
from ..core.transitional import Transitional
from ..core.wire import Wire
from .automaton import Action, Constraint, TANetwork, TimedAutomaton, scale_time

#: Soaking factor used for transitions with zero transition time (the
#: paper's formula ceil(tau_prop / tau_hold) is undefined there).
DEFAULT_SOAK = 1


def channel_name(wire: Wire) -> str:
    """A channel identifier for a wire (sanitized for UPPAAL)."""
    label = wire.observed_as
    cleaned = re.sub(r"\W", "_", label)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "w" + cleaned
    return cleaned


@dataclass
class TranslationResult:
    """A translated circuit: the TA network plus provenance maps."""

    network: TANetwork
    #: node name -> its main TA
    main_tas: Dict[str, TimedAutomaton] = field(default_factory=dict)
    #: output channel -> names of the firing TAs that send on it
    firing_tas_by_channel: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def cell_automata(self) -> List[TimedAutomaton]:
        return [ta for ta in self.network.automata if ta.role in ("cell", "firing")]

    def cell_stats(self) -> Dict[str, int]:
        """Table 3's UPPAAL columns: TA, locations, transitions, channels."""
        tas = self.cell_automata
        return {
            "ta": len(tas),
            "locations": sum(ta.n_locations for ta in tas),
            "transitions": sum(ta.n_edges for ta in tas),
            "channels": self.network.n_channels,
        }

    def all_error_locations(self) -> List[Tuple[str, str]]:
        """Every (automaton, error location) pair in the network."""
        return [
            (ta.name, loc)
            for ta in self.network.automata
            for loc in ta.error_locations
        ]


class _CellTranslator:
    """Builds the main TA and firing TAs for one placed Transitional cell."""

    def __init__(self, node: Node, network: TANetwork, result: TranslationResult,
                 fire_counter: List[int], default_soak: int):
        self.node = node
        self.element: Transitional = node.element  # type: ignore[assignment]
        self.machine = self.element.machine
        self.network = network
        self.result = result
        self.fire_counter = fire_counter
        self.default_soak = default_soak
        self.err_counter = 0

    def translate(self) -> None:
        node, machine = self.node, self.machine
        ta = TimedAutomaton(
            name=node.name, initial=machine.initial, role="cell"
        )
        clock_h = f"c_{node.name}_h"
        clock_of = {
            sym: f"c_{node.name}_{sym}" for sym in machine.inputs
        }
        ta.clocks = [clock_h] + list(clock_of.values())
        for state in machine.states:
            ta.add_location(state)

        # One fire channel per (output, scaled delay) family; firing TAs are
        # created once per family, replicated by the soaking factor.
        fire_families: Dict[Tuple[str, int], str] = {}
        max_tran_for_family: Dict[Tuple[str, int], int] = {}
        for t in machine.transitions:
            for out, delay in t.firing.items():
                key = (out, scale_time(nominal_delay(delay)))
                fire_families.setdefault(
                    key, f"f_{node.name}_{out}_{key[1]}"
                )
                tran = scale_time(t.transition_time)
                max_tran_for_family[key] = max(
                    max_tran_for_family.get(key, 0), tran
                )

        for t in machine.transitions:
            self._expand_transition(ta, t, clock_h, clock_of, fire_families)

        self.network.add_automaton(ta)
        self.result.main_tas[node.name] = ta

        for (out, delay_scaled), fire_channel in fire_families.items():
            self.network.internal_channels.append(fire_channel)
            wire = node.output_wires[out]
            out_channel = channel_name(wire)
            tran = max_tran_for_family[(out, delay_scaled)]
            if tran > 0:
                soak = max(1, math.ceil(delay_scaled / tran))
            else:
                soak = self.default_soak
            for _ in range(soak):
                self._make_firing_ta(fire_channel, out_channel, delay_scaled)

    # ------------------------------------------------------------------
    def _expand_transition(self, ta, t, clock_h, clock_of, fire_families) -> None:
        machine = self.machine
        tran = scale_time(t.transition_time)
        trigger_clock = clock_of[t.trigger]

        # Setup (past-constraint) checks: collect (input, scaled tau_dist).
        constraints = [
            (sym, scale_time(dist))
            for sym, dist in machine._constraint_items(t)
            if dist > 0
        ]
        ok_guard = [Constraint(clock_of[sym], ">=", dist) for sym, dist in constraints]

        # The urgent fire chain q0 -> q1 -> ... then the wait location.
        chain = [ta.add_location(f"q0_{t.id}", invariant=(
            [Constraint(clock_h, "<=", 0)] if t.firing else
            [Constraint(clock_h, "<=", tran)]
        ))]
        ta.add_edge(
            t.source, chain[0], Action(channel_name_for(self.node, t.trigger), "?"),
            guard=ok_guard, resets=[clock_h, trigger_clock],
        )
        for sym, dist in constraints:
            err = self._error_location(ta, sym, kind="s")
            ta.add_edge(
                t.source, err,
                Action(channel_name_for(self.node, t.trigger), "?"),
                guard=[Constraint(clock_of[sym], "<", dist)],
            )

        # Emit one fire message per output, all at the trigger instant.
        fire_items = sorted(
            t.firing.items(), key=lambda item: machine.outputs.index(item[0])
        )
        for i, (out, delay) in enumerate(fire_items):
            key = (out, scale_time(nominal_delay(delay)))
            is_last = i == len(fire_items) - 1
            nxt_inv = (
                [Constraint(clock_h, "<=", tran)]
                if is_last
                else [Constraint(clock_h, "<=", 0)]
            )
            nxt = ta.add_location(f"q{i + 1}_{t.id}", invariant=nxt_inv)
            ta.add_edge(
                chain[-1], nxt, Action(fire_families[key], "!"),
                guard=[Constraint(clock_h, "==", 0)],
            )
            chain.append(nxt)

        wait = chain[-1]
        # Pulses during the transitionary period are illegal (hold errors).
        # These locations are created even when tau_tran is zero — the guard
        # is then unsatisfiable and the location unreachable — matching the
        # paper's expansion, which inserts error states for every transition
        # (its min-max Query 2 enumerates C_err_* locations although the C
        # element never rejects a pulse under that stimulus).
        for sym in machine.inputs:
            err = self._error_location(ta, sym, kind="h")
            ta.add_edge(
                wait, err, Action(channel_name_for(self.node, sym), "?"),
                guard=[Constraint(clock_h, "<", tran)],
            )
        ta.add_edge(
            wait, t.dest, None,
            guard=[Constraint(clock_h, "==", tran)], resets=[clock_h],
        )

    def _error_location(self, ta, input_symbol: str, kind: str) -> str:
        self.err_counter += 1
        name = f"{self.element.name}_err_{input_symbol}_{self.err_counter}"
        return ta.add_location(name, error=True)

    def _make_firing_ta(self, fire_channel: str, out_channel: str, delay: int) -> None:
        index = self.fire_counter[0]
        self.fire_counter[0] += 1
        ta = TimedAutomaton(
            name=f"firingauto{index}", initial="f0", role="firing"
        )
        clock_p = f"c_fa{index}_p"
        ta.clocks = [clock_p]
        ta.add_location("f0")
        ta.add_location("f1", invariant=[Constraint(clock_p, "<=", delay)])
        ta.add_location("fta_end", invariant=[Constraint(clock_p, "<=", delay)],
                        end=True)
        ta.add_edge("f0", "f1", Action(fire_channel, "?"), resets=[clock_p])
        ta.add_edge("f1", "fta_end", Action(out_channel, "!"),
                    guard=[Constraint(clock_p, "==", delay)])
        ta.add_edge("fta_end", "f0", None,
                    guard=[Constraint(clock_p, "==", delay)])
        self.network.add_automaton(ta)
        self.result.firing_tas_by_channel.setdefault(out_channel, []).append(ta.name)


def channel_name_for(node: Node, input_symbol: str) -> str:
    """The channel of the wire driving ``input_symbol`` of ``node``."""
    return channel_name(node.input_wires[input_symbol])


def translate_circuit(
    circuit: Circuit,
    include_inputs: bool = True,
    default_soak: int = DEFAULT_SOAK,
    until: Optional[float] = None,
) -> TranslationResult:
    """Translate a whole PyLSE circuit into a TA network.

    ``include_inputs`` controls whether environment TAs replaying the input
    generators' pulse schedules are added (needed for model checking;
    pointless for pure size statistics). ``until`` truncates input schedules
    at the given time.
    """
    compiled = compile_circuit(circuit, validate=False)
    network = TANetwork()
    result = TranslationResult(network=network)
    for wire in compiled.wires:
        network.channels.append(channel_name(wire))

    fire_counter = [0]
    for node in compiled.cells():
        if not isinstance(node.element, Transitional):
            raise PylseError(
                f"Cannot translate node {node.name}: Functional (hole) "
                "elements have no transition system; model checking covers "
                "the Transitional subset of a design"
            )
        _CellTranslator(node, network, result, fire_counter, default_soak).translate()

    if include_inputs:
        for node in compiled.input_nodes():
            _make_input_ta(network, node, until)

    for wid in compiled.output_wire_ids:
        _make_sink_ta(network, compiled.wires[wid])
    return result


def _make_input_ta(network: TANetwork, node: Node, until: Optional[float]) -> None:
    element: InGen = node.element  # type: ignore[assignment]
    wire = node.output_wires["out"]
    times = [t for t in element.times if until is None or t <= until]
    ta = TimedAutomaton(name=f"input_{channel_name(wire)}", initial="i0",
                        role="input")
    clock = f"c_in_{channel_name(wire)}"
    ta.clocks = [clock]
    ta.add_location("i0", invariant=(
        [Constraint(clock, "<=", scale_time(times[0]))] if times else []
    ))
    for k, t in enumerate(times):
        nxt_inv = (
            [Constraint(clock, "<=", scale_time(times[k + 1]))]
            if k + 1 < len(times)
            else []
        )
        ta.add_location(f"i{k + 1}", invariant=nxt_inv)
        ta.add_edge(
            f"i{k}", f"i{k + 1}", Action(channel_name(wire), "!"),
            guard=[Constraint(clock, "==", scale_time(t))],
        )
    network.add_automaton(ta)


def _make_sink_ta(network: TANetwork, wire: Wire) -> None:
    ta = TimedAutomaton(
        name=f"sink_{channel_name(wire)}", initial="s0", role="sink"
    )
    ta.add_location("s0")
    ta.add_edge("s0", "s0", Action(channel_name(wire), "?"))
    network.add_automaton(ta)
