"""HTTP/JSON transport for the yield service.

A deliberately small, stdlib-only shell over
:class:`~repro.serve.service.YieldService`: a ``ThreadingHTTPServer``
(one thread per connection, HTTP/1.1 keep-alive) whose handlers parse the
JSON body, dispatch to the service, and map failures onto structured
error responses::

    {"error": {"code": "unknown_design", "message": "..."}}

Response bodies are canonical JSON — ``sort_keys`` with compact
separators — so a cache hit is *byte-identical* to the cold miss that
populated it (``tests/test_serve.py``). The ``X-Repro-Cache`` header
(``hit``/``miss``) carries the per-request cache outcome out-of-band,
keeping it out of the cached bytes.

Endpoints (see docs/serving.md for the full schemas):

* ``POST /yield`` · ``POST /yield_curve`` · ``POST /critical_sigma``
* ``GET /healthz`` · ``GET /stats``
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Tuple

from ..core.errors import PylseError
from .service import RequestError, YieldService

#: Hard bound on request-body size; a yield request is a few KB of circuit
#: JSON at most, so anything larger is a client bug (or abuse).
MAX_BODY_BYTES = 16 * 1024 * 1024


class YieldHTTPServer(ThreadingHTTPServer):
    """The bound server; ``.service`` is the shared :class:`YieldService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: YieldService,
        quiet: bool = True,
    ):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    # One TCP segment per response instead of one per header line: without
    # these, Nagle + delayed ACK adds ~40 ms to every keep-alive response,
    # capping even all-hit traffic near 25 req/s per client. ``wbufsize=-1``
    # buffers the response (handle_one_request flushes after each request);
    # TCP_NODELAY makes the flush go out immediately.
    disable_nagle_algorithm = True
    wbufsize = -1

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: dict,
        cached: Optional[bool] = None,
    ) -> None:
        data = json.dumps(
            body, sort_keys=True, separators=(",", ":")
        ).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if cached is not None:
            self.send_header("X-Repro-Cache", "hit" if cached else "miss")
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": {"code": code, "message": message}})

    def _read_json_body(self) -> object:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length or 0)
        except ValueError:
            raise RequestError(
                f"invalid Content-Length {raw_length!r}"
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise RequestError(f"request body is not valid JSON: {err}") \
                from None

    def _handle(self, endpoint: str, call) -> None:
        """Run one endpoint call, record metrics, map errors to JSON."""
        service = self.server.service
        started = time.perf_counter()
        cached: Optional[bool] = None
        error = False
        try:
            body, cached = call()
        except RequestError as err:
            error = True
            self._send_error_json(err.status, err.code, str(err))
        except PylseError as err:
            # A library-level failure while measuring: the request was
            # well-formed but the design cannot be analyzed as asked.
            error = True
            self._send_error_json(400, "bad_request", str(err))
        except Exception as err:  # pragma: no cover - defensive
            error = True
            self._send_error_json(
                500, "internal", f"{type(err).__name__}: {err}"
            )
        else:
            self._send_json(200, body, cached=cached)
        service.metrics.record(
            endpoint, time.perf_counter() - started, cached=cached,
            error=error,
        )

    # -- methods -------------------------------------------------------
    def do_GET(self) -> None:
        service = self.server.service
        if self.path == "/healthz":
            self._handle("/healthz", lambda: (service.healthz(), None))
        elif self.path == "/stats":
            self._handle("/stats", lambda: (service.stats(), None))
        else:
            self._send_error_json(
                404, "not_found", f"no such endpoint: GET {self.path}"
            )

    def do_POST(self) -> None:
        service = self.server.service
        routes = {
            "/yield": service.yield_,
            "/yield_curve": service.yield_curve,
            "/critical_sigma": service.critical_sigma,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_error_json(
                404, "not_found", f"no such endpoint: POST {self.path}"
            )
            return

        def call():
            return handler(self._read_json_body())

        self._handle(self.path, call)


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[YieldService] = None,
    quiet: bool = True,
    **service_kwargs,
) -> YieldHTTPServer:
    """Bind (but do not start) a yield server; port 0 picks an ephemeral one.

    ``service_kwargs`` (``workers``, ``cache_size``,
    ``compiled_cache_size``, ``cache_dir``) construct the service when one
    is not passed in. The caller drives ``serve_forever()`` — or uses
    :func:`serving` for a background-thread lifetime.
    """
    if service is None:
        service = YieldService(**service_kwargs)
    return YieldHTTPServer((host, port), service, quiet=quiet)


@contextlib.contextmanager
def serving(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[YieldService] = None,
    quiet: bool = True,
    **service_kwargs,
) -> Iterator[YieldHTTPServer]:
    """A live server on a background thread, shut down on exit.

    The test suite, the benchmark harness, and ad-hoc scripts all start
    their servers through this::

        with serving(port=0, workers=1) as server:
            port = server.server_address[1]
            ...
    """
    server = run_server(host, port, service=service, quiet=quiet,
                        **service_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
