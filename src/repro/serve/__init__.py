"""``repro.serve``: the long-lived yield-analysis service.

Turns the Monte-Carlo yield API (:func:`repro.core.montecarlo.measure_yield`
and friends) into an HTTP/JSON service with a structural-hash result cache:
identical designs — whatever name or client they arrive from — are measured
once and served from cache afterwards, and concurrent identical requests
coalesce onto a single computation. Start it with::

    python -m repro serve --port 8080 --workers 4 --cache-size 4096

and drive it with plain JSON::

    curl -s localhost:8080/yield -d '{"design": "Min-Max", "sigma": 1.0}'

See docs/serving.md for the API reference and cache-key semantics, and
``tools/loadtest.py`` for a closed-loop load generator against a running
instance.
"""

# LRUCache/MISSING/hit_rate live in repro.cache now; re-exported here for
# backward compatibility (repro.serve.cache is a deprecated shim).
from ..cache import MISSING, LRUCache, hit_rate
from .http import YieldHTTPServer, run_server, serving
from .service import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_COMPILED_CACHE_SIZE,
    SERVE_VERSION,
    BadRequest,
    RequestError,
    ResolvedDesign,
    UnknownDesign,
    YieldService,
)

__all__ = [
    "BadRequest",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_COMPILED_CACHE_SIZE",
    "LRUCache",
    "MISSING",
    "RequestError",
    "ResolvedDesign",
    "SERVE_VERSION",
    "UnknownDesign",
    "YieldHTTPServer",
    "YieldService",
    "hit_rate",
    "run_server",
    "serving",
]
