"""Deprecated re-export shim: this module moved to :mod:`repro.cache.lru`.

The LRU cache started life here as a private helper of the yield service
and was promoted to the shared :mod:`repro.cache` subsystem (the explorer
and the reachability lint use the same implementation, and the tiered
persistent store builds on it). Import :class:`~repro.cache.lru.LRUCache`,
:data:`~repro.cache.lru.MISSING`, and :func:`~repro.cache.lru.hit_rate`
from :mod:`repro.cache` instead; this shim will be removed once nothing
imports it.
"""

from __future__ import annotations

import warnings

from ..cache.lru import LRUCache, MISSING, hit_rate

warnings.warn(
    "repro.serve.cache has moved to repro.cache.lru; import LRUCache, "
    "MISSING, and hit_rate from repro.cache instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["LRUCache", "MISSING", "hit_rate"]
