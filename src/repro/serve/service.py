"""The yield-analysis service: cached, coalesced Monte-Carlo measurements.

:class:`YieldService` is the transport-independent core of ``python -m
repro serve`` (the HTTP layer in :mod:`repro.serve.http` is a thin shell
around it). A request names a design — either a registry entry (``{"design":
"Min-Max"}``) or a full serialized circuit (``{"circuit": {...}}``, the
``repro-circuit-v1`` format of :mod:`repro.core.serialize`) — plus the
measurement parameters ``sigma``, ``n_seeds``, ``seed0``, and ``batch``.

Two caches make repeated analysis of identical designs nearly free:

* the **compiled cache** maps a circuit's :func:`structural_hash` to its
  resolved form — a picklable factory, the noiseless-baseline
  :class:`~repro.exp.registry.PulseCountPredicate`, and the digest — so a
  re-submitted design skips elaboration, compilation, and the baseline
  simulation;
* the **result store** — a :class:`repro.cache.TieredCache` — maps
  :func:`repro.core.ir.result_cache_key` — the ``(structural_hash, sigma,
  n_seeds, seed0, batch)`` tuple — to the served result. Identical designs
  submitted by different clients (or the same design under a different
  name) hit the same entry, and a ``/critical_sigma`` bisection populates
  the same cache its ``/yield`` siblings read. With ``cache_dir`` set the
  store gains a persistent disk tier (:mod:`repro.cache.disk`): results
  survive restarts, and an ``repro explore --cache-dir`` sweep pointed at
  the same directory pre-warms the service (see docs/caching.md).

Computation is **single-lane**: one re-entrant lock serializes circuit
elaboration (the ambient working circuit is process-global) and every
engine run. Cache hits bypass the lock entirely, which is where the warm
throughput comes from (see docs/performance.md). Concurrent identical
requests *coalesce*: the first to miss takes the lock and computes;
followers queue on the lock, re-check the cache, and are served the
leader's freshly cached result — exactly one engine computation per
distinct key (``tests/test_serve.py`` locks this). Heavy sweeps scale out
via the shared persistent :class:`~repro.core.parallel.YieldEngine`
process pool (``workers > 1``), whose ``run`` is itself thread-safe.

Every served result is bit-identical to a direct
:func:`~repro.core.montecarlo.measure_yield` call with the same
parameters — the determinism contract of the Monte-Carlo backends is what
makes the cache key sound (``tests/test_serve_differential.py``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.errors import PylseError
from ..core.ir import compile_circuit, result_cache_key
from ..core.montecarlo import critical_sigma, measure_yield
from ..core.parallel import resolve_workers
from ..core.serialize import (
    SerializedCircuitFactory,
    circuit_from_json,
    yield_result_to_jsonable,
)
from ..core.simulation import Simulation
from ..cache import (
    DiskCache,
    LRUCache,
    MISSING,
    RESULTS_NAMESPACE,
    TieredCache,
)
from ..exp.registry import PulseCountPredicate, RegistryFactory, registry
from ..obs.serving import ServiceMetrics, cache_tiers_jsonable

#: Version tag reported by ``GET /healthz``.
SERVE_VERSION = "repro-serve-v1"

#: Default capacities (overridable via ``--cache-size`` and
#: ``--compiled-cache-size`` on the CLI).
DEFAULT_CACHE_SIZE = 1024
DEFAULT_COMPILED_CACHE_SIZE = 128

#: Request-parameter guard rails: a public endpoint must bound the work a
#: single request can demand.
MAX_SEEDS = 100_000
MAX_SIGMAS = 128
MAX_ITERATIONS = 32


class RequestError(PylseError):
    """A client error with an HTTP status and a stable machine-readable code."""

    status = 400
    code = "bad_request"


class BadRequest(RequestError):
    """Malformed payload, bad parameter, or an unserviceable circuit."""


class UnknownDesign(RequestError):
    """The named design is not in the registry."""

    status = 404
    code = "unknown_design"


@dataclass(frozen=True)
class ResolvedDesign:
    """A design reduced to what measurement needs, keyed by its digest."""

    digest: str
    factory: Callable
    predicate: Callable
    #: Registry name when resolved by name, None for submitted circuits.
    design: Optional[str]


class _YieldView:
    """Duck-typed stand-in for a YieldResult inside cached bisections."""

    __slots__ = ("yield_fraction",)

    def __init__(self, yield_fraction: float):
        self.yield_fraction = yield_fraction


def _require_mapping(payload) -> dict:
    if not isinstance(payload, dict):
        raise BadRequest(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _get_float(payload: dict, key: str, default: float, *,
               lo: Optional[float] = None,
               hi: Optional[float] = None) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{key!r} must be a number, got {value!r}")
    value = float(value)
    if value != value:  # NaN never equals itself — reject, it poisons keys
        raise BadRequest(f"{key!r} must not be NaN")
    if lo is not None and value < lo:
        raise BadRequest(f"{key!r} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise BadRequest(f"{key!r} must be <= {hi}, got {value}")
    return value


def _get_int(payload: dict, key: str, default: int, *,
             lo: Optional[int] = None,
             hi: Optional[int] = None) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{key!r} must be an integer, got {value!r}")
    if lo is not None and value < lo:
        raise BadRequest(f"{key!r} must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise BadRequest(f"{key!r} must be <= {hi}, got {value}")
    return value


def _get_batch(payload: dict) -> Union[int, str, None]:
    batch = payload.get("batch")
    if batch in (None, "auto"):
        return batch
    if isinstance(batch, bool) or not isinstance(batch, int) or batch < 0:
        raise BadRequest(
            f"'batch' must be a non-negative integer, 'auto', or null, "
            f"got {batch!r}"
        )
    return batch


class YieldService:
    """See the module docstring; one instance serves one process."""

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        compiled_cache_size: int = DEFAULT_COMPILED_CACHE_SIZE,
        cache_dir=None,
    ):
        self.workers = resolve_workers(workers)
        #: Single compute lane: elaboration mutates the process-global
        #: working circuit and the shared YieldEngine runs one sweep at a
        #: time, so all cold work serializes here. Re-entrant because a
        #: /critical_sigma computation issues nested cached measurements.
        self._compute_lock = threading.RLock()
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.result_cache = LRUCache(cache_size)
        #: The tiered store fronting every measurement: the LRU above plus
        #: (with ``cache_dir``) the persistent disk tier that survives
        #: restarts and is shared with ``repro explore`` sweeps. The
        #: served documents are already canonical JSON, so no codec is
        #: needed; the compute lock doubles as the coalescing lane.
        self.result_store = TieredCache(
            self.result_cache,
            None if cache_dir is None
            else DiskCache(cache_dir, RESULTS_NAMESPACE),
            lock=self._compute_lock,
        )
        self.compiled_cache = LRUCache(compiled_cache_size)
        self.metrics = ServiceMetrics()
        #: Engine computations actually performed (cache misses that ran).
        self.computations = 0
        self.started = time.time()
        #: Registry-name -> digest memo so the hot path for named designs
        #: never elaborates. Entries are only ever added (the registry is
        #: static); the compiled cache holds the evictable heavy part.
        self._design_digest: Dict[str, str] = {}

    @property
    def coalesced(self) -> int:
        """Requests that missed, queued on the compute lock, and were then
        served another request's freshly cached computation."""
        return self.result_store.coalesced

    # -- design resolution ---------------------------------------------
    def _resolve(self, payload: dict) -> ResolvedDesign:
        has_design = "design" in payload
        has_circuit = "circuit" in payload
        if has_design == has_circuit:
            raise BadRequest(
                "specify exactly one of 'design' (a registry name) or "
                "'circuit' (a repro-circuit-v1 document)"
            )
        if has_design:
            return self._resolve_design(payload["design"])
        return self._resolve_circuit(payload["circuit"])

    def _resolve_design(self, name) -> ResolvedDesign:
        if not isinstance(name, str):
            raise BadRequest(f"'design' must be a string, got {name!r}")
        digest = self._design_digest.get(name)
        if digest is not None:
            resolved = self.compiled_cache.get(digest)
            if resolved is not MISSING:
                return resolved
        with self._compute_lock:
            # Re-check: another thread may have resolved it while we queued.
            digest = self._design_digest.get(name)
            if digest is not None:
                resolved = self.compiled_cache.get(digest)
                if resolved is not MISSING:
                    return resolved
            if not any(entry.name == name for entry in registry()):
                raise UnknownDesign(
                    f"unknown design {name!r}; GET /healthz lists the "
                    "registry size, `python -m repro list` the names"
                )
            factory = RegistryFactory(name)
            return self._build_resolved(factory, factory(), design=name)

    def _resolve_circuit(self, spec) -> ResolvedDesign:
        if isinstance(spec, str):
            text = spec
        elif isinstance(spec, dict):
            text = json.dumps(spec)
        else:
            raise BadRequest(
                "'circuit' must be a repro-circuit-v1 object or its JSON "
                f"text, got {type(spec).__name__}"
            )
        with self._compute_lock:
            try:
                circuit = circuit_from_json(text)
            except RequestError:
                raise
            except PylseError as err:
                raise BadRequest(f"invalid circuit: {err}") from None
            return self._build_resolved(
                SerializedCircuitFactory(text), circuit, design=None
            )

    def _build_resolved(
        self, factory: Callable, circuit, design: Optional[str]
    ) -> ResolvedDesign:
        """Compile, check the compiled cache, derive the baseline predicate.

        Called with the compute lock held and a freshly elaborated circuit.
        """
        try:
            digest = compile_circuit(circuit).structural_hash
        except PylseError as err:
            raise BadRequest(f"circuit failed validation: {err}") from None
        cached = self.compiled_cache.get(digest)
        if cached is not MISSING:
            return cached
        try:
            baseline = Simulation(circuit).simulate()
        except PylseError as err:
            raise BadRequest(
                f"baseline (sigma=0) simulation failed: {err}"
            ) from None
        resolved = ResolvedDesign(
            digest=digest,
            factory=factory,
            predicate=PulseCountPredicate(baseline),
            design=design,
        )
        self.compiled_cache.put(digest, resolved)
        if design is not None:
            self._design_digest[design] = digest
        return resolved

    # -- cached measurement --------------------------------------------
    def _cached(
        self, key, compute: Callable[[], object]
    ) -> Tuple[object, bool]:
        """Serve ``key`` from the result store, computing (once) on miss.

        Returns ``(value, served_from_cache)``. The store owns the
        double-checked-lock coalescing this service pioneered (see
        :meth:`repro.cache.tiered.TieredCache.get_or_compute`): concurrent
        misses on one key queue on the compute lock, find the leader's
        result on the re-check, and ``compute`` runs exactly once per
        distinct key (absent eviction churn).
        """
        return self.result_store.get_or_compute(key, compute)

    def _measure(
        self,
        resolved: ResolvedDesign,
        sigma: float,
        n_seeds: int,
        seed0: int,
        batch: Union[int, str, None],
    ) -> Tuple[dict, bool]:
        key = result_cache_key(
            resolved.digest, sigma=sigma, n_seeds=n_seeds, seed0=seed0,
            batch=batch,
        )

        def compute() -> dict:
            result = measure_yield(
                resolved.factory,
                resolved.predicate,
                sigma,
                seeds=range(seed0, seed0 + n_seeds),
                workers=self.workers,
                batch=batch,
            )
            self.computations += 1
            return yield_result_to_jsonable(result)

        return self._cached(key, compute)

    # -- endpoints ------------------------------------------------------
    def yield_(self, payload) -> Tuple[dict, bool]:
        """``POST /yield``: one cached yield measurement."""
        payload = _require_mapping(payload)
        resolved = self._resolve(payload)
        sigma = _get_float(payload, "sigma", 0.5, lo=0.0)
        n_seeds = _get_int(payload, "n_seeds", 50, lo=1, hi=MAX_SEEDS)
        seed0 = _get_int(payload, "seed0", 0, lo=0)
        batch = _get_batch(payload)
        result, cached = self._measure(resolved, sigma, n_seeds, seed0, batch)
        return {
            "design": resolved.design,
            "structural_hash": resolved.digest,
            "result": result,
        }, cached

    def yield_curve(self, payload) -> Tuple[dict, bool]:
        """``POST /yield_curve``: one cached measurement per sigma.

        Each point is cached under its own measurement key, so a curve
        re-uses (and back-fills) the entries ``/yield`` requests see.
        """
        payload = _require_mapping(payload)
        resolved = self._resolve(payload)
        sigmas = payload.get("sigmas")
        if (
            not isinstance(sigmas, list)
            or not sigmas
            or len(sigmas) > MAX_SIGMAS
        ):
            raise BadRequest(
                f"'sigmas' must be a non-empty list of at most "
                f"{MAX_SIGMAS} numbers, got {sigmas!r}"
            )
        n_seeds = _get_int(payload, "n_seeds", 25, lo=1, hi=MAX_SEEDS)
        seed0 = _get_int(payload, "seed0", 0, lo=0)
        batch = _get_batch(payload)
        results: List[dict] = []
        all_cached = True
        for index, sigma in enumerate(sigmas):
            if isinstance(sigma, bool) or not isinstance(sigma, (int, float)):
                raise BadRequest(
                    f"'sigmas[{index}]' must be a number, got {sigma!r}"
                )
            if not float(sigma) >= 0.0:  # also rejects NaN
                raise BadRequest(
                    f"'sigmas[{index}]' must be >= 0, got {sigma!r}"
                )
            result, cached = self._measure(
                resolved, float(sigma), n_seeds, seed0, batch
            )
            results.append(result)
            all_cached = all_cached and cached
        return {
            "design": resolved.design,
            "structural_hash": resolved.digest,
            "sigmas": [float(s) for s in sigmas],
            "results": results,
        }, all_cached

    def critical_sigma(self, payload) -> Tuple[dict, bool]:
        """``POST /critical_sigma``: cached robustness bisection.

        The scalar answer is cached under an endpoint-level key, and every
        bisection sample flows through the shared measurement cache (the
        ``measure=`` hook of :func:`repro.core.montecarlo.critical_sigma`),
        so a later ``/yield`` at a probed sigma is a hit.
        """
        payload = _require_mapping(payload)
        resolved = self._resolve(payload)
        target = _get_float(payload, "target_yield", 0.9)
        if not 0.0 < target <= 1.0:
            raise BadRequest(
                f"'target_yield' must be in (0, 1], got {target}"
            )
        sigma_hi = _get_float(payload, "sigma_hi", 8.0)
        if not sigma_hi > 0.0:
            raise BadRequest(f"'sigma_hi' must be > 0, got {sigma_hi}")
        iterations = _get_int(payload, "iterations", 6, lo=1,
                              hi=MAX_ITERATIONS)
        n_seeds = _get_int(payload, "n_seeds", 20, lo=1, hi=MAX_SEEDS)
        seed0 = _get_int(payload, "seed0", 0, lo=0)
        batch = _get_batch(payload)
        measure_key = result_cache_key(
            resolved.digest, sigma=0.0, n_seeds=n_seeds, seed0=seed0,
            batch=batch,
        )
        key = ("critical_sigma", measure_key[1:], target, sigma_hi,
               iterations)

        def cached_measure(factory, predicate, sigma, seeds, **_kwargs):
            seeds = list(seeds)
            jsonable, _ = self._measure(
                resolved, sigma, len(seeds), seeds[0], batch
            )
            return _YieldView(jsonable["yield"])

        def compute() -> dict:
            return {
                "critical_sigma": critical_sigma(
                    resolved.factory,
                    resolved.predicate,
                    target_yield=target,
                    sigma_hi=sigma_hi,
                    seeds=range(seed0, seed0 + n_seeds),
                    iterations=iterations,
                    workers=self.workers,
                    batch=batch,
                    measure=cached_measure,
                )
            }

        value, cached = self._cached(key, compute)
        return {
            "design": resolved.design,
            "structural_hash": resolved.digest,
            "target_yield": target,
            "sigma_hi": sigma_hi,
            "iterations": iterations,
            "n_seeds": n_seeds,
            "seed0": seed0,
            **value,
        }, cached

    # -- introspection --------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz``: liveness plus the basics a probe wants."""
        return {
            "status": "ok",
            "version": SERVE_VERSION,
            "uptime_s": round(time.time() - self.started, 3),
            "designs": len(registry()),
            "workers": self.workers,
        }

    def stats(self) -> dict:
        """``GET /stats``: caches, computations, per-endpoint counters."""
        payload = self.metrics.to_jsonable()
        return {
            "format": payload["format"],
            "uptime_s": round(time.time() - self.started, 3),
            "workers": self.workers,
            "computations": self.computations,
            "coalesced": self.coalesced,
            "cache_dir": self.cache_dir,
            "cache": cache_tiers_jsonable(
                self.result_store, self.compiled_cache
            ),
            "endpoints": payload["endpoints"],
        }
