"""Per-cell simulation metrics with deterministic merge semantics.

A :class:`SimMetrics` instance accumulates, per placed cell instance:

* dispatch groups processed, input pulses consumed, output pulses fired;
* transitions taken, counted by canonical name
  (:attr:`repro.core.machine.Transition.label`);
* timing violations raised during dispatch;
* a histogram of resolved firing delays (:class:`DelayHistogram`).

plus run-global counters (pulses processed, groups, circuit-input pulses,
max pending-heap depth).

Counters are plain integer addition (and ``max`` for heap depth); delay
histogram totals are float sums, whose value depends on association order.
The parallel Monte-Carlo backend therefore ships *per-seed* metrics back
from the workers and folds them in seed order at the parent — the exact
association the sequential backend uses — so parallel and sequential
sweeps over the same seed list produce bit-identical metrics. The JSON
form (:meth:`SimMetrics.to_jsonable`) sorts histogram bins and
cell/transition keys, so equal metrics always serialize to equal text.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

#: Default width (ps) of firing-delay histogram bins.
DEFAULT_BIN_WIDTH = 0.5


class DelayHistogram:
    """Fixed-width binned histogram of firing delays."""

    __slots__ = ("bin_width", "bins", "count", "total", "min", "max")

    def __init__(self, bin_width: float = DEFAULT_BIN_WIDTH):
        if not bin_width > 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.bin_width = bin_width
        self.bins: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, delay: float) -> None:
        index = math.floor(delay / self.bin_width)
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1
        self.total += delay
        if self.min is None or delay < self.min:
            self.min = delay
        if self.max is None or delay > self.max:
            self.max = delay

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def __eq__(self, other) -> bool:
        # Value equality, so containers of metrics (CellMetrics,
        # SimMetrics, YieldResult.stats) compare by content across
        # independently-collected runs.
        if not isinstance(other, DelayHistogram):
            return NotImplemented
        return (
            self.bin_width == other.bin_width
            and self.bins == other.bins
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def merge(self, other: "DelayHistogram") -> None:
        if other.bin_width != self.bin_width:
            raise ValueError(
                f"cannot merge histograms with bin widths {self.bin_width} "
                f"and {other.bin_width}"
            )
        for index, n in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    def to_jsonable(self) -> dict:
        return {
            "bin_width": self.bin_width,
            "bins": {str(k): self.bins[k] for k in sorted(self.bins)},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "DelayHistogram":
        hist = cls(bin_width=payload["bin_width"])
        hist.bins = {int(k): v for k, v in payload["bins"].items()}
        hist.count = payload["count"]
        hist.total = payload["total"]
        hist.min = payload["min"]
        hist.max = payload["max"]
        return hist


@dataclass
class CellMetrics:
    """Counters for one placed cell instance (one node)."""

    cell: str
    groups: int = 0
    pulses_in: int = 0
    pulses_out: int = 0
    violations: int = 0
    transitions: Dict[str, int] = field(default_factory=dict)
    delays: DelayHistogram = field(default_factory=DelayHistogram)

    def merge(self, other: "CellMetrics") -> None:
        self.groups += other.groups
        self.pulses_in += other.pulses_in
        self.pulses_out += other.pulses_out
        self.violations += other.violations
        for name, n in other.transitions.items():
            self.transitions[name] = self.transitions.get(name, 0) + n
        self.delays.merge(other.delays)

    def to_jsonable(self) -> dict:
        return {
            "cell": self.cell,
            "groups": self.groups,
            "pulses_in": self.pulses_in,
            "pulses_out": self.pulses_out,
            "violations": self.violations,
            "transitions": {
                k: self.transitions[k] for k in sorted(self.transitions)
            },
            "delay_histogram": self.delays.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "CellMetrics":
        return cls(
            cell=payload["cell"],
            groups=payload["groups"],
            pulses_in=payload["pulses_in"],
            pulses_out=payload["pulses_out"],
            violations=payload["violations"],
            transitions=dict(payload["transitions"]),
            delays=DelayHistogram.from_jsonable(payload["delay_histogram"]),
        )


class SimMetrics:
    """Whole-simulation metrics: global counters + per-cell breakdown."""

    def __init__(self, delay_bin_width: float = DEFAULT_BIN_WIDTH):
        self.delay_bin_width = delay_bin_width
        self.cells: Dict[str, CellMetrics] = {}
        self.pulses_processed = 0
        self.groups = 0
        self.input_pulses = 0
        self.max_heap_depth = 0
        self.runs = 1

    def __eq__(self, other) -> bool:
        # Value equality (like the dataclass CellMetrics), so aggregates
        # from different backends compare by content.
        if not isinstance(other, SimMetrics):
            return NotImplemented
        return (
            self.delay_bin_width == other.delay_bin_width
            and self.cells == other.cells
            and self.pulses_processed == other.pulses_processed
            and self.groups == other.groups
            and self.input_pulses == other.input_pulses
            and self.max_heap_depth == other.max_heap_depth
            and self.runs == other.runs
        )

    # ------------------------------------------------------------------
    def cell(self, node_name: str, cell_name: str) -> CellMetrics:
        entry = self.cells.get(node_name)
        if entry is None:
            entry = self.cells[node_name] = CellMetrics(
                cell=cell_name,
                delays=DelayHistogram(self.delay_bin_width),
            )
        return entry

    @classmethod
    def fold(cls, items: "Sequence[SimMetrics]") -> Optional["SimMetrics"]:
        """Left-to-right fold into a fresh accumulator (None if empty).

        The accumulator starts zeroed (``runs = 0``) so the aggregate's
        run count equals the number of folded metrics, and — unlike
        merging into ``items[0]`` — none of the inputs is mutated. Since
        ``0.0 + x == x`` exactly, folding into a zeroed accumulator is
        bit-identical to the old mutate-the-first-item merge; the fixed
        left-to-right association is what the Monte-Carlo backends rely
        on for sequential/parallel stat equality (they always fold in
        seed order).
        """
        items = list(items)
        if not items:
            return None
        acc = cls(delay_bin_width=items[0].delay_bin_width)
        acc.runs = 0
        for metrics in items:
            acc.merge(metrics)
        return acc

    def merge(self, other: "SimMetrics") -> None:
        """Fold another run's metrics into this one (sums; max for depth)."""
        for name, theirs in other.cells.items():
            mine = self.cells.get(name)
            if mine is None:
                self.cells[name] = mine = CellMetrics(
                    cell=theirs.cell,
                    delays=DelayHistogram(theirs.delays.bin_width),
                )
            mine.merge(theirs)
        self.pulses_processed += other.pulses_processed
        self.groups += other.groups
        self.input_pulses += other.input_pulses
        self.max_heap_depth = max(self.max_heap_depth, other.max_heap_depth)
        self.runs += other.runs

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        """Schema ``repro-obs-metrics-v1`` (see docs/observability.md)."""
        return {
            "format": "repro-obs-metrics-v1",
            "runs": self.runs,
            "global": {
                "pulses_processed": self.pulses_processed,
                "groups": self.groups,
                "input_pulses": self.input_pulses,
                "max_heap_depth": self.max_heap_depth,
            },
            "cells": {
                name: self.cells[name].to_jsonable()
                for name in sorted(self.cells)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_jsonable(), indent=indent)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "SimMetrics":
        if payload.get("format") != "repro-obs-metrics-v1":
            raise ValueError(
                f"not a repro-obs-metrics-v1 payload: {payload.get('format')!r}"
            )
        metrics = cls()
        metrics.runs = payload["runs"]
        g = payload["global"]
        metrics.pulses_processed = g["pulses_processed"]
        metrics.groups = g["groups"]
        metrics.input_pulses = g["input_pulses"]
        metrics.max_heap_depth = g["max_heap_depth"]
        for name, cell in payload["cells"].items():
            metrics.cells[name] = CellMetrics.from_jsonable(cell)
        return metrics

    @classmethod
    def from_json(cls, text: str) -> "SimMetrics":
        return cls.from_jsonable(json.loads(text))

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable table for the ``--stats`` CLI flags."""
        lines = [
            "simulation metrics "
            f"({self.runs} run{'s' if self.runs != 1 else ''}):",
            f"  pulses processed: {self.pulses_processed}, "
            f"dispatch groups: {self.groups}, "
            f"input pulses: {self.input_pulses}, "
            f"max heap depth: {self.max_heap_depth}",
        ]
        if not self.cells:
            lines.append("  (no cells dispatched)")
            return "\n".join(lines)
        name_w = max(len(n) for n in self.cells)
        cell_w = max(len(c.cell) for c in self.cells.values())
        header = (
            f"  {'node':<{name_w}}  {'cell':<{cell_w}}  "
            f"{'groups':>6}  {'in':>5}  {'out':>5}  {'viol':>4}  "
            f"{'mean delay':>10}  transitions"
        )
        lines.append(header)
        for name in sorted(self.cells):
            c = self.cells[name]
            mean = c.delays.mean
            mean_s = f"{mean:.2f}" if mean is not None else "-"
            trans = ", ".join(
                f"{label} x{c.transitions[label]}"
                for label in sorted(c.transitions)
            ) or "-"
            lines.append(
                f"  {name:<{name_w}}  {c.cell:<{cell_w}}  "
                f"{c.groups:>6}  {c.pulses_in:>5}  {c.pulses_out:>5}  "
                f"{c.violations:>4}  {mean_s:>10}  {trans}"
            )
        return "\n".join(lines)
