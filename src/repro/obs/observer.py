"""The ``Observer``: the opt-in hook object the simulator drains into.

Attach one via ``Simulation.simulate(observer=Observer())`` and both drain
loops (fast and general) report every circuit-input pulse, dispatch group,
fired pulse, and timing violation to it. The observer composes the two
collection back-ends:

* :class:`~repro.obs.provenance.ProvenanceGraph` — the causal DAG of
  pulses (``provenance=True``);
* :class:`~repro.obs.metrics.SimMetrics` — per-cell counters and delay
  histograms (``metrics=True``).

Either can be switched off independently; Monte-Carlo sweeps, for
example, collect metrics only (the graph grows with pulse count).

The hook-call protocol is identical in ``_drain_fast`` and
``_drain_general`` — same hooks, same order, same arguments — which is
what makes the two loops produce identical provenance graphs and metrics
for the same stimulus (property-tested in
``tests/test_differential.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from .metrics import DEFAULT_BIN_WIDTH, SimMetrics
from .provenance import (
    INPUT_CELL,
    ProvenanceGraph,
    format_chain,
    format_group_chain,
)

#: An emitted firing as reported by the drain loops:
#: (output port, wire label, absolute time, resolved delay,
#:  dest node id, dest port, pushed-to-heap flag).
EmitRecord = Tuple[str, str, float, float, int, str, bool]


class Observer:
    """Collects provenance and/or metrics from one or more simulations.

    An observer may be reused across ``simulate()`` calls; counters and
    the graph keep accumulating (``metrics.runs`` counts the calls).
    Create a fresh observer per run when per-run numbers are wanted.
    """

    def __init__(
        self,
        provenance: bool = True,
        metrics: bool = True,
        delay_bin_width: float = DEFAULT_BIN_WIDTH,
    ):
        if not provenance and not metrics:
            raise PylseError(
                "Observer with provenance=False and metrics=False would "
                "observe nothing; enable at least one collector"
            )
        self.graph: Optional[ProvenanceGraph] = (
            ProvenanceGraph() if provenance else None
        )
        self.metrics: Optional[SimMetrics] = (
            SimMetrics(delay_bin_width) if metrics else None
        )
        self._runs_seen = 0

    # ------------------------------------------------------------------
    # hooks called by the simulation drain loops
    # ------------------------------------------------------------------
    def begin(self, circuit) -> None:
        """Called once at ``simulate()`` start, before the heap is seeded."""
        self._runs_seen += 1
        if self.metrics is not None and self._runs_seen > 1:
            self.metrics.runs += 1

    def on_input(
        self, node_name: str, label: str, time: float, key: int, port: str
    ) -> None:
        """A circuit-input pulse was seeded (``key == -1``: no consumer)."""
        if self.metrics is not None:
            self.metrics.input_pulses += 1
        graph = self.graph
        if graph is not None:
            pid = graph.new_pulse(label, time, node_name, INPUT_CELL, "out")
            if key >= 0:
                graph.register_pending(key, port, time, pid)

    def group_parents(
        self, key: int, ports: Sequence[str], time: float
    ) -> Tuple[int, ...]:
        """Resolve a popped group to the pids it consumes (pre-dispatch)."""
        if self.graph is None:
            return ()
        return self.graph.take_parents(key, ports, time)

    def record_group(
        self,
        node_name: str,
        cell_name: str,
        ports: Sequence[str],
        time: float,
        tlabels: Tuple[str, ...],
        emitted: List[EmitRecord],
        parents: Tuple[int, ...],
    ) -> Optional[List[int]]:
        """A dispatch group completed, firing ``emitted`` pulses.

        Returns the provenance ids of the fired pulses (after duplicate
        collapse) when provenance is enabled, else None.
        """
        metrics = self.metrics
        if metrics is not None:
            cell = metrics.cell(node_name, cell_name)
            cell.groups += 1
            cell.pulses_in += len(ports)
            cell.pulses_out += len(emitted)
            metrics.groups += 1
            transitions = cell.transitions
            for label in tlabels:
                transitions[label] = transitions.get(label, 0) + 1
            delays = cell.delays
            for _port, _label, _t, delay, _key, _dport, _pushed in emitted:
                delays.add(delay)
        graph = self.graph
        if graph is None:
            return None
        pids: List[int] = []
        for out_port, label, t, _delay, key, dport, pushed in emitted:
            pid = graph.new_pulse(
                label, t, node_name, cell_name, out_port, parents, tlabels
            )
            if pushed:
                pid = graph.register_pending(key, dport, t, pid)
            pids.append(pid)
        return pids

    def on_violation(
        self,
        node_name: str,
        cell_name: str,
        ports: Sequence[str],
        time: float,
        parents: Tuple[int, ...],
        err: Exception,
    ) -> Optional[str]:
        """Dispatch raised; returns the group's causal chain (or None)."""
        metrics = self.metrics
        if metrics is not None:
            cell = metrics.cell(node_name, cell_name)
            # The failed group is counted so violation rates have a
            # denominator; Simulation.activity, by contrast, only counts
            # groups that dispatched successfully.
            cell.groups += 1
            cell.pulses_in += len(ports)
            cell.violations += 1
            metrics.groups += 1
        if self.graph is None:
            return None
        return format_group_chain(
            self.graph, node_name, cell_name, tuple(ports), time, parents
        )

    def end(self, max_heap_depth: int, pulses_processed: int) -> None:
        """Called (also on the error path) when the drain finishes."""
        if self.metrics is not None:
            self.metrics.max_heap_depth = max(
                self.metrics.max_heap_depth, max_heap_depth
            )
            self.metrics.pulses_processed += pulses_processed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def chain(self, label: str, occurrence: int = -1) -> str:
        """Causal chain of the n-th pulse on a wire (default: the last)."""
        if self.graph is None:
            raise PylseError(
                "This observer was created with provenance=False; "
                "no causal chains were recorded"
            )
        return format_chain(self.graph, self.graph.pulse_at(label, occurrence))
