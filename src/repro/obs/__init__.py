"""``repro.obs``: opt-in simulation observability.

Pulse provenance (why did this pulse arrive when it did?) and per-cell
metrics (what did each cell do?), collected by attaching an
:class:`Observer` to a simulation::

    from repro import Simulation
    from repro.obs import Observer

    obs = Observer()                       # provenance + metrics
    events = Simulation(circuit).simulate(observer=obs)
    print(obs.chain("q"))                  # causal chain of q's last pulse
    print(obs.metrics.render())            # per-cell counter table
    payload = obs.metrics.to_json()        # repro-obs-metrics-v1

With no observer attached the simulator's fast path is unchanged (the
bitonic-8 guard in ``tools/bench_guard.py`` holds the disabled-tracing
overhead under 5%). See docs/observability.md for the provenance format,
the metrics JSON schema, and CLI usage (``python -m repro trace --stats``).
"""

from .metrics import DEFAULT_BIN_WIDTH, CellMetrics, DelayHistogram, SimMetrics
from .observer import Observer
from .provenance import (
    ProvenanceGraph,
    PulseRecord,
    format_chain,
    format_group_chain,
)
from .serving import (
    LATENCY_WINDOW,
    STATS_FORMAT,
    EndpointMetrics,
    LatencyStats,
    ServiceMetrics,
)

__all__ = [
    "CellMetrics",
    "DEFAULT_BIN_WIDTH",
    "DelayHistogram",
    "EndpointMetrics",
    "LATENCY_WINDOW",
    "LatencyStats",
    "Observer",
    "ProvenanceGraph",
    "PulseRecord",
    "STATS_FORMAT",
    "ServiceMetrics",
    "SimMetrics",
    "format_chain",
    "format_group_chain",
]
