"""Per-endpoint serving metrics for the yield-analysis service.

The HTTP layer of :mod:`repro.serve` records one sample per handled
request: which endpoint, how long it took, whether it was served from the
structural-hash result cache, and whether it errored. The aggregate is
surfaced verbatim on ``GET /stats`` (see docs/serving.md) and consumed by
``tools/loadtest.py`` to compute cache hit rates.

Latency is tracked two ways: exact running aggregates (count, total, min,
max — cheap and lossless) plus a bounded window of recent samples from
which the nearest-rank p50/p95/p99 are computed on demand. The window
keeps ``/stats`` O(1)-memory under sustained load; quantiles therefore
describe *recent* behavior, which is what an operator dashboard wants.

Everything here is thread-safe: one :class:`ServiceMetrics` is shared by
every request-handler thread of the ``ThreadingHTTPServer``.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Optional

#: Format tag of the ``/stats`` endpoint block (bump on shape changes).
STATS_FORMAT = "repro-serve-stats-v1"

#: Recent-latency window per endpoint (samples kept for quantiles).
LATENCY_WINDOW = 4096

#: Quantiles reported per endpoint, as (json key, q) pairs.
_QUANTILES = (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99))


class LatencyStats:
    """Exact count/total/min/max plus windowed nearest-rank quantiles."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "window")

    def __init__(self, window: int = LATENCY_WINDOW):
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self.window: Deque[float] = deque(maxlen=window)

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if self.min_s is None or seconds < self.min_s:
            self.min_s = seconds
        if self.max_s is None or seconds > self.max_s:
            self.max_s = seconds
        self.window.append(seconds)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the recent window (None when empty).

        Nearest-rank: the ``ceil(q * n)``-th smallest sample (1-indexed).
        ``int(q * n)`` would be off by one — the 6th smallest of 10 for
        p50, and the maximum of a 100-sample window for p99.
        """
        if not self.window:
            return None
        ordered = sorted(self.window)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def to_jsonable(self) -> Dict[str, object]:
        def ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1e3, 3)

        payload: Dict[str, object] = {
            "count": self.count,
            "mean_ms": ms(self.total_s / self.count) if self.count else None,
            "min_ms": ms(self.min_s),
            "max_ms": ms(self.max_s),
        }
        for key, q in _QUANTILES:
            payload[key] = ms(self.quantile(q))
        return payload


class EndpointMetrics:
    """One endpoint's request/outcome counters and latency aggregate."""

    __slots__ = ("requests", "hits", "misses", "errors", "latency")

    def __init__(self, window: int = LATENCY_WINDOW):
        self.requests = 0
        #: Requests answered without any new engine computation — a cached
        #: result, or a wait coalesced onto another request's computation.
        self.hits = 0
        #: Requests that performed at least one engine computation.
        self.misses = 0
        self.errors = 0
        self.latency = LatencyStats(window)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "errors": self.errors,
            "latency": self.latency.to_jsonable(),
        }


def cache_tiers_jsonable(result_store, compiled_cache) -> Dict[str, object]:
    """The ``/stats`` ``cache`` block: per-tier result counters.

    ``result_store`` is a :class:`repro.cache.TieredCache` (duck-typed —
    anything with its ``stats()`` shape works) and ``compiled_cache`` an
    :class:`repro.cache.LRUCache`. The memory tier keeps its historical
    ``result`` key; the persistent tier appears as ``result_disk`` only
    when a ``--cache-dir`` is attached, so stats consumers written before
    the disk tier existed keep parsing.
    """
    tiers = result_store.stats()
    block: Dict[str, object] = {
        "result": tiers["memory"],
        "compiled": compiled_cache.stats(),
    }
    if tiers["disk"] is not None:
        block["result_disk"] = tiers["disk"]
    return block


class ServiceMetrics:
    """Thread-safe per-endpoint serving counters (the ``/stats`` payload).

    ``cached`` distinguishes the *logical* request outcome — did the
    service answer without computing? — from the raw LRU counters the
    caches themselves report (a coalesced waiter never touched the cache,
    yet was served without computing). Error responses record neither a
    hit nor a miss.
    """

    def __init__(self, window: int = LATENCY_WINDOW):
        self._lock = threading.Lock()
        self._window = window
        self._endpoints: Dict[str, EndpointMetrics] = {}

    def record(
        self,
        endpoint: str,
        seconds: float,
        cached: Optional[bool] = None,
        error: bool = False,
    ) -> None:
        with self._lock:
            entry = self._endpoints.get(endpoint)
            if entry is None:
                entry = self._endpoints[endpoint] = EndpointMetrics(
                    self._window
                )
            entry.requests += 1
            if error:
                entry.errors += 1
            elif cached is not None:
                if cached:
                    entry.hits += 1
                else:
                    entry.misses += 1
            entry.latency.add(seconds)

    def endpoint(self, name: str) -> Optional[EndpointMetrics]:
        with self._lock:
            return self._endpoints.get(name)

    def to_jsonable(self) -> Dict[str, object]:
        with self._lock:
            return {
                "format": STATS_FORMAT,
                "endpoints": {
                    name: entry.to_jsonable()
                    for name, entry in sorted(self._endpoints.items())
                },
            }
