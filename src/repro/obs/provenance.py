"""Pulse provenance: the causal graph behind every simulated pulse.

The paper's headline debugging story (Figure 13) reports *which* pulse
violated a timing constraint; this module records *why it arrived when it
did*. Every pulse that appears during a simulation — circuit-input pulses
seeded from ``InGen`` elements and pulses fired by cells — becomes a
:class:`PulseRecord` holding:

* the wire it appeared on (by observation label) and its absolute time;
* the node/cell that produced it and the output port it left through;
* the ids of its *causal parents*: the simultaneous pulse group whose
  dispatch fired it;
* the labels of the machine transitions taken during that dispatch
  (:attr:`repro.core.machine.Transition.label`).

Walking parent ids back from any pulse reaches circuit inputs (records
with no parents), giving the full causal chain that
:func:`format_chain` renders and that timing-violation errors embed.

Pulses in flight are matched to their records by ``(destination node id,
destination port, time)`` — exactly the grouping key
:meth:`repro.core.events.PulseHeap.pop_simultaneous` uses, so duplicate
pulses that the heap collapses (same port, same instant) collapse here
too, merging their parent sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import PylseError

#: Cell-type name of circuit-input generator records.
INPUT_CELL = "InGen"


@dataclass
class PulseRecord:
    """One pulse that appeared on a wire during simulation."""

    pid: int
    label: str                          # observation label of the wire
    time: float
    node: str                           # producing node name
    cell: str                           # producing cell type
    port: str                           # output port it left through
    parents: Tuple[int, ...] = ()
    transitions: Tuple[str, ...] = ()

    @property
    def is_input(self) -> bool:
        """True for pulses seeded directly from a circuit input generator."""
        return not self.parents and self.cell == INPUT_CELL

    def describe(self) -> str:
        """One-line rendering used by :func:`format_chain`."""
        head = f"{self.label}@{self.time:g}"
        if self.is_input:
            return f"{head} (circuit input {self.label!r})"
        via = f" via {', '.join(self.transitions)}" if self.transitions else ""
        return f"{head} <- {self.node}({self.cell}){via}"


@dataclass
class ProvenanceGraph:
    """Append-only DAG of :class:`PulseRecord` entries (pid = list index)."""

    records: List[PulseRecord] = field(default_factory=list)
    #: label -> pids of pulses observed on that wire, in creation order.
    by_label: Dict[str, List[int]] = field(default_factory=dict)
    #: (dest node id, dest port, time) -> pid of the in-flight pulse.
    _pending: Dict[Tuple[int, str, float], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording (called by the simulation loops through the observer)
    # ------------------------------------------------------------------
    def new_pulse(
        self,
        label: str,
        time: float,
        node: str,
        cell: str,
        port: str,
        parents: Tuple[int, ...] = (),
        transitions: Tuple[str, ...] = (),
    ) -> int:
        pid = len(self.records)
        self.records.append(
            PulseRecord(pid, label, time, node, cell, port, parents, transitions)
        )
        self.by_label.setdefault(label, []).append(pid)
        return pid

    def register_pending(self, key: int, port: str, time: float, pid: int) -> int:
        """Associate an in-flight pulse with its future dispatch group.

        Two pulses on the same port at the same instant collapse in the
        heap (a port either pulses at an instant or it does not); here the
        later record is dropped and its parents merge into the earlier
        one, so the graph mirrors what the simulator actually delivers.
        Returns the pid that ended up representing the pulse.
        """
        slot = (key, port, time)
        existing = self._pending.get(slot)
        if existing is None:
            self._pending[slot] = pid
            return pid
        record = self.records[existing]
        dup = self.records[pid]
        merged = record.parents + tuple(
            p for p in dup.parents if p not in record.parents
        )
        record.parents = merged
        # Drop the duplicate record: it never reaches a destination. It is
        # always the most recent record (created by the emit that is being
        # collapsed), so pid == index stays an invariant for survivors.
        if pid == len(self.records) - 1:
            del self.records[pid]
            self.by_label[dup.label].remove(pid)
        return existing

    def take_parents(
        self, key: int, ports: Tuple[str, ...] | List[str], time: float
    ) -> Tuple[int, ...]:
        """Resolve a popped pulse group to the pids being consumed."""
        pending = self._pending
        return tuple(pending.pop((key, port, time)) for port in ports)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def record(self, pid: int) -> PulseRecord:
        return self.records[pid]

    def pulses_on(self, label: str) -> List[int]:
        """Pids of every pulse observed on the given wire label."""
        return list(self.by_label.get(label, ()))

    def pulse_at(self, label: str, occurrence: int = -1) -> int:
        """Pid of the n-th pulse on a wire (default: the last one)."""
        pids = self.by_label.get(label)
        if not pids:
            raise PylseError(
                f"No pulse recorded on wire {label!r}; known wires with "
                f"pulses: {sorted(self.by_label)}"
            )
        try:
            return pids[occurrence]
        except IndexError:
            raise PylseError(
                f"Wire {label!r} saw {len(pids)} pulse(s); occurrence "
                f"{occurrence} is out of range"
            ) from None

    def to_jsonable(self) -> dict:
        """Schema ``repro-obs-provenance-v1`` (see docs/observability.md)."""
        return {
            "format": "repro-obs-provenance-v1",
            "pulses": [
                {
                    "pid": r.pid,
                    "wire": r.label,
                    "time": r.time,
                    "node": r.node,
                    "cell": r.cell,
                    "port": r.port,
                    "parents": list(r.parents),
                    "transitions": list(r.transitions),
                }
                for r in self.records
            ],
        }


def format_chain(graph: ProvenanceGraph, pid: int, indent: str = "") -> str:
    """Render the full causal chain of a pulse back to circuit inputs.

    One line per ancestor pulse, children above parents, two-space
    indentation per causal hop. A pulse already printed earlier in the
    chain is referenced as ``(see above)`` instead of being expanded
    again, which both deduplicates reconvergent fan-in and bounds the
    output on feedback loops.
    """
    lines: List[str] = []
    seen: set = set()
    # Explicit stack: ancestry depth equals causal-chain length, which can
    # exceed the interpreter recursion limit on long feedback loops.
    stack: List[Tuple[int, str]] = [(pid, indent)]
    while stack:
        current, pad = stack.pop()
        record = graph.record(current)
        if current in seen:
            lines.append(f"{pad}{record.label}@{record.time:g} (see above)")
            continue
        seen.add(current)
        lines.append(pad + record.describe())
        # Reversed so parents render in their original (port) order.
        for parent in reversed(record.parents):
            stack.append((parent, pad + "  "))
    return "\n".join(lines)


def format_group_chain(
    graph: ProvenanceGraph,
    node: str,
    cell: str,
    ports: Tuple[str, ...] | List[str],
    time: float,
    parents: Tuple[int, ...],
) -> str:
    """Render the causal chain of a delivered pulse group.

    This is the form embedded in timing-violation errors: a header naming
    the group and destination, then one chain per consumed pulse.
    """
    inputs = "+".join(ports)
    lines = [f"{inputs}@{time:g} -> {node}({cell})"]
    for pid in parents:
        lines.append(format_chain(graph, pid, indent="  "))
    return "\n".join(lines)
