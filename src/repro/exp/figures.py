"""Figure reproductions: 10 (memory hole), 12 (AND sim), 13 (violation),
and 16 (PyLSE vs circuit waveforms).

Figures in the paper are matplotlib plots; here each experiment returns the
underlying event series plus an ASCII waveform rendering (matplotlib is not
installed in this environment — see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from ..analog import (
    bitonic_netlist,
    c_element_netlist,
    min_max_netlist,
    pulse_map,
    simulate as analog_simulate,
)
from ..core.circuit import fresh_circuit
from ..core.errors import PylseError
from ..core.helpers import inp, inp_at
from ..core.simulation import Simulation, render_waveforms
from ..designs import bitonic, make_memory, minmax
from ..sfq import and_s


def figure12() -> Dict[str, List[float]]:
    """The Synchronous And Element simulation of Figure 12.

    Returns the events dict; the Q pulses are asserted to be exactly
    [209.2, 259.2, 309.2] as in the paper's line 8.
    """
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(75, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    events = Simulation(circuit).simulate()
    assert events["Q"] == [209.2, 259.2, 309.2], events["Q"]
    return events


def figure13() -> str:
    """The past-constraint violation of Figure 13; returns the error text."""
    with fresh_circuit() as circuit:
        a = inp_at(125, 175, 225, 275, name="A")
        b = inp_at(99, 185, 225, 265, name="B")
        clk = inp(start=50, period=50, n=6, name="CLK")
        and_s(a, b, clk, name="Q")
    try:
        Simulation(circuit).simulate()
    except PylseError as err:
        return str(err)
    raise AssertionError("Figure 13 stimulus should raise a PylseError")


def figure10() -> Dict[str, List[float]]:
    """The memory-hole simulation of Figure 10.

    Writes 0b11 to address 5 in the first clock period, reads address 5 in
    the second period (both output bits pulse), then reads the untouched
    address 0 in the third (no output pulses).
    """
    with fresh_circuit() as circuit:
        memory = make_memory()

        def bits(name: str, value: int, width: int, at: float):
            return [
                inp_at(*([at] if (value >> k) & 1 else []), name=f"{name}{k}")
                for k in reversed(range(width))
            ]

        ra = bits("ra", 5, 4, 60.0)       # read address 5 in period 2
        wa = bits("wa", 5, 4, 10.0)       # write address 5 in period 1
        d1 = inp_at(10.0, name="d1")      # data 0b11
        d0 = inp_at(10.0, name="d0")
        we = inp_at(10.0, name="we")
        clk = inp(start=25.0, period=50.0, n=3, name="clk")
        q1, q0 = memory(*ra, *wa, d1, d0, we, clk)
        q1.observe("q1")
        q0.observe("q0")
    return Simulation(circuit).simulate()


@dataclass
class Figure16Panel:
    """One column of Figure 16: a design at both abstraction levels."""

    name: str
    pylse_events: Dict[str, List[float]]
    analog_events: Dict[str, List[float]]
    pylse_waveform: str
    analog_waveform: str
    pylse_seconds: float
    analog_seconds: float

    def functionally_agree(self) -> bool:
        """Same pulse count per output, same arrival order across outputs."""
        keys = sorted(set(self.pylse_events) & set(self.analog_events))
        counts_match = all(
            len(self.pylse_events[k]) == len(self.analog_events[k]) for k in keys
        )

        def order(events: Dict[str, List[float]]) -> List[str]:
            firsts = [(events[k][0], k) for k in keys if events[k]]
            return [k for _, k in sorted(firsts)]

        return counts_match and order(self.pylse_events) == order(self.analog_events)


def _run_pylse(build) -> tuple:
    with fresh_circuit() as circuit:
        build()
    sim = Simulation(circuit)
    start = time.perf_counter()
    events = sim.simulate()
    return events, time.perf_counter() - start


def figure16(analog_dt: float = 0.05) -> List[Figure16Panel]:
    """All three Figure 16 comparisons: C element, min-max, bitonic-8."""
    panels: List[Figure16Panel] = []

    # --- C element -------------------------------------------------------
    def build_c():
        from ..sfq import c as c_fn

        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        c_fn(a, b, name="q")

    pylse_events, pylse_s = _run_pylse(build_c)
    netlist = c_element_netlist([115, 215, 315], [64, 184, 304])
    start = time.perf_counter()
    analog_events = pulse_map(analog_simulate(netlist, 420.0, analog_dt))
    panels.append(_panel("C Element", pylse_events, analog_events,
                         pylse_s, time.perf_counter() - start))

    # --- min-max ----------------------------------------------------------
    def build_mm():
        a = inp_at(115, 215, 315, name="A")
        b = inp_at(64, 184, 304, name="B")
        low, high = minmax.min_max(a, b)
        low.observe("low")
        high.observe("high")

    pylse_events, pylse_s = _run_pylse(build_mm)
    netlist = min_max_netlist([115, 215, 315], [64, 184, 304])
    start = time.perf_counter()
    analog_events = pulse_map(analog_simulate(netlist, 420.0, analog_dt))
    panels.append(_panel("Min-Max Pair", pylse_events, analog_events,
                         pylse_s, time.perf_counter() - start))

    # --- bitonic 8 --------------------------------------------------------
    times = [20, 70, 10, 45, 5, 90, 33, 60]

    def build_b8():
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
        bitonic.bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])

    pylse_events, pylse_s = _run_pylse(build_b8)
    netlist = bitonic_netlist(times)
    start = time.perf_counter()
    analog_events = pulse_map(analog_simulate(netlist, 450.0, analog_dt))
    panels.append(_panel("Bitonic Sort 8", pylse_events, analog_events,
                         pylse_s, time.perf_counter() - start))
    return panels


def _panel(name, pylse_events, analog_events, pylse_s, analog_s) -> Figure16Panel:
    interesting = {
        k: v for k, v in pylse_events.items() if not k.startswith("_")
    }
    return Figure16Panel(
        name=name,
        pylse_events=interesting,
        analog_events=analog_events,
        pylse_waveform=render_waveforms(interesting),
        analog_waveform=render_waveforms(analog_events),
        pylse_seconds=pylse_s,
        analog_seconds=analog_s,
    )


def main() -> str:
    parts = ["Figure 12 (AND):", render_waveforms(figure12()), ""]
    parts += ["Figure 13 (violation):", figure13(), ""]
    parts += ["Figure 10 (memory):", render_waveforms(figure10()), ""]
    for panel in figure16():
        parts += [
            f"Figure 16 ({panel.name}): PyLSE {panel.pylse_seconds:.4f}s, "
            f"analog {panel.analog_seconds:.2f}s, "
            f"agree={panel.functionally_agree()}",
            "PyLSE:", panel.pylse_waveform,
            "Analog:", panel.analog_waveform, "",
        ]
    report = "\n".join(parts)
    print(report)
    return report
