"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.exp.figures` — Figures 10, 12, 13, 16;
* :mod:`repro.exp.table2` — Table 2 (PyLSE vs schematic size/time);
* :mod:`repro.exp.table3` — Table 3 (PyLSE vs TA sizes, verification);
* :mod:`repro.exp.dynamic_checks` — Section 5.2 checks;
* :mod:`repro.exp.variability` — Section 5.2 robustness sweep;
* :mod:`repro.exp.registry` — the 22 evaluated designs.

Run everything with ``python -m repro.exp`` or an individual experiment
with ``python -m repro.exp table2``.
"""

from . import agreement, dynamic_checks, energy, figures, registry, table2, table3, variability

__all__ = [
    "agreement", "dynamic_checks", "energy", "figures", "registry", "table2",
    "table3",
    "variability",
]
