"""Section 5.3's simulator cross-check, as a table.

For each design: simulate with the discrete-event simulator, execute the
translated TA network concretely (:mod:`repro.mc.tasim`), and report
whether the output pulse trains agree — plus the cost of each, quantifying
how much cheaper the pulse-transfer abstraction is even against *running*
the timed automata (let alone model checking them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.simulation import Simulation
from ..mc.tasim import ta_events
from ..ta.translate import translate_circuit
from .registry import DesignEntry, build_in_fresh_circuit, registry


@dataclass
class AgreementRow:
    name: str
    sim_seconds: float
    ta_seconds: float
    outputs: int
    agrees: bool

    @property
    def slowdown(self) -> float:
        return self.ta_seconds / max(self.sim_seconds, 1e-9)


def run(entries: Optional[List[DesignEntry]] = None) -> List[AgreementRow]:
    rows: List[AgreementRow] = []
    for entry in entries if entries is not None else registry():
        circuit = build_in_fresh_circuit(entry)
        start = time.perf_counter()
        sim_events = Simulation(circuit).simulate()
        sim_seconds = time.perf_counter() - start
        translation = translate_circuit(circuit)
        start = time.perf_counter()
        ta = ta_events(translation.network, max_steps=2_000_000)
        ta_seconds = time.perf_counter() - start
        agrees = True
        outputs = 0
        for wire in circuit.output_wires():
            name = wire.observed_as
            expected = sim_events[name]
            got = ta.get(name, [])
            outputs += 1
            if len(got) != len(expected) or any(
                abs(x - y) > 1e-6 for x, y in zip(got, expected)
            ):
                agrees = False
        rows.append(
            AgreementRow(
                name=entry.name,
                sim_seconds=sim_seconds,
                ta_seconds=ta_seconds,
                outputs=outputs,
                agrees=agrees,
            )
        )
    return rows


def render(rows: List[AgreementRow]) -> str:
    lines = [
        'Simulator cross-check ("internal simulator agrees", Section 5.3):',
        f"{'Design':<16} {'Sim (s)':>9} {'TA exec (s)':>12} "
        f"{'Outputs':>8} {'Agree':>6} {'TA/Sim':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:<16} {row.sim_seconds:>9.5f} {row.ta_seconds:>12.4f} "
            f"{row.outputs:>8} {'yes' if row.agrees else 'NO':>6} "
            f"{row.slowdown:>8.0f}x"
        )
    return "\n".join(lines)


def main() -> str:
    # The bitonic sorters' TA networks have hundreds of automata: concrete
    # execution is O(edges^2)-ish per step and impractically slow there,
    # so the table covers the cells and the smaller designs.
    entries = [
        e for e in registry()
        if e.name not in ("Bitonic Sort 4", "Bitonic Sort 8", "Adder (Sync)")
    ]
    report = render(run(entries))
    print(report)
    return report
