"""Section 5.2's robustness evaluation: sweeping Gaussian delay variability.

Re-runs the 8-input bitonic sorter under increasing per-delay noise and
classifies each run as OK, mis-sorted, or timing violation — the failure
modes the paper says variability analysis should expose ("such variance can
lead to pulses arriving at their destination cells too early or late,
causing the design to fail unexpectedly").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.circuit import fresh_circuit
from ..core.errors import SimulationError
from ..core.helpers import inp_at
from ..core.simulation import Simulation
from ..designs import bitonic_sorter
from .dynamic_checks import bitonic_rank_order

DEFAULT_SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_VALUES = (20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0)


@dataclass
class SweepRow:
    sigma: float
    ok: int
    mis_sorted: int
    violations: int

    @property
    def total(self) -> int:
        return self.ok + self.mis_sorted + self.violations


def run(
    sigmas: Sequence[float] = DEFAULT_SIGMAS,
    seeds: Sequence[int] = tuple(range(20)),
    values: Sequence[float] = DEFAULT_VALUES,
) -> List[SweepRow]:
    rows: List[SweepRow] = []
    for sigma in sigmas:
        outcome: Dict[str, int] = {"ok": 0, "mis": 0, "viol": 0}
        for seed in seeds:
            with fresh_circuit() as circuit:
                ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(values)]
                bitonic_sorter(
                    ins, output_names=[f"o{k}" for k in range(len(values))]
                )
            try:
                events = Simulation(circuit).simulate(
                    variability={"stddev": sigma}, seed=seed
                )
            except SimulationError:
                outcome["viol"] += 1
                continue
            if bitonic_rank_order(events, len(values)):
                outcome["ok"] += 1
            else:
                outcome["mis"] += 1
        rows.append(SweepRow(sigma, outcome["ok"], outcome["mis"], outcome["viol"]))
    return rows


def render(rows: List[SweepRow]) -> str:
    lines = [
        "Section 5.2 variability robustness sweep (bitonic-8):",
        f"{'sigma (ps)':>10} {'ok':>5} {'mis-sorted':>11} {'violations':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.sigma:>10.2f} {row.ok:>5} {row.mis_sorted:>11} "
            f"{row.violations:>11}"
        )
    return "\n".join(lines)


def main() -> str:
    report = render(run())
    print(report)
    return report
