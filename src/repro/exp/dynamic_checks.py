"""Section 5.2: simulation and dynamic correctness checks.

The paper uses the ``events`` dict returned by a simulation to assert
correctness properties of designs in plain Python. This module packages the
three published checks (2x2 Join interleaving, race-tree single winner,
bitonic rank order) plus the variability robustness evaluation, each as a
function returning a pass/fail result with detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.circuit import fresh_circuit
from ..core.errors import PylseError
from ..core.helpers import inp_at
from ..core.simulation import Events, Simulation
from ..designs import bitonic, racetree
from ..sfq import join


@dataclass
class CheckOutcome:
    name: str
    passed: bool
    detail: str


def join_interleaving(events: Events) -> bool:
    """The paper's 2x2 Join check: A pulses and B pulses must alternate.

    This is the verbatim logic from Section 5.2: sort all input pulses by
    time, pair them up, and require each consecutive pair to involve both
    an A-rail and a B-rail pulse.
    """
    inputs = sorted(
        (
            (w, p)
            for w, evs in events.items()
            for p in evs
            if w in ("A_T", "A_F", "B_T", "B_F")
        ),
        key=lambda x: x[1],
    )
    zipped = list(zip(inputs[0::2], inputs[1::2]))
    return all(x[0][0] != y[0][0] for x, y in zipped)


def check_join() -> CheckOutcome:
    """Simulate a 2x2 Join and verify the interleaving property holds."""
    with fresh_circuit() as circuit:
        a_t = inp_at(20.0, 100.0, name="A_T")
        a_f = inp_at(60.0, name="A_F")
        b_t = inp_at(40.0, 120.0, name="B_T")
        b_f = inp_at(80.0, name="B_F")
        outs = join(a_t, a_f, b_t, b_f, names="tt tf ft ff")
    events = Simulation(circuit).simulate()
    interleaved = join_interleaving(events)
    fired = sum(len(events[name]) for name in ("tt", "tf", "ft", "ff"))
    passed = interleaved and fired == 3  # three complete (A, B) pairs
    del outs
    return CheckOutcome(
        "2x2 Join interleaving",
        passed,
        f"interleaved={interleaved}, outputs fired={fired}",
    )


def race_tree_single_winner(events: Events) -> bool:
    """The paper's race-tree check: exactly one label fires."""
    return (
        sum(len(evs) for out, evs in events.items() if out in ("a", "b", "c", "d"))
        == 1
    )


def check_race_tree(
    feature_pairs: Sequence[tuple] = ((3.0, 4.0), (3.0, 15.0), (14.0, 2.0), (16.0, 17.0)),
) -> List[CheckOutcome]:
    """Evaluate the race tree on several feature vectors; one winner each."""
    outcomes = []
    for x1, x2 in feature_pairs:
        with fresh_circuit() as circuit:
            times = racetree.race_tree_inputs(x1, x2)
            wires = {k: inp_at(v, name=k) for k, v in times.items()}
            leaves = racetree.race_tree(
                wires["x1"], wires["t1"], wires["x2a"], wires["t2"],
                wires["x2b"], wires["t3"],
            )
            for leaf, label in zip(leaves, "abcd"):
                leaf.observe(label)
        events = Simulation(circuit).simulate()
        single = race_tree_single_winner(events)
        winner = [label for label in "abcd" if events[label]]
        expected = racetree.expected_label(x1, x2)
        outcomes.append(
            CheckOutcome(
                f"race tree ({x1}, {x2})",
                single and winner == [expected],
                f"winner={winner}, expected={expected!r}",
            )
        )
    return outcomes


def bitonic_rank_order(events: Events, n: int) -> bool:
    """The paper's bitonic check: one pulse per output, in rank order."""
    out_events = {e[0]: e[1] for e in events.items() if e[0].startswith("o")}
    ordered_names = sorted(out_events.keys())
    ranked = [
        es
        for _, es in sorted(
            out_events.items(), key=lambda x: ordered_names.index(x[0])
        )
    ]
    if not all(len(es) == 1 for es in ranked):
        return False
    return all(x[0] <= y[0] for x, y in zip(ranked, ranked[1:]))


def check_bitonic(times: Sequence[float] = (20, 70, 10, 45, 5, 90, 33, 60)) -> CheckOutcome:
    """Simulate the 8-input sorter and verify rank order."""
    with fresh_circuit() as circuit:
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
        bitonic.bitonic_sorter(ins, output_names=[f"o{k}" for k in range(len(times))])
    events = Simulation(circuit).simulate()
    passed = bitonic_rank_order(events, len(times))
    return CheckOutcome("bitonic rank order", passed, f"inputs={list(times)}")


def check_variability(
    seeds: Sequence[int] = tuple(range(8)), sigma: float = 0.5
) -> CheckOutcome:
    """Robustness under Gaussian delay variability (Section 5.2).

    Re-runs the bitonic-8 sorter with per-delay noise; a run fails if a
    timing violation is raised or the rank order breaks. With widely spaced
    inputs the design should tolerate sigma ~0.5 ps.
    """
    times = (20, 70, 10, 45, 5, 90, 33, 60)
    failures = []
    for seed in seeds:
        with fresh_circuit() as circuit:
            ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
            bitonic.bitonic_sorter(
                ins, output_names=[f"o{k}" for k in range(len(times))]
            )
        try:
            events = Simulation(circuit).simulate(
                variability={"stddev": sigma}, seed=seed
            )
            if not bitonic_rank_order(events, len(times)):
                failures.append((seed, "rank order broken"))
        except PylseError as err:
            failures.append((seed, type(err).__name__))
    return CheckOutcome(
        f"bitonic under variability (sigma={sigma})",
        not failures,
        f"failures={failures}" if failures else f"{len(seeds)} seeds clean",
    )


def run_all() -> List[CheckOutcome]:
    outcomes = [check_join()]
    outcomes += check_race_tree()
    outcomes.append(check_bitonic())
    outcomes.append(check_variability())
    return outcomes


def main() -> str:
    lines = ["Section 5.2 dynamic correctness checks:"]
    for outcome in run_all():
        mark = "PASS" if outcome.passed else "FAIL"
        lines.append(f"  [{mark}] {outcome.name}: {outcome.detail}")
    report = "\n".join(lines)
    print(report)
    return report
