"""CLI entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.exp            # everything
    python -m repro.exp table2     # one experiment
    python -m repro.exp table3 --max-states 50000 --time-limit 30
"""

from __future__ import annotations

import argparse
import sys

from . import agreement, dynamic_checks, energy, figures, table2, table3, variability

EXPERIMENTS = {
    "figures": figures.main,
    "table2": table2.main,
    "dynamic": dynamic_checks.main,
    "variability": variability.main,
    "energy": energy.main,
    "agreement": agreement.main,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Regenerate the PyLSE paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["table3", "all"],
        default="all",
    )
    parser.add_argument("--max-states", type=int, default=200_000,
                        help="model-checking state budget per design")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="model-checking time budget per design (s)")
    args = parser.parse_args(argv)

    if args.experiment in EXPERIMENTS:
        EXPERIMENTS[args.experiment]()
    elif args.experiment == "table3":
        table3.main(max_states=args.max_states, time_limit=args.time_limit)
    else:
        for name in ("figures", "dynamic", "variability", "table2"):
            print(f"\n===== {name} =====")
            EXPERIMENTS[name]()
        print("\n===== table3 =====")
        table3.main(max_states=args.max_states, time_limit=args.time_limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
