"""Beyond the paper: per-design switching-energy estimates.

The paper's introduction motivates SCE by its "sub-attojoule ultra-high-
speed switching"; this experiment quantifies that across all 22 evaluated
designs, combining the simulator's activity counters with each cell's JJ
count (see :mod:`repro.core.energy` for the model and its caveats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.energy import energy_report
from ..core.simulation import Simulation
from ..core.transitional import Transitional
from .registry import DesignEntry, build_in_fresh_circuit, registry


@dataclass
class EnergyRow:
    name: str
    cells: int
    jjs: int
    pulses: int
    attojoules: float


def run(entries: Optional[List[DesignEntry]] = None) -> List[EnergyRow]:
    rows: List[EnergyRow] = []
    for entry in entries if entries is not None else registry():
        circuit = build_in_fresh_circuit(entry)
        sim = Simulation(circuit)
        sim.simulate()
        report = energy_report(sim)
        cells = [
            n for n in circuit.cells() if isinstance(n.element, Transitional)
        ]
        rows.append(
            EnergyRow(
                name=entry.name,
                cells=len(cells),
                jjs=sum(getattr(n.element, "jjs", 0) for n in cells),
                pulses=sim.pulses_processed,
                attojoules=report.total_attojoules,
            )
        )
    return rows


def render(rows: List[EnergyRow]) -> str:
    lines = [
        "Switching-energy estimates (upper bound; see repro.core.energy):",
        f"{'Design':<16} {'Cells':>6} {'JJs':>6} {'Pulses':>7} {'Energy (aJ)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.name:<16} {row.cells:>6} {row.jjs:>6} {row.pulses:>7} "
            f"{row.attojoules:>12.2f}"
        )
    return "\n".join(lines)


def main() -> str:
    report = render(run())
    print(report)
    return report
