"""The 22 evaluated designs (Table 3): builders plus canonical stimuli.

Each entry knows how to elaborate its circuit into the working circuit with
a violation-free input schedule, so every experiment (simulation counts, TA
translation statistics, model checking) can iterate over the same registry.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..core.circuit import Circuit, fresh_circuit
from ..core.helpers import inp, inp_at
from ..core.transitional import Transitional
from ..designs import adder_sync, adder_xsfq, bitonic, minmax, racetree
from ..sfq import BASIC_CELLS, functions as fn


@dataclass
class DesignEntry:
    """One Table 3 row: a name, a builder, and whether it is a basic cell."""

    name: str
    build: Callable[[], None]       # elaborates into the working circuit
    is_basic_cell: bool
    #: DSL size: transitions written for basic cells, source lines for designs
    dsl_size: int


def _cell_stimulus(cell_cls) -> Dict[str, List[float]]:
    """A violation-free pulse schedule exercising one basic cell."""
    name = cell_cls.name
    if name in ("C", "C_INV", "M"):
        return {"a": [30.0, 110.0], "b": [60.0, 140.0]}
    if name in ("S", "JTL"):
        return {"a": [30.0, 80.0]}
    if name in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR"):
        return {"a": [30.0, 115.0], "b": [65.0, 130.0], "clk": [50.0, 100.0, 150.0]}
    if name == "INV":
        return {"a": [30.0, 115.0], "clk": [50.0, 100.0, 150.0]}
    if name in ("DRO", "DRO_C"):
        return {"a": [30.0, 115.0], "clk": [50.0, 100.0, 150.0]}
    if name == "DRO_SR":
        return {"a": [30.0, 115.0], "rst": [70.0], "clk": [50.0, 100.0, 150.0]}
    if name == "JOIN":
        return {
            "a_t": [20.0], "b_f": [45.0], "a_f": [80.0], "b_t": [105.0]
        }
    raise ValueError(f"No stimulus defined for cell {name}")


def _build_basic_cell(cell_cls) -> Callable[[], None]:
    def build() -> None:
        stimulus = _cell_stimulus(cell_cls)
        wires = [
            inp_at(*stimulus[port], name=port.upper())
            for port in cell_cls.inputs
        ]
        element = cell_cls()
        from ..core.circuit import working_circuit
        from ..core.wire import Wire

        outs = [Wire(f"OUT_{port}") for port in cell_cls.outputs]
        working_circuit().add_node(element, wires, outs)

    return build


def _build_min_max() -> None:
    a = inp_at(115.0, 215.0, 315.0, name="A")
    b = inp_at(64.0, 184.0, 304.0, name="B")
    low, high = minmax.min_max(a, b)
    low.observe("low")
    high.observe("high")


def _build_race_tree() -> None:
    times = racetree.race_tree_inputs(3.0, 15.0)
    wires = {k: inp_at(v, name=k) for k, v in times.items()}
    leaves = racetree.race_tree(
        wires["x1"], wires["t1"], wires["x2a"], wires["t2"],
        wires["x2b"], wires["t3"],
    )
    for leaf, label in zip(leaves, "abcd"):
        leaf.observe(label)


def _build_adder_sync() -> None:
    schedule = adder_sync.adder_test_times(1, 0, 1)
    a = inp_at(*schedule["a"], name="a")
    b = inp_at(*schedule["b"], name="b")
    cin = inp_at(*schedule["cin"], name="cin")
    clk = inp(start=50.0, period=adder_sync.CLOCK_PERIOD, n=5, name="clk")
    total, carry = adder_sync.full_adder(a, b, cin, clk)
    total.observe("sum")
    carry.observe("cout")


def _build_adder_xsfq() -> None:
    def rail(bit: int, name: str):
        true = inp_at(*([10.0] if bit else []), name=f"{name}_t")
        false = inp_at(*([] if bit else [10.0]), name=f"{name}_f")
        return (true, false)

    total, carry = adder_xsfq.xsfq_full_adder(
        rail(1, "a"), rail(1, "b"), rail(0, "c")
    )
    total[0].observe("sum_t")
    total[1].observe("sum_f")
    carry[0].observe("cout_t")
    carry[1].observe("cout_f")


def _build_bitonic(n: int) -> Callable[[], None]:
    def build() -> None:
        base = {4: [20.0, 55.0, 5.0, 40.0],
                8: [20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0]}[n]
        ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(base)]
        bitonic.bitonic_sorter(ins, output_names=[f"o{k}" for k in range(n)])

    return build


def _source_lines(obj) -> int:
    return len(inspect.getsource(obj).splitlines())


def registry() -> List[DesignEntry]:
    """All 22 designs in Table 3 order."""
    entries = [
        DesignEntry(
            name=cls.name,
            build=_build_basic_cell(cls),
            is_basic_cell=True,
            dsl_size=len(cls.transitions),
        )
        for cls in BASIC_CELLS
    ]
    entries += [
        DesignEntry("Min-Max", _build_min_max, False,
                    _source_lines(minmax.min_max)),
        DesignEntry("Race Tree", _build_race_tree, False,
                    _source_lines(racetree.race_tree)),
        DesignEntry("Adder (Sync)", _build_adder_sync, False,
                    _source_lines(adder_sync.full_adder)),
        DesignEntry("Adder (xSFQ)", _build_adder_xsfq, False,
                    _source_lines(adder_xsfq.xsfq_full_adder)),
        DesignEntry("Bitonic Sort 4", _build_bitonic(4), False,
                    _source_lines(bitonic.bitonic_sorter)),
        DesignEntry("Bitonic Sort 8", _build_bitonic(8), False,
                    _source_lines(bitonic.bitonic_sorter)),
    ]
    return entries


def pylse_stats(circuit: Circuit) -> Dict[str, int]:
    """Table 3's PyLSE columns for an elaborated circuit."""
    cells = [n for n in circuit.cells() if isinstance(n.element, Transitional)]
    return {
        "cells": len(cells),
        "states": sum(len(n.element.machine.states) for n in cells),
        "transitions": sum(len(n.element.machine.transitions) for n in cells),
    }


def build_in_fresh_circuit(entry: DesignEntry) -> Circuit:
    """Elaborate an entry in an isolated circuit and return it."""
    with fresh_circuit() as circuit:
        entry.build()
    return circuit


class RegistryFactory:
    """A picklable ``CircuitFactory`` for a registry design.

    Stores only the design name, so instances can be shipped to the
    process-pool workers of :mod:`repro.core.parallel` and re-elaborate the
    design from the registry on the other side.
    """

    def __init__(self, name: str):
        self.name = name

    def __call__(self) -> Circuit:
        for entry in registry():
            if entry.name == self.name:
                return build_in_fresh_circuit(entry)
        raise ValueError(f"Unknown registry design {self.name!r}")

    def __repr__(self) -> str:
        return f"RegistryFactory({self.name!r})"


class PulseCountPredicate:
    """Monte-Carlo pass criterion: every named wire pulses as often as in
    the noiseless baseline run.

    Only user-visible wire labels are compared (auto-generated ``_N`` names
    are not stable across elaborations). Picklable, so it works with
    ``measure_yield(..., workers=N)``.
    """

    def __init__(self, baseline_events: Dict[str, List[float]]):
        self.expected = {
            label: len(times)
            for label, times in baseline_events.items()
            if not label.startswith("_")
        }

    def __call__(self, events: Dict[str, List[float]]) -> bool:
        return all(
            len(events.get(label, ())) == count
            for label, count in self.expected.items()
        )

    def __repr__(self) -> str:
        return f"PulseCountPredicate({len(self.expected)} wires)"
