"""Table 3: PyLSE vs UPPAAL sizes and verification effort for 22 designs.

For every basic cell and larger design the harness reports:

* PyLSE columns — DSL size, cell / state / transition counts;
* UPPAAL columns — TA, location, transition, channel counts of the
  generated network (cells + firing TAs, as in the paper);
* verification — time and states explored deciding Query 1 + Query 2 with
  the bundled checker, or an infinity marker when the state/time budget is
  exhausted (the paper's bitonic sorters and xSFQ adder hit the same wall);
* the ratio columns TA/Cells, Locs/States, Tran(U)/Tran(P).

Absolute counts differ from the paper's (their Figure 14 expansion inserts
more intermediate locations than ours; see DESIGN.md) but the shape — an
order of magnitude blowup from PyLSE Machine to TA, and verification cost
exploding with design size — is the reproduced claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.simulation import Simulation
from ..mc.check import verify_design
from ..ta.translate import translate_circuit
from .registry import DesignEntry, build_in_fresh_circuit, pylse_stats, registry


@dataclass
class Table3Row:
    name: str
    size: int
    cells: int
    states: int
    transitions: int
    ta: int
    locations: int
    ta_transitions: int
    channels: int
    verify_seconds: Optional[float]       # None -> did not finish
    states_explored: Optional[int]
    satisfied: Optional[bool]

    @property
    def ta_per_cell(self) -> float:
        return self.ta / self.cells

    @property
    def locs_per_state(self) -> float:
        return self.locations / self.states

    @property
    def tran_ratio(self) -> float:
        return self.ta_transitions / self.transitions


def run(
    entries: Optional[List[DesignEntry]] = None,
    max_states: int = 200_000,
    time_limit: float = 120.0,
    skip_verification: bool = False,
) -> List[Table3Row]:
    """Measure every registry entry; verification bounded per design."""
    rows: List[Table3Row] = []
    for entry in entries if entries is not None else registry():
        circuit = build_in_fresh_circuit(entry)
        stats = pylse_stats(circuit)
        translation = translate_circuit(circuit)
        ta_stats = translation.cell_stats()
        verify_seconds = states_explored = satisfied = None
        if not skip_verification:
            started = time.perf_counter()
            report = verify_design(
                circuit, max_states=max_states, time_limit=time_limit
            )
            elapsed = time.perf_counter() - started
            if report.result.completed:
                verify_seconds = elapsed
                states_explored = report.result.states_explored
                satisfied = report.ok
        rows.append(
            Table3Row(
                name=entry.name,
                size=entry.dsl_size,
                cells=stats["cells"],
                states=stats["states"],
                transitions=stats["transitions"],
                ta=ta_stats["ta"],
                locations=ta_stats["locations"],
                ta_transitions=ta_stats["transitions"],
                channels=ta_stats["channels"],
                verify_seconds=verify_seconds,
                states_explored=states_explored,
                satisfied=satisfied,
            )
        )
    return rows


def render(rows: List[Table3Row]) -> str:
    header = (
        f"{'Name':<15} {'Size':>4} {'Cells':>5} {'St':>4} {'Tr':>4} | "
        f"{'TA':>4} {'Locs':>5} {'Tr(U)':>5} {'Chan':>4} | "
        f"{'Time(s)':>8} {'States':>8} {'OK':>3} | "
        f"{'TA/Cell':>7} {'L/St':>6} {'TrU/TrP':>7}"
    )
    lines = ["Table 3: PyLSE vs UPPAAL-style TA networks", header, "-" * len(header)]
    for r in rows:
        if r.verify_seconds is None:
            verify = f"{'inf':>8} {'N/A':>8} {'-':>3}"
        else:
            verify = (
                f"{r.verify_seconds:>8.2f} {r.states_explored:>8} "
                f"{'y' if r.satisfied else 'N':>3}"
            )
        lines.append(
            f"{r.name:<15} {r.size:>4} {r.cells:>5} {r.states:>4} "
            f"{r.transitions:>4} | {r.ta:>4} {r.locations:>5} "
            f"{r.ta_transitions:>5} {r.channels:>4} | {verify} | "
            f"{r.ta_per_cell:>7.2f} {r.locs_per_state:>6.2f} {r.tran_ratio:>7.2f}"
        )
    n = len(rows)
    lines.append(
        f"{'average':<15} {'':>4} {'':>5} {'':>4} {'':>4} | "
        f"{'':>4} {'':>5} {'':>5} {'':>4} | {'':>8} {'':>8} {'':>3} | "
        f"{sum(r.ta_per_cell for r in rows) / n:>7.2f} "
        f"{sum(r.locs_per_state for r in rows) / n:>6.2f} "
        f"{sum(r.tran_ratio for r in rows) / n:>7.2f}"
    )
    return "\n".join(lines)


def main(max_states: int = 200_000, time_limit: float = 120.0) -> str:
    report = render(run(max_states=max_states, time_limit=time_limit))
    print(report)
    return report
