"""Table 2: simulation times of PyLSE vs. schematic-level models.

For the four designs of Table 2 (C, InvC, Min-Max Pair, Bitonic Sort 8) we
measure:

* **Schematic lines** — length of the analog netlist's SPICE-style listing;
* **Schematic time** — wall-clock transient-simulation time of the RCSJ
  solver (the Cadence stand-in, see DESIGN.md);
* **PyLSE size** — transitions in the DSL for cells, lines for designs;
* **PyLSE time** — wall-clock discrete-event simulation time.

The paper reports PyLSE as 16.6x smaller and ~9879x faster on average; the
claim reproduced here is the *shape*: netlists are an order of magnitude
larger and simulation orders of magnitude slower at the analog level.

Two views of "slower" are kept separate:

* the **wall-clock ratio** (``time_ratio``) mirrors the paper's Table 2
  but depends on the host — it is tracked as the non-gating
  ``table2_time_ratio`` metric in ``tools/bench_guard.py``;
* the **work ratio** (``work_ratio``) is machine-independent: per-junction
  RK4 solver steps (``steps x junctions``, fixed by ``t_end / dt`` and the
  netlist) against discrete pulses processed by the event loop. The test
  suite asserts on this one, so it passes identically on slow and fast
  machines.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..analog import (
    bitonic_netlist,
    c_element_netlist,
    inv_c_netlist,
    min_max_netlist,
    simulate as analog_simulate,
)
from ..core.circuit import fresh_circuit
from ..core.helpers import inp_at
from ..core.simulation import Simulation
from ..designs import bitonic, minmax
from ..sfq import C, InvC, c, c_inv


@dataclass
class Table2Row:
    name: str
    schematic_lines: int
    schematic_seconds: float
    pylse_size: int
    pylse_seconds: float
    #: RK4 steps x junction count: deterministic analog work.
    schematic_steps: int = 0
    #: Pulses processed by the discrete-event loop: deterministic DES work.
    pylse_events: int = 0

    @property
    def size_ratio(self) -> float:
        return self.schematic_lines / self.pylse_size

    @property
    def time_ratio(self) -> float:
        return self.schematic_seconds / max(self.pylse_seconds, 1e-9)

    @property
    def work_ratio(self) -> float:
        """Machine-independent analog-vs-DES work ratio.

        Both counts are pure functions of the design and the solver
        configuration (``t_end / dt`` RK4 steps over every junction vs.
        pulses processed), so this ratio is identical on any host.
        """
        return self.schematic_steps / max(self.pylse_events, 1)


def _time_pylse(build: Callable[[], None]) -> tuple:
    """Simulate a PyLSE build; returns (wall seconds, pulses processed)."""
    with fresh_circuit() as circuit:
        build()
    sim = Simulation(circuit)
    start = time.perf_counter()
    sim.simulate()
    return time.perf_counter() - start, sim.pulses_processed


def _pylse_c() -> None:
    a = inp_at(115.0, 215.0, 315.0, name="A")
    b = inp_at(64.0, 184.0, 304.0, name="B")
    c(a, b, name="q")


def _pylse_inv_c() -> None:
    a = inp_at(115.0, 215.0, 315.0, name="A")
    b = inp_at(64.0, 184.0, 304.0, name="B")
    c_inv(a, b, name="q")


def _pylse_min_max() -> None:
    a = inp_at(115.0, 215.0, 315.0, name="A")
    b = inp_at(64.0, 184.0, 304.0, name="B")
    low, high = minmax.min_max(a, b)
    low.observe("low")
    high.observe("high")


def _pylse_bitonic8() -> None:
    times = [20.0, 70.0, 10.0, 45.0, 5.0, 90.0, 33.0, 60.0]
    ins = [inp_at(t, name=f"i{k}") for k, t in enumerate(times)]
    bitonic.bitonic_sorter(ins, output_names=[f"o{k}" for k in range(8)])


def run(analog_dt: float = 0.05) -> List[Table2Row]:
    """Measure all four Table 2 rows."""
    rows: List[Table2Row] = []
    cases: Dict[str, tuple] = {
        "C": (
            c_element_netlist([115, 215, 315], [64, 184, 304]), 420.0,
            _pylse_c, len(C.transitions),
        ),
        "InvC": (
            inv_c_netlist([115, 215, 315], [64, 184, 304]), 420.0,
            _pylse_inv_c, len(InvC.transitions),
        ),
        "Min-Max Pair": (
            min_max_netlist([115, 215, 315], [64, 184, 304]), 420.0,
            _pylse_min_max,
            len(inspect.getsource(minmax.min_max).splitlines()),
        ),
        "Bitonic Sort 8": (
            bitonic_netlist([20, 70, 10, 45, 5, 90, 33, 60]), 450.0,
            _pylse_bitonic8,
            len(inspect.getsource(bitonic.bitonic_sorter).splitlines()),
        ),
    }
    for name, (netlist, t_end, pylse_build, pylse_size) in cases.items():
        start = time.perf_counter()
        transient = analog_simulate(netlist, t_end, analog_dt)
        schematic_seconds = time.perf_counter() - start
        pylse_seconds, pylse_events = _time_pylse(pylse_build)
        rows.append(
            Table2Row(
                name=name,
                schematic_lines=len(netlist.lines()),
                schematic_seconds=schematic_seconds,
                pylse_size=pylse_size,
                pylse_seconds=pylse_seconds,
                schematic_steps=transient.steps * netlist.n_junctions,
                pylse_events=pylse_events,
            )
        )
    return rows


def render(rows: List[Table2Row]) -> str:
    header = (
        f"{'Name':<16} {'Schem.Lines':>11} {'Schem.Time(s)':>13} "
        f"{'PyLSE Size':>10} {'PyLSE Time(s)':>13} {'Size x':>7} "
        f"{'Time x':>9} {'Work x':>9}"
    )
    lines = ["Table 2: PyLSE vs schematic-level simulation", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:<16} {r.schematic_lines:>11} {r.schematic_seconds:>13.3f} "
            f"{r.pylse_size:>10} {r.pylse_seconds:>13.6f} "
            f"{r.size_ratio:>7.1f} {r.time_ratio:>9.0f} {r.work_ratio:>9.0f}"
        )
    avg_size = sum(r.size_ratio for r in rows) / len(rows)
    avg_time = sum(r.time_ratio for r in rows) / len(rows)
    avg_work = sum(r.work_ratio for r in rows) / len(rows)
    lines.append(
        f"{'average':<16} {'':>11} {'':>13} {'':>10} {'':>13} "
        f"{avg_size:>7.1f} {avg_time:>9.0f} {avg_work:>9.0f}"
    )
    return "\n".join(lines)


def main() -> str:
    report = render(run())
    print(report)
    return report
