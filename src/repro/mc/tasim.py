"""A concrete-time executor for TA networks: the "UPPAAL simulator" check.

Section 5.3: "Once in UPPAAL, we checked that their internal simulator
agrees with ours from an input/output perspective." This module reproduces
that check offline: it *runs* a translated TA network with concrete clock
valuations — at each step firing the earliest-enabled action — and records
every send on a circuit-output channel. :func:`ta_events` then compares
directly against ``Simulation.simulate()``'s events.

The executor resolves the nondeterminism UPPAAL's simulator resolves
interactively: among actions enabled at the same earliest instant it picks
deterministically (internal actions first, then by automaton/edge order).
For the translated networks this matches the discrete-event simulator's
deterministic tie-breaking on every shipped design (asserted by
``tests/test_tasim.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import PylseError
from ..ta.automaton import SCALE, Constraint, Edge, TANetwork, TimedAutomaton


@dataclass
class TARun:
    """The observable outcome of one concrete execution."""

    #: channel -> send instants, in scaled integer time units
    sends: Dict[str, List[int]] = field(default_factory=dict)
    steps: int = 0
    final_time: int = 0
    #: error locations entered, if any (execution stops at the first)
    error: Optional[str] = None


class TASimulator:
    """Earliest-action concrete execution of a TA network."""

    def __init__(self, network: TANetwork):
        self.network = network
        self.automata = network.automata
        self.loc_index = [
            {loc: k for k, loc in enumerate(ta.locations)} for ta in self.automata
        ]

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 100_000) -> TARun:
        clocks: Dict[str, float] = {c: 0.0 for c in self.network.all_clocks()}
        locs: List[str] = [ta.initial for ta in self.automata]
        time = 0.0
        result = TARun(sends={}, steps=0)

        for _ in range(max_steps):
            action = self._earliest_action(locs, clocks, time)
            if action is None:
                break
            fire_time, edges = action
            # Advance every clock by the elapsed delay.
            delta = fire_time - time
            for name in clocks:
                clocks[name] += delta
            time = fire_time
            channel: Optional[str] = None
            for ta_index, edge in edges:
                for clock in edge.resets:
                    clocks[clock] = 0.0
                locs[ta_index] = edge.target
                if edge.action is not None and edge.action.kind == "!":
                    channel = edge.action.channel
                ta = self.automata[ta_index]
                if edge.target in ta.error_locations:
                    result.error = f"{ta.name}.{edge.target}"
            if channel is not None and channel in self.network.channels:
                result.sends.setdefault(channel, []).append(round(time))
            result.steps += 1
            if result.error:
                break
        else:
            raise PylseError(f"TA execution exceeded {max_steps} steps")
        result.final_time = round(time)
        return result

    # ------------------------------------------------------------------
    def _earliest_action(self, locs, clocks, now):
        """The earliest-enabled internal edge or sync pair, if any."""
        best_time = math.inf
        best_edges: Optional[List[Tuple[int, Edge]]] = None

        # The latest instant every current invariant still allows.
        deadline = math.inf
        for ta_index, ta in enumerate(self.automata):
            for constraint in ta.invariants.get(locs[ta_index], ()):
                upper = self._upper_bound(constraint, clocks, now)
                deadline = min(deadline, upper)

        def consider(edges: List[Tuple[int, Edge]]):
            nonlocal best_time, best_edges
            earliest = now
            for ta_index, edge in edges:
                t = self._earliest_satisfy(edge.guard, clocks, now)
                if t is None:
                    return
                earliest = max(earliest, t)
            # All guards must be simultaneously satisfiable at `earliest`
            # (guards are conjunctions of per-clock bounds; taking the max
            # of lower bounds and re-checking upper bounds suffices).
            for ta_index, edge in edges:
                if not self._satisfied_at(edge.guard, clocks, now, earliest):
                    return
            if earliest > deadline + 1e-9:
                return
            if earliest < best_time - 1e-9:
                best_time = earliest
                best_edges = edges

        for ta_index, ta in enumerate(self.automata):
            for edge in ta.edges:
                if edge.source != locs[ta_index] or edge.action is not None:
                    continue
                consider([(ta_index, edge)])
        # Binary synchronizations.
        for si, sender_ta in enumerate(self.automata):
            for send in sender_ta.edges:
                if (
                    send.source != locs[si]
                    or send.action is None
                    or send.action.kind != "!"
                ):
                    continue
                for ri, recv_ta in enumerate(self.automata):
                    if ri == si:
                        continue
                    for recv in recv_ta.edges:
                        if (
                            recv.source != locs[ri]
                            or recv.action is None
                            or recv.action.kind != "?"
                            or recv.action.channel != send.action.channel
                        ):
                            continue
                        consider([(si, send), (ri, recv)])
        if best_edges is None:
            return None
        return best_time, best_edges

    @staticmethod
    def _earliest_satisfy(guard, clocks, now) -> Optional[float]:
        """Earliest T >= now at which the conjunction can hold, or None."""
        earliest = now
        for constraint in guard:
            value_now = clocks[constraint.clock]
            if constraint.op in (">=", ">", "=="):
                # clock(T) = value_now + (T - now) >= k
                need = constraint.value - value_now + now
                if constraint.op == ">":
                    need += 1e-6
                earliest = max(earliest, need)
        # Check upper bounds at that instant.
        for constraint in guard:
            value_at = clocks[constraint.clock] + (earliest - now)
            if constraint.op == "<=" and value_at > constraint.value + 1e-9:
                return None
            if constraint.op == "<" and value_at >= constraint.value - 1e-9:
                return None
            if constraint.op == "==" and abs(value_at - constraint.value) > 1e-9:
                return None
        return earliest

    @staticmethod
    def _satisfied_at(guard, clocks, now, when) -> bool:
        for constraint in guard:
            value = clocks[constraint.clock] + (when - now)
            if constraint.op == ">=" and value < constraint.value - 1e-9:
                return False
            if constraint.op == ">" and value <= constraint.value + 1e-9:
                return False
            if constraint.op == "<=" and value > constraint.value + 1e-9:
                return False
            if constraint.op == "<" and value >= constraint.value - 1e-9:
                return False
            if constraint.op == "==" and abs(value - constraint.value) > 1e-9:
                return False
        return True

    @staticmethod
    def _upper_bound(constraint: Constraint, clocks, now) -> float:
        """Latest absolute time an invariant constraint allows."""
        value_now = clocks[constraint.clock]
        if constraint.op in ("<=", "<", "=="):
            return now + (constraint.value - value_now)
        return math.inf


def ta_events(network: TANetwork, max_steps: int = 100_000) -> Dict[str, List[float]]:
    """Concrete-execute the network; output-channel sends in picoseconds."""
    run = TASimulator(network).run(max_steps)
    if run.error:
        raise PylseError(f"TA execution entered error location {run.error}")
    return {
        channel: [t / SCALE for t in times]
        for channel, times in run.sends.items()
    }
