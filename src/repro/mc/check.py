"""High-level verification entry points (Section 5.3's workflow).

``verify_design`` packages the full pipeline: simulate the circuit, translate
it to TA, auto-generate Query 1 (output correctness) and Query 2 (no error
states), and run the bundled zone-graph checker — the offline stand-in for
``verifyta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.circuit import Circuit, working_circuit
from ..core.ir import compile_circuit
from ..core.simulation import Events, Simulation
from ..ta.queries import (
    Query,
    correctness_query,
    deadlock_query,
    no_error_query,
    output_fires_query,
)
from ..ta.translate import TranslationResult, translate_circuit
from .explorer import CheckResult, ModelChecker


@dataclass
class VerificationReport:
    """Everything produced by one verification run."""

    events: Events
    translation: TranslationResult
    query1: Query
    query2: Query
    result: CheckResult

    @property
    def ok(self) -> bool:
        return self.result.satisfied

    def summary(self) -> str:
        stats = self.translation.cell_stats()
        if self.ok:
            status = "SATISFIED"
        elif self.result.completed:
            status = "VIOLATED"
        else:
            status = f"INCOMPLETE (truncated: {self.result.truncation_reason})"
        return (
            f"{status}: {self.result.states_explored} states in "
            f"{self.result.elapsed_seconds:.2f}s "
            f"(TA={stats['ta']}, locations={stats['locations']}, "
            f"transitions={stats['transitions']}, channels={stats['channels']})"
        )


def verify_design(
    circuit: Optional[Circuit] = None,
    queries: Sequence[str] = ("query1", "query2"),
    until: Optional[float] = None,
    max_states: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> VerificationReport:
    """Simulate, translate, and model-check the circuit.

    ``queries`` selects which auto-generated properties to check — any of
    ``"query1"`` (output times), ``"query2"`` (no error states),
    ``"liveness"`` (E<> outputs fire at all), and ``"deadlock"``
    (``A[] not deadlock`` — expected to trip on finite schedules; see
    :func:`repro.ta.queries.deadlock_query`). ``until`` bounds both the
    reference simulation and the environment TAs' schedules;
    ``max_states``/``time_limit`` bound the exploration (Table 3 marks the
    designs where UPPAAL hit this wall with an infinity sign).
    """
    circuit = circuit if circuit is not None else working_circuit()
    # Compile once up front: the simulation and the TA translation both
    # consume the memoized CompiledCircuit instead of re-elaborating (the
    # same cleanup the other backends got when the IR landed).
    compiled = compile_circuit(circuit)
    events = Simulation(compiled).simulate(until=until)
    translation = translate_circuit(compiled.circuit, until=until)
    q1 = correctness_query(circuit, translation, events)
    q2 = no_error_query(translation)
    selected = []
    if "query1" in queries:
        selected.append(q1)
    if "query2" in queries:
        selected.append(q2)
    if "liveness" in queries:
        selected.append(output_fires_query(circuit, translation))
    if "deadlock" in queries:
        selected.append(deadlock_query())
    checker = ModelChecker(
        translation.network, max_states=max_states, time_limit=time_limit
    )
    result = checker.run(selected)
    return VerificationReport(
        events=events,
        translation=translation,
        query1=q1,
        query2=q2,
        result=result,
    )
