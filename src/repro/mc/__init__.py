"""A zone-based model checker for the TA networks of :mod:`repro.ta`.

This is the offline substitute for UPPAAL's ``verifyta`` (see DESIGN.md):
the same zone-graph algorithm (DBMs, inclusion subsumption, ExtraM
extrapolation) deciding the same auto-generated queries.
"""

from .check import VerificationReport, verify_design
from .dbm import DBM, INF, bound, bound_is_strict, bound_value, zero_zone
from .explorer import (
    CheckResult,
    Coverage,
    ModelChecker,
    RaceCandidate,
    Violation,
)
from .tasim import TARun, TASimulator, ta_events

__all__ = [
    "CheckResult",
    "Coverage",
    "DBM",
    "INF",
    "ModelChecker",
    "RaceCandidate",
    "VerificationReport",
    "TARun",
    "TASimulator",
    "Violation",
    "ta_events",
    "bound",
    "bound_is_strict",
    "bound_value",
    "verify_design",
    "zero_zone",
]
