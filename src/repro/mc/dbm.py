"""Difference Bound Matrices: the zone representation for TA model checking.

A zone over clocks ``x_1..x_n`` (plus the reference clock ``x_0 = 0``) is a
conjunction of difference constraints ``x_i - x_j <= c`` / ``< c``. The DBM
stores one encoded bound per ordered pair; in canonical (all-pairs shortest
path) form, emptiness, inclusion and projection are trivial.

Encoding (the classic UPPAAL trick): a bound ``(c, <=)`` is the integer
``2c + 1``; a bound ``(c, <)`` is ``2c``; "no bound" is :data:`INF`. Bound
addition and comparison then reduce to integer arithmetic and ``min``.

All matrices are numpy ``int64``; rows index ``i`` of ``x_i - x_j <= b``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core._np import np
from ..core.errors import PylseError

#: "No bound" sentinel; large enough that encoded addition cannot overflow.
INF = np.int64(1) << 40

#: Encoded bound (0, <=): the diagonal value of every consistent DBM.
LE_ZERO = np.int64(1)


def bound(value: int, strict: bool) -> int:
    """Encode a bound: ``(value, <)`` if strict else ``(value, <=)``."""
    return 2 * value + (0 if strict else 1)


def bound_value(encoded: int) -> int:
    """The numeric constant of an encoded bound."""
    return int(encoded) >> 1


def bound_is_strict(encoded: int) -> bool:
    return (int(encoded) & 1) == 0


def add_bounds(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized encoded-bound addition (with INF absorption)."""
    result = (np.right_shift(a, 1) + np.right_shift(b, 1)) * 2 + (a & 1) * (b & 1)
    return np.where((a >= INF) | (b >= INF), INF, result)


class DBM:
    """A zone over ``n`` real clocks, kept in canonical form by callers.

    Index 0 is the reference clock; user clocks are 1..n. The matrix entry
    ``m[i, j]`` encodes the bound on ``x_i - x_j``.
    """

    __slots__ = ("m", "n")

    def __init__(self, n: int, matrix: Optional[np.ndarray] = None):
        self.n = n
        if matrix is not None:
            self.m = matrix
        else:
            # All clocks equal to zero.
            self.m = np.full((n + 1, n + 1), LE_ZERO, dtype=np.int64)

    def copy(self) -> "DBM":
        return DBM(self.n, self.m.copy())

    # ------------------------------------------------------------------
    # canonical form and emptiness
    # ------------------------------------------------------------------
    def canonicalize(self) -> "DBM":
        """Floyd–Warshall closure (in place); returns self."""
        m = self.m
        for k in range(self.n + 1):
            via_k = add_bounds(m[:, k : k + 1], m[k : k + 1, :])
            np.minimum(m, via_k, out=m)
        return self

    def is_empty(self) -> bool:
        """A canonical DBM is empty iff some diagonal entry is negative."""
        return bool((np.diagonal(self.m) < LE_ZERO).any())

    # ------------------------------------------------------------------
    # operations (each returns self; callers copy() first when needed)
    # ------------------------------------------------------------------
    def up(self) -> "DBM":
        """Delay: remove upper bounds on all clocks (future closure)."""
        self.m[1:, 0] = INF
        return self

    def reset(self, clock: int) -> "DBM":
        """Set clock ``clock`` to zero (matrix must be canonical)."""
        if not 1 <= clock <= self.n:
            raise PylseError(f"Clock index {clock} out of range 1..{self.n}")
        self.m[clock, :] = self.m[0, :]
        self.m[:, clock] = self.m[:, 0]
        self.m[clock, clock] = LE_ZERO
        return self

    def constrain(self, i: int, j: int, encoded: int) -> "DBM":
        """Intersect with ``x_i - x_j <= / < c`` (re-canonicalize afterwards)."""
        if encoded < self.m[i, j]:
            self.m[i, j] = encoded
        return self

    def constrain_upper(self, clock: int, value: int, strict: bool) -> "DBM":
        """``x_clock <= value`` (or ``<``)."""
        return self.constrain(clock, 0, bound(value, strict))

    def constrain_lower(self, clock: int, value: int, strict: bool) -> "DBM":
        """``x_clock >= value`` (or ``>``), i.e. ``x_0 - x_clock <= -value``."""
        return self.constrain(0, clock, bound(-value, strict))

    # ------------------------------------------------------------------
    # queries (on canonical DBMs)
    # ------------------------------------------------------------------
    def includes(self, other: "DBM") -> bool:
        """True iff ``other``'s zone is a subset of this zone."""
        return bool((other.m <= self.m).all())

    def clock_bounds(self, clock: int) -> Tuple[int, Optional[int]]:
        """The (lower, upper) numeric range of a clock; upper None if unbounded."""
        lower = -bound_value(self.m[0, clock])
        upper_encoded = self.m[clock, 0]
        upper = None if upper_encoded >= INF else bound_value(upper_encoded)
        return lower, upper

    def clock_is_pinned(self, clock: int) -> bool:
        """True iff the zone fixes the clock to a single value."""
        lower, upper = self.clock_bounds(clock)
        return upper is not None and lower == upper

    # ------------------------------------------------------------------
    # extrapolation (termination)
    # ------------------------------------------------------------------
    def extrapolate(self, max_constants: Sequence[int]) -> "DBM":
        """Classic ExtraM abstraction with per-clock maximum constants.

        ``max_constants[i]`` is the largest constant clock ``i`` is ever
        compared against (index 0 must be 0). Bounds above ``M(i)`` are
        dropped to INF; lower bounds below ``-M(j)`` are relaxed. The result
        must be re-canonicalized.
        """
        m = self.m
        maxima = np.asarray(max_constants, dtype=np.int64)
        upper_limit = 2 * maxima[:, None] + 1          # (M(i), <=) per row
        lower_limit = -2 * maxima[None, :]             # (-M(j), <) per column
        too_high = (m > upper_limit) & (m < INF)
        too_low = m < lower_limit
        m[too_high] = INF
        m[too_low] = np.broadcast_to(lower_limit, m.shape)[too_low]
        np.fill_diagonal(m, LE_ZERO)
        m[0, 1:] = np.minimum(m[0, 1:], LE_ZERO)       # clocks are nonnegative
        return self

    # ------------------------------------------------------------------
    def key(self) -> bytes:
        """Hashable canonical-form fingerprint."""
        return self.m.tobytes()

    def __repr__(self) -> str:
        ranges = ", ".join(
            f"x{i}:[{self.clock_bounds(i)[0]}, "
            f"{self.clock_bounds(i)[1] if self.clock_bounds(i)[1] is not None else 'inf'}]"
            for i in range(1, self.n + 1)
        )
        return f"DBM({ranges})"


def zero_zone(n: int) -> DBM:
    """The zone where every clock equals zero (already canonical)."""
    return DBM(n)
