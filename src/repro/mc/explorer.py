"""Zone-graph reachability for TA networks: the bundled model checker.

UPPAAL is unavailable offline, so this module re-implements the standard
forward zone-graph algorithm it is built on (see DESIGN.md):

* symbolic states are (location vector, canonical DBM zone) pairs, stored
  delay-closed (every state includes its time successors up to invariants);
* successors come from internal edges and binary channel handshakes
  (sender ``ch!`` + receiver ``ch?`` in two different automata, guards
  conjoined, resets unioned);
* a passed list with zone-inclusion subsumption prunes the search;
* ExtraM extrapolation over per-clock maximum constants guarantees
  termination even though the global clock is never reset.

The checker decides the paper's two query shapes while exploring:
**Query 2** (no error location reachable) and **Query 1** (a firing TA's
``fta_end`` location — occupied exactly at the instant an output pulse is
emitted — only ever coincides with an allowed global time).
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from ..ta.automaton import Constraint, Edge, TANetwork
from ..ta.queries import Query
from .dbm import DBM, bound, zero_zone

GuardOps = Tuple[Tuple[int, int, int], ...]  # (i, j, encoded bound)


#: One counterexample step: (transition label, earliest global time,
#: latest global time) — times are scaled integers (see
#: :func:`repro.ta.automaton.scale_time`); the upper bound is ``None``
#: when the state's invariants leave it open.
TraceStep = Tuple[str, int, Optional[int]]


@dataclass
class Violation:
    """One property failure found during exploration.

    ``trace`` is the counterexample: the sequence of fired transitions from
    the initial state to the violating one (UPPAAL likewise "will return a
    trace showing the path that led to the particular error state",
    Section 5.3). ``steps`` is the same path with the global-clock window
    of each intermediate state attached — the raw material a concrete
    witness schedule is extracted from — and ``locations`` snapshots the
    full location vector of the violating state.
    """

    query: str            # 'query1', 'query2', or 'no_deadlock'
    automaton: str
    location: str
    detail: str
    trace: List[str] = field(default_factory=list)
    steps: List[TraceStep] = field(default_factory=list)
    locations: List[Tuple[str, str]] = field(default_factory=list)

    def format_trace(self) -> str:
        if not self.trace:
            return "(initial state)"
        return "\n".join(f"  {k + 1}. {step}" for k, step in enumerate(self.trace))


@dataclass(frozen=True)
class RaceCandidate:
    """Two pulses that can reach one cell at the same instant.

    ``automaton`` is the receiving cell's main TA (= the node name),
    ``location`` the TA location it occupies, and ``channel_a``/
    ``channel_b`` the two wire channels whose enabled sends are
    simultaneously feasible — the zone conjunction of both send guards is
    non-empty over ``window`` (scaled global-clock bounds). Whether the
    arrival *order* matters is a machine-level question the PL402 lint
    rule answers on top of this purely reachability-level fact.
    """

    automaton: str
    location: str
    channel_a: str
    channel_b: str
    window: Tuple[int, Optional[int]]


@dataclass(frozen=True)
class Coverage:
    """What the exploration actually touched.

    ``fired_edges`` holds ``(automaton, source, target)`` name triples of
    every edge that produced at least one feasible successor (subsumed or
    not); when a run **completed**, an edge absent from the set provably
    never fires under the modeled environment — the PL401 evidence.
    ``visited_locations`` maps each automaton to the locations it occupied
    in some reachable state.
    """

    fired_edges: FrozenSet[Tuple[str, str, str]]
    visited_locations: Dict[str, FrozenSet[str]]


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    states_explored: int
    transitions_fired: int
    elapsed_seconds: float
    completed: bool
    violations: List[Violation] = field(default_factory=list)
    #: Why exploration stopped early: ``"max_states"`` or ``"time_limit"``
    #: (``None`` when it ran to exhaustion). Explicit, never silent — the
    #: budget semantics PL4xx reports as ``truncated``.
    truncation_reason: Optional[str] = None
    #: Simultaneous-arrival candidates (collected when ``run`` is asked to).
    races: List[RaceCandidate] = field(default_factory=list)
    coverage: Optional[Coverage] = None

    @property
    def satisfied(self) -> bool:
        """True iff exploration finished and found no violation."""
        return self.completed and not self.violations

    @property
    def truncated(self) -> bool:
        """True when a state or time budget cut the exploration short."""
        return not self.completed

    def violations_for(self, query: str) -> List[Violation]:
        return [v for v in self.violations if v.query == query]


class _CompiledEdge:
    """An edge with guards/resets/targets resolved to integer indices."""

    __slots__ = ("ta_index", "source", "target", "guard_ops", "resets", "edge")

    def __init__(self, ta_index: int, source: int, target: int,
                 guard_ops: GuardOps, resets: Tuple[int, ...], edge: Edge):
        self.ta_index = ta_index
        self.source = source
        self.target = target
        self.guard_ops = guard_ops
        self.resets = resets
        self.edge = edge


class ModelChecker:
    """Explore a TA network's zone graph and decide Query 1 / Query 2.

    ``global_slack`` widens the extrapolation constant of never-reset clocks
    (the global clock and input-schedule clocks) beyond the largest constant
    that appears in any constraint, so exact output instants stay
    representable throughout the schedule.
    """

    def __init__(
        self,
        network: TANetwork,
        max_states: Optional[int] = None,
        time_limit: Optional[float] = None,
        global_slack: int = 2000,
        use_inclusion: bool = True,
    ):
        self.network = network
        self.max_states = max_states
        self.time_limit = time_limit
        self.global_slack = global_slack
        #: When False, the passed list only deduplicates exact zones (no
        #: subsumption) — the ablation of bench_ablation_mc.py.
        self.use_inclusion = use_inclusion
        self._compile()

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        net = self.network
        self.clock_index: Dict[str, int] = {
            name: k + 1 for k, name in enumerate(net.all_clocks())
        }
        self.n_clocks = len(self.clock_index)
        self.global_idx = self.clock_index[net.global_clock]
        self.ta_names = [ta.name for ta in net.automata]
        #: automaton name -> index, built once here; the query compilers
        #: below share it instead of rebuilding their own ``{name: k}``
        #: dicts (the explorer-side twin of the IR's ``node_index``).
        self.ta_index: Dict[str, int] = {
            name: k for k, name in enumerate(self.ta_names)
        }
        self.ta_roles = [ta.role for ta in net.automata]
        self.loc_index: List[Dict[str, int]] = []
        self.loc_names: List[List[str]] = []
        self.initial_locs: List[int] = []
        self.invariant_ops: List[List[GuardOps]] = []
        self.error_locs: List[FrozenSet[int]] = []
        self.internal_edges: List[List[_CompiledEdge]] = []
        self.senders: Dict[str, List[_CompiledEdge]] = {}
        self.receivers: Dict[str, List[_CompiledEdge]] = {}
        max_const = [0] * (self.n_clocks + 1)

        def note_constant(constraint: Constraint) -> None:
            idx = self.clock_index[constraint.clock]
            max_const[idx] = max(max_const[idx], abs(constraint.value))

        for ta_index, ta in enumerate(net.automata):
            index = {loc: k for k, loc in enumerate(ta.locations)}
            self.loc_index.append(index)
            self.loc_names.append(list(ta.locations))
            self.initial_locs.append(index[ta.initial])
            self.error_locs.append(
                frozenset(index[loc] for loc in ta.error_locations)
            )
            inv_ops: List[GuardOps] = []
            for loc in ta.locations:
                ops: List[Tuple[int, int, int]] = []
                for constraint in ta.invariants.get(loc, ()):
                    note_constant(constraint)
                    ops.extend(self._constraint_ops(constraint))
                inv_ops.append(tuple(ops))
            self.invariant_ops.append(inv_ops)
            self.internal_edges.append([])
            for edge in ta.edges:
                for constraint in edge.guard:
                    note_constant(constraint)
                compiled = _CompiledEdge(
                    ta_index,
                    index[edge.source],
                    index[edge.target],
                    tuple(
                        op
                        for constraint in edge.guard
                        for op in self._constraint_ops(constraint)
                    ),
                    tuple(self.clock_index[c] for c in edge.resets),
                    edge,
                )
                if edge.action is None:
                    self.internal_edges[ta_index].append(compiled)
                elif edge.action.kind == "!":
                    self.senders.setdefault(edge.action.channel, []).append(compiled)
                else:
                    self.receivers.setdefault(edge.action.channel, []).append(compiled)

        # Per (automaton, location): the channels a pulse could be consumed
        # from there — the receiver half of the race-candidate test.
        self.recv_channels: List[Dict[int, List[str]]] = [
            {} for _ in net.automata
        ]
        for channel, recvs in self.receivers.items():
            for recv in recvs:
                bucket = self.recv_channels[recv.ta_index].setdefault(
                    recv.source, []
                )
                if channel not in bucket:
                    bucket.append(channel)

        # Never-reset clocks track absolute time; give them slack so exact
        # instants survive extrapolation for the whole schedule.
        reset_clocks = {
            self.clock_index[c]
            for ta in net.automata
            for edge in ta.edges
            for c in edge.resets
        }
        biggest = max(max_const) if max_const else 0
        for idx in range(1, self.n_clocks + 1):
            if idx not in reset_clocks:
                max_const[idx] = biggest + self.global_slack
        self.max_constants = max_const

    def _constraint_ops(self, constraint: Constraint) -> List[Tuple[int, int, int]]:
        i = self.clock_index[constraint.clock]
        v = constraint.value
        if constraint.op == "<=":
            return [(i, 0, bound(v, False))]
        if constraint.op == "<":
            return [(i, 0, bound(v, True))]
        if constraint.op == ">=":
            return [(0, i, bound(-v, False))]
        if constraint.op == ">":
            return [(0, i, bound(-v, True))]
        if constraint.op == "==":
            return [(i, 0, bound(v, False)), (0, i, bound(-v, False))]
        raise PylseError(f"Unknown constraint operator {constraint.op!r}")

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def run(
        self,
        queries: Sequence[Query] = (),
        collect_races: bool = False,
    ) -> CheckResult:
        """Explore the reachable zone graph, checking ``queries`` on the fly.

        ``collect_races=True`` additionally records, for every explored
        state, pairs of distinct channels whose pulses can arrive at one
        cell at the same instant (see :class:`RaceCandidate`) — the
        reachability half of the PL402 input-order-race lint rule.
        """
        started = _time.monotonic()
        fta_allowed = self._compile_query1(queries)
        check_errors = any(q.kind == "no_errors" for q in queries)
        check_deadlock = any(q.kind == "no_deadlock" for q in queries)
        error_filter = self._compile_query2(queries)
        reach_targets = self._compile_reachable(queries)
        reached: set = set()

        initial_zone = zero_zone(self.n_clocks)
        locvec = tuple(self.initial_locs)
        initial_zone = self._settle(initial_zone, locvec)
        if initial_zone is None:
            raise PylseError("Initial state violates invariants")

        passed: Dict[Tuple[int, ...], List[DBM]] = {locvec: [initial_zone]}
        # Per explored state: (parent state index, transition label, global
        # clock window on entry), for counterexample reconstruction with
        # concrete times.
        lo, hi = initial_zone.clock_bounds(self.global_idx)
        provenance: List[Tuple[int, Optional[str], int, Optional[int]]] = [
            (-1, None, lo, hi)
        ]
        waiting = deque([(locvec, initial_zone, 0)])
        violations: List[Violation] = []
        races: List[RaceCandidate] = []
        race_keys: set = set()
        fired_edges: set = set()
        visited: List[set] = [set() for _ in self.ta_names]
        states = 1
        fired = 0
        self._note_visited(locvec, visited)
        self._check_state(
            locvec, initial_zone, fta_allowed, check_errors, error_filter,
            violations, provenance, 0,
        )
        self._note_reached(locvec, reach_targets, reached)
        completed = True
        truncation_reason: Optional[str] = None

        while waiting:
            if self.max_states is not None and states >= self.max_states:
                completed = False
                truncation_reason = "max_states"
                break
            if (
                self.time_limit is not None
                and _time.monotonic() - started > self.time_limit
            ):
                completed = False
                truncation_reason = "time_limit"
                break
            locvec, zone, state_index = waiting.popleft()
            if collect_races:
                self._collect_races(locvec, zone, race_keys, races)
            any_successor = False
            for new_locvec, new_zone, label, edges in self._successors(
                locvec, zone
            ):
                any_successor = True
                fired += 1
                for compiled in edges:
                    edge = compiled.edge
                    fired_edges.add(
                        (self.ta_names[compiled.ta_index], edge.source,
                         edge.target)
                    )
                bucket = passed.setdefault(new_locvec, [])
                if self.use_inclusion:
                    if any(existing.includes(new_zone) for existing in bucket):
                        continue
                    bucket[:] = [z for z in bucket if not new_zone.includes(z)]
                else:
                    key = new_zone.key()
                    if any(existing.key() == key for existing in bucket):
                        continue
                bucket.append(new_zone)
                lo, hi = new_zone.clock_bounds(self.global_idx)
                provenance.append((state_index, label, lo, hi))
                new_index = len(provenance) - 1
                states += 1
                self._note_visited(new_locvec, visited)
                self._check_state(
                    new_locvec, new_zone, fta_allowed, check_errors,
                    error_filter, violations, provenance, new_index,
                )
                self._note_reached(new_locvec, reach_targets, reached)
                waiting.append((new_locvec, new_zone, new_index))
            if check_deadlock and not any_successor:
                violations.append(
                    Violation(
                        query="no_deadlock",
                        automaton="(network)",
                        location=self._describe_locvec(locvec),
                        detail="state has no action successor",
                        trace=self._trace(provenance, state_index),
                        steps=self._trace_steps(provenance, state_index),
                        locations=self._locvec_pairs(locvec),
                    )
                )

        if reach_targets and completed and not reached:
            locations = ", ".join(
                f"{self.ta_names[ta]}.{self.loc_names[ta][loc]}"
                for ta, loc in sorted(reach_targets)
            )
            violations.append(
                Violation(
                    query="reachable",
                    automaton="(network)",
                    location=locations,
                    detail="E<> unsatisfied: none of the locations is reachable",
                )
            )
        return CheckResult(
            states_explored=states,
            transitions_fired=fired,
            elapsed_seconds=_time.monotonic() - started,
            completed=completed,
            violations=violations,
            truncation_reason=truncation_reason,
            races=races,
            coverage=Coverage(
                fired_edges=frozenset(fired_edges),
                visited_locations={
                    self.ta_names[k]: frozenset(
                        self.loc_names[k][loc] for loc in locs
                    )
                    for k, locs in enumerate(visited)
                },
            ),
        )

    def _note_visited(self, locvec, visited: List[set]) -> None:
        for ta_index, loc in enumerate(locvec):
            visited[ta_index].add(loc)

    def _locvec_pairs(self, locvec) -> List[Tuple[str, str]]:
        return [
            (self.ta_names[k], self.loc_names[k][loc])
            for k, loc in enumerate(locvec)
        ]

    # ------------------------------------------------------------------
    # race candidates (PL402's reachability half)
    # ------------------------------------------------------------------
    def _collect_races(self, locvec, zone, seen: set,
                       out: List[RaceCandidate]) -> None:
        """Record channel pairs deliverable to one cell at a common instant.

        A candidate needs (a) a cell-role automaton whose current location
        can consume pulses from two distinct channels, (b) an enabled
        sender on each, and (c) a non-empty zone once *both* send guards
        are conjoined — i.e. one global instant at which both pulses can
        be in flight. Candidates are deduplicated on (automaton, location,
        channel pair) across the whole run.
        """
        enabled_sends: Dict[str, List[_CompiledEdge]] = {}
        for channel, senders in self.senders.items():
            for send in senders:
                if send.source == locvec[send.ta_index]:
                    enabled_sends.setdefault(channel, []).append(send)
        if len(enabled_sends) < 2:
            return
        for ta_index, role in enumerate(self.ta_roles):
            if role != "cell":
                continue
            receivable = self.recv_channels[ta_index].get(locvec[ta_index])
            if not receivable:
                continue
            live = sorted(ch for ch in receivable if ch in enabled_sends)
            for i, ch_a in enumerate(live):
                for ch_b in live[i + 1:]:
                    key = (ta_index, locvec[ta_index], ch_a, ch_b)
                    if key in seen:
                        continue
                    window = self._simultaneous_window(
                        zone, enabled_sends[ch_a], enabled_sends[ch_b]
                    )
                    if window is None:
                        continue
                    seen.add(key)
                    out.append(RaceCandidate(
                        automaton=self.ta_names[ta_index],
                        location=self.loc_names[ta_index][locvec[ta_index]],
                        channel_a=ch_a,
                        channel_b=ch_b,
                        window=window,
                    ))

    def _simultaneous_window(self, zone: DBM, sends_a, sends_b):
        """Global-clock window where both sends are enabled at once."""
        for send_a in sends_a:
            for send_b in sends_b:
                if send_a.ta_index == send_b.ta_index:
                    continue
                z = zone.copy()
                for edge in (send_a, send_b):
                    for i, j, encoded in edge.guard_ops:
                        z.constrain(i, j, encoded)
                z.canonicalize()
                if not z.is_empty():
                    return z.clock_bounds(self.global_idx)
        return None

    def _compile_reachable(self, queries):
        """Set of (automaton index, location index) for E<> queries."""
        targets = set()
        for q in queries:
            if q.kind != "reachable":
                continue
            for ta_name, loc_name in q.error_locations:
                ta_index = self.ta_index[ta_name]
                targets.add((ta_index, self.loc_index[ta_index][loc_name]))
        return targets

    @staticmethod
    def _note_reached(locvec, reach_targets, reached) -> None:
        if not reach_targets or reached:
            return
        for ta_index, loc in reach_targets:
            if locvec[ta_index] == loc:
                reached.add((ta_index, loc))
                return

    def _describe_locvec(self, locvec) -> str:
        interesting = [
            f"{self.ta_names[k]}.{self.loc_names[k][loc]}"
            for k, loc in enumerate(locvec)
            if self.loc_names[k][loc] != self.network.automata[k].initial
        ]
        return ", ".join(interesting) if interesting else "(all initial)"

    @staticmethod
    def _trace(provenance, state_index) -> List[str]:
        return [label for label, _, _ in
                ModelChecker._trace_steps(provenance, state_index)]

    @staticmethod
    def _trace_steps(provenance, state_index) -> List[TraceStep]:
        """The path to ``state_index`` with global-time windows attached."""
        steps: List[TraceStep] = []
        index = state_index
        while index > 0:
            parent, label, lo, hi = provenance[index]
            if label is not None:
                steps.append((label, lo, hi))
            index = parent
        steps.reverse()
        return steps

    # ------------------------------------------------------------------
    def _successors(self, locvec, zone):
        for ta_index in range(len(self.ta_names)):
            for edge in self.internal_edges[ta_index]:
                if edge.source != locvec[ta_index]:
                    continue
                result = self._fire(zone, locvec, [edge])
                if result is not None:
                    yield (*result, self._label([edge]), (edge,))
        for channel, senders in self.senders.items():
            receivers = self.receivers.get(channel, [])
            for send in senders:
                if send.source != locvec[send.ta_index]:
                    continue
                for recv in receivers:
                    if (
                        recv.ta_index == send.ta_index
                        or recv.source != locvec[recv.ta_index]
                    ):
                        continue
                    result = self._fire(zone, locvec, [send, recv])
                    if result is not None:
                        yield (*result, self._label([send, recv]),
                               (send, recv))

    def _label(self, edges: List[_CompiledEdge]) -> str:
        """Human-readable description of a fired (set of) edge(s)."""
        parts = []
        for compiled in edges:
            edge = compiled.edge
            action = str(edge.action) if edge.action else "tau"
            parts.append(
                f"{self.ta_names[compiled.ta_index]}: "
                f"{edge.source} --{action}--> {edge.target}"
            )
        return " | ".join(parts)

    def _fire(self, zone: DBM, locvec, edges: List[_CompiledEdge]):
        z = zone.copy()
        for edge in edges:
            for i, j, encoded in edge.guard_ops:
                z.constrain(i, j, encoded)
        z.canonicalize()
        if z.is_empty():
            return None
        for edge in edges:
            for clock in edge.resets:
                z.reset(clock)
        new_locvec = list(locvec)
        for edge in edges:
            new_locvec[edge.ta_index] = edge.target
        new_locvec = tuple(new_locvec)
        z = self._settle(z, new_locvec)
        if z is None:
            return None
        return new_locvec, z

    def _settle(self, z: DBM, locvec) -> Optional[DBM]:
        """Apply invariants, delay-close, re-apply, extrapolate, canonicalize."""
        self._apply_invariants(z, locvec)
        z.canonicalize()
        if z.is_empty():
            return None
        z.up()
        self._apply_invariants(z, locvec)
        z.canonicalize()
        if z.is_empty():
            return None
        z.extrapolate(self.max_constants)
        z.canonicalize()
        return z

    def _apply_invariants(self, z: DBM, locvec) -> None:
        for ta_index, loc in enumerate(locvec):
            for i, j, encoded in self.invariant_ops[ta_index][loc]:
                z.constrain(i, j, encoded)

    # ------------------------------------------------------------------
    # property checks
    # ------------------------------------------------------------------
    def _compile_query1(self, queries):
        """automaton index -> (location index, allowed global times)."""
        fta_allowed: Dict[int, Tuple[int, FrozenSet[int]]] = {}
        for q in queries:
            if q.kind != "output_times":
                continue
            for prop in q.properties:
                ta_index = self.ta_index.get(prop.automaton)
                if ta_index is None:
                    raise PylseError(
                        f"Query 1 names unknown automaton {prop.automaton!r}"
                    )
                loc = self.loc_index[ta_index].get(prop.location)
                if loc is None:
                    raise PylseError(
                        f"Query 1 names unknown location "
                        f"{prop.automaton}.{prop.location}"
                    )
                fta_allowed[ta_index] = (loc, frozenset(prop.allowed_times))
        return fta_allowed

    def _compile_query2(self, queries):
        """Set of (automaton index, location index) to treat as errors."""
        pairs = set()
        for q in queries:
            if q.kind != "no_errors":
                continue
            for ta_name, loc_name in q.error_locations:
                ta_index = self.ta_index[ta_name]
                pairs.add((ta_index, self.loc_index[ta_index][loc_name]))
        return pairs

    def _check_state(
        self, locvec, zone, fta_allowed, check_errors, error_filter,
        violations, provenance, state_index,
    ) -> None:
        if check_errors:
            for ta_index, loc in enumerate(locvec):
                if (ta_index, loc) in error_filter or (
                    not error_filter and loc in self.error_locs[ta_index]
                ):
                    violations.append(
                        Violation(
                            query="query2",
                            automaton=self.ta_names[ta_index],
                            location=self.loc_names[ta_index][loc],
                            detail="error location is reachable",
                            trace=self._trace(provenance, state_index),
                            steps=self._trace_steps(provenance, state_index),
                            locations=self._locvec_pairs(locvec),
                        )
                    )
        if fta_allowed:
            global_idx = self.clock_index[self.network.global_clock]
            for ta_index, (end_loc, allowed) in fta_allowed.items():
                if locvec[ta_index] != end_loc:
                    continue
                lower, upper = zone.clock_bounds(global_idx)
                if upper is None or lower != upper:
                    violations.append(
                        Violation(
                            query="query1",
                            automaton=self.ta_names[ta_index],
                            location=self.loc_names[ta_index][end_loc],
                            detail=(
                                f"output instant not unique: global in "
                                f"[{lower}, {upper}]"
                            ),
                            trace=self._trace(provenance, state_index),
                            steps=self._trace_steps(provenance, state_index),
                            locations=self._locvec_pairs(locvec),
                        )
                    )
                elif lower not in allowed:
                    violations.append(
                        Violation(
                            query="query1",
                            automaton=self.ta_names[ta_index],
                            location=self.loc_names[ta_index][end_loc],
                            detail=(
                                f"output at global == {lower}, allowed "
                                f"{sorted(allowed)}"
                            ),
                            trace=self._trace(provenance, state_index),
                            steps=self._trace_steps(provenance, state_index),
                            locations=self._locvec_pairs(locvec),
                        )
                    )
