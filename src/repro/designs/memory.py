"""The Figure 9 memory hole: 16 addresses x 2 bits, as a Functional element.

This is the paper's showcase of the Hole Description level: a plain Python
dictionary wrapped in a pulse-communicating interface. Address, data and
write-enable pulses accumulate between clock pulses; on a clock pulse, the
write (if enabled) is committed, the read value is emitted on the dual-bit
output, and the latches reset for the next period.

:func:`make_memory` is a factory so each instantiation gets private state.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.functional import hole

#: Input port names, matching Figure 9.
MEMORY_INPUTS = [
    "ra3", "ra2", "ra1", "ra0",
    "wa3", "wa2", "wa1", "wa0",
    "d1", "d0", "we", "clk",
]
MEMORY_OUTPUTS = ["q1", "q0"]


def make_memory(delay: float = 5.0):
    """Create a fresh 16x2 memory hole; returns its instantiation function.

    The returned callable takes twelve input wires (in ``MEMORY_INPUTS``
    order) and yields the two output wires ``(q1, q0)``::

        memory = make_memory()
        q1, q0 = memory(ra3, ra2, ra1, ra0, wa3, wa2, wa1, wa0,
                        d1, d0, we, clk)
    """
    mem = defaultdict(lambda: 0)
    state = {"raddr": 0, "waddr": 0, "wenable": 0, "data": 0}

    @hole(delay=delay, inputs=MEMORY_INPUTS, outputs=MEMORY_OUTPUTS)
    def memory(ra3, ra2, ra1, ra0, wa3, wa2, wa1, wa0, d1, d0, we, clk, time):
        state["raddr"] |= ra3 * 8 + ra2 * 4 + ra1 * 2 + ra0
        state["waddr"] |= wa3 * 8 + wa2 * 4 + wa1 * 2 + wa0
        state["data"] |= d1 * 2 + d0
        state["wenable"] |= we
        if clk:
            if state["wenable"]:
                mem[state["waddr"]] = state["data"]
            value = mem[state["raddr"]]
            state["raddr"] = state["waddr"] = state["wenable"] = state["data"] = 0
        else:
            value = 0
        return ((value >> 1) & 1), value & 1

    memory.backing_store = mem
    return memory
