"""The Figure 9 memory hole: 16 addresses x 2 bits, as a Functional element.

This is the paper's showcase of the Hole Description level: a plain Python
dictionary wrapped in a pulse-communicating interface. Address, data and
write-enable pulses accumulate between clock pulses; on a clock pulse, the
write (if enabled) is committed, the read value is emitted on the dual-bit
output, and the latches reset for the next period.

:func:`make_memory` is a factory so each instantiation gets private state.
:func:`make_memory_n` generalizes it to ``words x bits`` for the design
explorer; ``make_memory()`` is exactly ``make_memory_n(16, 2)`` with the
Figure 9 port names.
"""

from __future__ import annotations

from collections import defaultdict
from typing import List

from ..core.errors import PylseError
from ..core.functional import hole

#: Input port names, matching Figure 9.
MEMORY_INPUTS = [
    "ra3", "ra2", "ra1", "ra0",
    "wa3", "wa2", "wa1", "wa0",
    "d1", "d0", "we", "clk",
]
MEMORY_OUTPUTS = ["q1", "q0"]


def make_memory(delay: float = 5.0):
    """Create a fresh 16x2 memory hole; returns its instantiation function.

    The returned callable takes twelve input wires (in ``MEMORY_INPUTS``
    order) and yields the two output wires ``(q1, q0)``::

        memory = make_memory()
        q1, q0 = memory(ra3, ra2, ra1, ra0, wa3, wa2, wa1, wa0,
                        d1, d0, we, clk)
    """
    mem = defaultdict(lambda: 0)
    state = {"raddr": 0, "waddr": 0, "wenable": 0, "data": 0}

    @hole(delay=delay, inputs=MEMORY_INPUTS, outputs=MEMORY_OUTPUTS)
    def memory(ra3, ra2, ra1, ra0, wa3, wa2, wa1, wa0, d1, d0, we, clk, time):
        state["raddr"] |= ra3 * 8 + ra2 * 4 + ra1 * 2 + ra0
        state["waddr"] |= wa3 * 8 + wa2 * 4 + wa1 * 2 + wa0
        state["data"] |= d1 * 2 + d0
        state["wenable"] |= we
        if clk:
            if state["wenable"]:
                mem[state["waddr"]] = state["data"]
            value = mem[state["raddr"]]
            state["raddr"] = state["waddr"] = state["wenable"] = state["data"] = 0
        else:
            value = 0
        return ((value >> 1) & 1), value & 1

    memory.backing_store = mem
    return memory


def memory_port_names(words: int, bits: int) -> List[str]:
    """Input port names of a ``words x bits`` memory, MSB first per group.

    ``ra<i>``/``wa<i>`` address bits, ``d<i>`` data bits, then ``we`` and
    ``clk`` — the Figure 9 layout at arbitrary geometry.
    """
    abits = max(1, (words - 1).bit_length())
    names = [f"ra{i}" for i in reversed(range(abits))]
    names += [f"wa{i}" for i in reversed(range(abits))]
    names += [f"d{i}" for i in reversed(range(bits))]
    names += ["we", "clk"]
    return names


def make_memory_n(words: int = 16, bits: int = 2, delay: float = 5.0):
    """Create a fresh ``words x bits`` memory hole (LSB-numbered ports).

    ``words`` must be a power of two (the address bus is fully decoded).
    The returned instantiation function takes wires in
    :func:`memory_port_names` order and yields ``bits`` output wires
    ``(q<bits-1>, ..., q0)``, MSB first — for ``bits == 1`` a single wire.
    """
    if words < 2 or words & (words - 1):
        raise PylseError(
            f"memory words must be a power of two >= 2, got {words}"
        )
    if bits < 1:
        raise PylseError(f"memory bits must be >= 1, got {bits}")
    abits = (words - 1).bit_length()
    inputs = memory_port_names(words, bits)
    outputs = [f"q{i}" for i in reversed(range(bits))]
    mem = defaultdict(lambda: 0)
    state = {"raddr": 0, "waddr": 0, "wenable": 0, "data": 0}

    @hole(delay=delay, inputs=inputs, outputs=outputs)
    def memory(*args):
        *pulses, time = args
        ra = pulses[:abits]
        wa = pulses[abits:2 * abits]
        d = pulses[2 * abits:2 * abits + bits]
        we, clk = pulses[2 * abits + bits:]
        state["raddr"] |= sum(bit << k for k, bit in enumerate(reversed(ra)))
        state["waddr"] |= sum(bit << k for k, bit in enumerate(reversed(wa)))
        state["data"] |= sum(bit << k for k, bit in enumerate(reversed(d)))
        state["wenable"] |= we
        if clk:
            if state["wenable"]:
                mem[state["waddr"]] = state["data"]
            value = mem[state["raddr"]]
            state["raddr"] = state["waddr"] = state["wenable"] = state["data"] = 0
        else:
            value = 0
        if bits == 1:
            return value & 1
        return tuple((value >> k) & 1 for k in reversed(range(bits)))

    memory.backing_store = mem
    memory.words = words
    memory.bits = bits
    return memory
