"""The paper's six larger designs (Table 3, rows 17-22).

* :mod:`repro.designs.minmax` — min-max pair (Figure 11);
* :mod:`repro.designs.racetree` — race-logic decision tree (Section 5.2);
* :mod:`repro.designs.adder_sync` — synchronous RSFQ full adder;
* :mod:`repro.designs.adder_xsfq` — dual-rail (xSFQ-style) adder;
* :mod:`repro.designs.bitonic` — 4- and 8-input bitonic sorters (Figure 15);
* :mod:`repro.designs.memory` — the Figure 9 memory hole.
"""

from .adder_sync import (
    CLOCK_PERIOD,
    PIPELINE_DEPTH,
    adder_test_times,
    full_adder,
    ripple_adder,
    ripple_clock_pulses,
    ripple_clock_skew,
    ripple_test_times,
)
from .adder_xsfq import cells_per_bit, xsfq_full_adder, xsfq_ripple_adder
from .bitonic import (
    bitonic_comparators,
    bitonic_delay,
    bitonic_sorter,
    network_depth,
)
from .counter import binary_counter, divider_chain
from .dual_rail import (
    dr_and,
    dr_equals,
    dr_fanout,
    dr_majority,
    dr_mux,
    dr_not,
    dr_or,
    dr_xor,
)
from .holes import (
    make_accumulator,
    make_comparator,
    make_counter,
    make_shift_register,
)
from .memory import (
    MEMORY_INPUTS,
    MEMORY_OUTPUTS,
    make_memory,
    make_memory_n,
    memory_port_names,
)
from .minmax import MINMAX_DELAY, min_max
from .racetree import (
    expected_label,
    expected_leaf,
    race_tree,
    race_tree_depth,
    race_tree_depth_inputs,
    race_tree_inputs,
)

__all__ = [
    "CLOCK_PERIOD",
    "MEMORY_INPUTS",
    "MEMORY_OUTPUTS",
    "MINMAX_DELAY",
    "PIPELINE_DEPTH",
    "adder_test_times",
    "bitonic_comparators",
    "bitonic_delay",
    "binary_counter",
    "bitonic_sorter",
    "cells_per_bit",
    "divider_chain",
    "dr_and",
    "dr_equals",
    "dr_fanout",
    "dr_majority",
    "dr_mux",
    "dr_not",
    "dr_or",
    "dr_xor",
    "expected_label",
    "expected_leaf",
    "full_adder",
    "make_accumulator",
    "make_comparator",
    "make_counter",
    "make_memory",
    "make_memory_n",
    "make_shift_register",
    "memory_port_names",
    "min_max",
    "network_depth",
    "race_tree",
    "race_tree_depth",
    "race_tree_depth_inputs",
    "race_tree_inputs",
    "ripple_adder",
    "ripple_clock_pulses",
    "ripple_clock_skew",
    "ripple_test_times",
    "xsfq_full_adder",
    "xsfq_ripple_adder",
]
