"""A synchronous (RSFQ) full adder built from clocked standard cells.

Computes ``sum = a XOR b XOR cin`` and ``cout = MAJ(a, b, cin)`` in RSFQ
encoding (pulse between clock pulses = 1). The design is wave-pipelined, as
is typical in RSFQ:

* stage 1 (first clock): ``a XOR b`` and the three carry minterms;
* stage 2 (second clock): the final sum XOR and the first carry OR;
* stage 3 (third clock): the second carry OR.

Signals that skip a stage (``cin`` into the sum XOR, the ``b AND cin``
minterm into the final OR) are path-balanced with JTLs carrying one clock
period of delay — the same idiom Figure 11 uses at 2 ps scale. The clock is
distributed through a uniform-depth splitter tree (8 leaves, all at depth 3)
so every gate sees the same clock phase; the eighth leaf is spare.

This is the reproduction of Table 3's "Adder (Sync)" row.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.functions import and_s, jtl, or_s, split, xor_s
from ..sfq.splitter import S

#: Clock period (ps) the adder is designed and tested at.
CLOCK_PERIOD = 50.0

#: Clock pulses required to flush one addition through the pipeline.
PIPELINE_DEPTH = 3


def full_adder(
    a: Wire, b: Wire, cin: Wire, clk: Wire, period: float = CLOCK_PERIOD
) -> Tuple[Wire, Wire]:
    """Build the full adder; returns ``(sum, cout)`` wires.

    ``period`` must match the clock generator's period: it sets the JTL
    path-balancing delays. Present each operand pulse (for a logical 1)
    early enough that, after the input splitters (max two levels, 22 ps), it
    lands before the first clock pulse reaches the gates (33 ps after the
    external clock pulse).
    """
    a_x, a_1, a_2 = split(a, n=3)
    b_x, b_1, b_3 = split(b, n=3)
    c_x, c_2, c_3 = split(cin, n=3)
    # Eight leaves -> a perfectly balanced tree: every gate clock is skewed
    # by exactly 3 splitter delays. The spare leaf is left dangling.
    clk_x1, clk_x2, clk_a1, clk_a2, clk_a3, clk_o1, clk_o2, _spare = split(clk, n=8)

    # Stage 1: consume the operands on the first clock.
    half = xor_s(a_x, b_x, clk_x1)            # a XOR b
    m1 = and_s(a_1, b_1, clk_a1)              # a AND b
    m2 = and_s(a_2, c_2, clk_a2)              # a AND cin
    m3 = and_s(b_3, c_3, clk_a3)              # b AND cin
    cin_d = jtl(c_x, firing_delay=period)     # cin, balanced into period 1

    # Stage 2: sum on the second clock; first half of the carry OR.
    total = xor_s(half, cin_d, clk_x2)        # (a XOR b) XOR cin
    m12 = or_s(m1, m2, clk_o1)                # (a AND b) OR (a AND cin)
    m3_d = jtl(m3, firing_delay=period)       # third minterm, balanced

    # Stage 3: carry on the third clock.
    carry = or_s(m12, m3_d, clk_o2)
    return total, carry


def adder_test_times(
    a_bit: int, b_bit: int, cin_bit: int, start: float = 30.0
) -> Dict[str, list]:
    """Pulse times encoding one operand set for a single addition.

    Returns ``{input name: [pulse times]}`` — an empty list encodes logical
    0. Operands are presented at ``start`` so that, after the input
    splitters, they arrive before the first clock pulse reaches the gates.
    """
    return {
        "a": [start] if a_bit else [],
        "b": [start] if b_bit else [],
        "cin": [start] if cin_bit else [],
    }


def _clock_tree_depth(n_bits: int) -> int:
    """Splitter-tree depth distributing the clock to ``n_bits`` adders."""
    depth = 0
    while (1 << depth) < n_bits:
        depth += 1
    return depth


def ripple_clock_skew(n_bits: int) -> float:
    """Delay (ps) from the external clock to each bit's adder, pre-tree only.

    The per-bit clock tree is padded to the next power of two so every
    full adder sees exactly the same skew; inside each adder the clock
    passes three more splitter levels (see :func:`full_adder`).
    """
    return _clock_tree_depth(n_bits) * S.firing_delay


def ripple_adder(
    a_bits: Sequence[Wire],
    b_bits: Sequence[Wire],
    cin: Wire,
    clk: Wire,
    period: float = CLOCK_PERIOD,
) -> Tuple[List[Wire], Wire]:
    """An n-bit wave-pipelined synchronous ripple-carry adder; LSB first.

    Returns the per-bit sum wires and the final carry-out. One
    :func:`full_adder` per bit; bit ``k``'s carry-out emerges after clock
    pulse ``3k + 3`` and is consumed by bit ``k + 1`` at pulse
    ``3(k + 1) + 1`` — one full period of margin. The external clock is
    distributed through a splitter tree padded to the next power of two
    (extra leaves dangle) so every bit sees an identical clock phase;
    without the padding, bits at different tree depths would skew by one
    splitter delay per level and eat the carry margin.

    Present bit ``k``'s operands ``3 k period`` later than bit 0's (see
    :func:`ripple_test_times`); the clock needs ``3 n_bits`` pulses.
    """
    n_bits = len(a_bits)
    if n_bits == 0:
        raise PylseError("ripple_adder needs at least one operand bit")
    if len(b_bits) != n_bits:
        raise PylseError(
            f"Operand widths differ: {n_bits} vs {len(b_bits)}"
        )
    if n_bits == 1:
        leaves: Sequence[Wire] = (clk,)
    else:
        leaves = split(clk, n=1 << _clock_tree_depth(n_bits))
    sums: List[Wire] = []
    carry = cin
    for k in range(n_bits):
        total, carry = full_adder(a_bits[k], b_bits[k], carry, leaves[k], period)
        sums.append(total)
    return sums, carry


def ripple_test_times(
    a: int,
    b: int,
    cin_bit: int,
    n_bits: int,
    start: float = 30.0,
    period: float = CLOCK_PERIOD,
) -> Dict[str, List[float]]:
    """Pulse schedule adding ``a + b + cin`` on an n-bit :func:`ripple_adder`.

    Returns ``{input name: [pulse times]}`` for inputs named ``a0..``,
    ``b0..`` (LSB first) and ``cin``. Bit ``k``'s operands are presented
    ``3 k period`` after ``start`` — the wave-pipelining schedule — shifted
    by the uniform pre-tree clock skew so each bit's operands land in the
    clock window that consumes them. Drive the clock with
    ``inp(start=period, period=period, n=ripple_clock_pulses(n_bits))``.
    """
    if not 0 <= a < (1 << n_bits) or not 0 <= b < (1 << n_bits):
        raise PylseError(
            f"operands must fit in {n_bits} bit(s), got {a} and {b}"
        )
    if cin_bit not in (0, 1):
        raise PylseError(f"cin_bit must be 0 or 1, got {cin_bit}")
    skew = ripple_clock_skew(n_bits)
    times: Dict[str, List[float]] = {}
    for k in range(n_bits):
        at = start + 3 * k * period + skew
        times[f"a{k}"] = [at] if (a >> k) & 1 else []
        times[f"b{k}"] = [at] if (b >> k) & 1 else []
    times["cin"] = [start + skew] if cin_bit else []
    return times


def ripple_clock_pulses(n_bits: int) -> int:
    """Clock pulses needed to flush an n-bit addition (3 per bit)."""
    return PIPELINE_DEPTH * n_bits
