"""A library of reusable behavioral holes (Hole Description level).

Figure 9's memory shows the pattern: wrap mutable Python state in a
pulse-communicating interface to stand in for blocks that have not been
designed at the pulse-transfer level yet. These factories package the most
common such blocks; each returns a fresh instantiation function with
private state (like :func:`repro.designs.memory.make_memory`).

All are clocked on their last input: non-clock pulses accumulate between
clock pulses and are committed when the clock arrives, mirroring the
memory's convention.
"""

from __future__ import annotations

from ..core.functional import hole


def make_counter(bits: int = 4, delay: float = 5.0):
    """A pulse counter with a ``bits``-wide binary readout.

    Inputs ``inc`` and ``clk``: pulses on ``inc`` accumulate; each clock
    pulse emits the current count (one output wire per bit, MSB first) and
    keeps counting (no reset — wrap-around at 2**bits).

    >>> counter = make_counter(bits=2)      # doctest: +SKIP
    >>> b1, b0 = counter(inc, clk)          # doctest: +SKIP
    """
    state = {"count": 0, "pending": 0}
    outputs = [f"b{k}" for k in reversed(range(bits))]

    @hole(delay=delay, inputs=["inc", "clk"], outputs=outputs)
    def counter(inc, clk, time):
        state["pending"] += inc
        if clk:
            state["count"] = (state["count"] + state["pending"]) % (1 << bits)
            state["pending"] = 0
            value = state["count"]
            return tuple((value >> k) & 1 for k in reversed(range(bits)))
        return None

    counter.state = state
    return counter


def make_shift_register(stages: int = 4, delay: float = 5.0):
    """A serial-in, serial-out shift register.

    Inputs ``d`` and ``clk``: the bit present since the last clock is
    shifted in on each clock pulse; the bit falling off the end is emitted
    on ``q``.
    """
    state = {"bits": [0] * stages, "pending": 0}

    @hole(delay=delay, inputs=["d", "clk"], outputs=["q"])
    def shift_register(d, clk, time):
        state["pending"] |= d
        if clk:
            out = state["bits"].pop()
            state["bits"].insert(0, state["pending"])
            state["pending"] = 0
            return out
        return 0

    shift_register.state = state
    return shift_register


def make_accumulator(delay: float = 5.0, threshold: int = 4):
    """A leaky-integrate-and-fire accumulator (a neuron-ish hole).

    Pulses on ``x`` add 1; when the total reaches ``threshold``, the next
    clock pulse fires ``spike`` and the total resets — the kind of
    behavioral model an SCE neuromorphic design would prototype first.
    """
    state = {"total": 0}

    @hole(delay=delay, inputs=["x", "clk"], outputs=["spike"])
    def accumulator(x, clk, time):
        state["total"] += x
        if clk and state["total"] >= threshold:
            state["total"] = 0
            return 1
        return 0

    accumulator.state = state
    return accumulator


def make_comparator(delay: float = 5.0):
    """A two-channel pulse-count comparator.

    Counts pulses on ``a`` and ``b`` between clocks; on each clock emits
    ``gt`` if ``a`` saw strictly more pulses, ``lt`` if fewer, ``eq``
    otherwise, then resets the window.
    """
    state = {"a": 0, "b": 0}

    @hole(delay=delay, inputs=["a", "b", "clk"], outputs=["gt", "eq", "lt"])
    def comparator(a, b, clk, time):
        state["a"] += a
        state["b"] += b
        if clk:
            result = (
                int(state["a"] > state["b"]),
                int(state["a"] == state["b"]),
                int(state["a"] < state["b"]),
            )
            state["a"] = state["b"] = 0
            return result
        return None

    comparator.state = state
    return comparator
