"""Bitonic sorting networks of min-max pairs (Section 5.1, Figure 15).

A bitonic sorter is a parallel sorting network of comparators; here each
comparator is the temporal :func:`~repro.designs.minmax.min_max` pair, so
the network sorts pulses by arrival time: given one pulse per input (spaced
to satisfy transition-time constraints), the pulses appear on the outputs in
rank order, each delayed by ``MINMAX_DELAY * depth``.

The 8-input network has 24 comparators in 6 levels (Figure 15); the 4-input
network has 6 comparators in 3 levels (Table 3's "Bitonic Sort 4").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from .minmax import MINMAX_DELAY, min_max


def bitonic_comparators(n: int) -> List[Tuple[int, int, bool]]:
    """The comparator schedule ``(i, j, ascending)`` of Batcher's network.

    ``n`` must be a power of two. For n=8 this yields 24 comparators; for
    n=4, 6 comparators.
    """
    if n < 2 or n & (n - 1):
        raise PylseError(f"Bitonic sorter size must be a power of two >= 2, got {n}")
    schedule: List[Tuple[int, int, bool]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    schedule.append((i, partner, ascending))
            j //= 2
        k *= 2
    return schedule


def network_depth(n: int) -> int:
    """Number of comparator levels: ``log2(n) * (log2(n) + 1) / 2``."""
    levels = 0
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            levels += 1
            j //= 2
        k *= 2
    return levels


def bitonic_sorter(
    inputs: Sequence[Wire], output_names: Optional[Sequence[str]] = None
) -> List[Wire]:
    """Build an n-input bitonic sorter; returns the output wires in rank order.

    ``inputs`` are the wires ``i0..i(n-1)``; pulses appear in arrival-time
    order on the returned wires ``o0..o(n-1)`` after the network delay
    (``MINMAX_DELAY * network_depth(n)``).
    """
    n = len(inputs)
    lanes = list(inputs)
    for i, j, ascending in bitonic_comparators(n):
        low, high = min_max(lanes[i], lanes[j])
        if ascending:
            lanes[i], lanes[j] = low, high
        else:
            lanes[i], lanes[j] = high, low
    if output_names is not None:
        if len(output_names) != n:
            raise PylseError(
                f"Expected {n} output names, got {len(output_names)}"
            )
        for lane, label in zip(lanes, output_names):
            lane.observe(label)
    return lanes


def bitonic_delay(n: int) -> float:
    """Nominal input-to-output latency of the sorter (150 ps for n=8)."""
    return MINMAX_DELAY * network_depth(n)
