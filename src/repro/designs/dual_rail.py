"""A dual-rail (xSFQ-style) combinational gate library.

In dual-rail alternating logic every signal is a ``(true, false)`` wire
pair with exactly one pulse per operation; gates are built from the 2x2
Join (Section 5.2's dual-rail primitive) plus mergers and splitters, with
no clock anywhere. These generators compose arbitrarily — the
:mod:`repro.designs.adder_xsfq` full adder is the worked example.

Conventions: arguments and results are ``(t, f)`` pairs; inputs must obey
dual-rail discipline (one rail pulses per operation, alternating between
operations).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.functions import join, m, s

DualRail = Tuple[Wire, Wire]


def dr_not(a: DualRail) -> DualRail:
    """NOT is free in dual-rail: swap the rails (zero cells, zero delay)."""
    return (a[1], a[0])


def dr_and(a: DualRail, b: DualRail) -> DualRail:
    """AND: true iff both true; false on any other pairing."""
    both, a_only, b_only, neither = join(a[0], a[1], b[0], b[1])
    return (both, m(m(a_only, b_only), neither))


def dr_or(a: DualRail, b: DualRail) -> DualRail:
    """OR: false iff both false."""
    both, a_only, b_only, neither = join(a[0], a[1], b[0], b[1])
    return (m(m(both, a_only), b_only), neither)


def dr_xor(a: DualRail, b: DualRail) -> DualRail:
    """XOR: true iff exactly one is true."""
    both, a_only, b_only, neither = join(a[0], a[1], b[0], b[1])
    return (m(a_only, b_only), m(both, neither))


def dr_fanout(a: DualRail, n: int = 2) -> List[DualRail]:
    """Duplicate a dual-rail signal ``n`` ways (splitter trees per rail)."""
    if n < 2:
        raise PylseError(f"dr_fanout needs n >= 2, got {n}")
    true_copies: List[Wire] = [a[0]]
    false_copies: List[Wire] = [a[1]]
    while len(true_copies) < n:
        left, right = s(true_copies.pop(0))
        true_copies += [left, right]
        left, right = s(false_copies.pop(0))
        false_copies += [left, right]
    return list(zip(true_copies, false_copies))


def dr_mux(sel: DualRail, a: DualRail, b: DualRail) -> DualRail:
    """2:1 multiplexer: ``a`` when sel is true, ``b`` otherwise.

    out = (sel AND a) OR (NOT sel AND b), with the select fanned out.
    """
    sel_a, sel_b = dr_fanout(sel, 2)
    picked_a = dr_and(sel_a, a)
    picked_b = dr_and(dr_not(sel_b), b)
    return dr_or(picked_a, picked_b)


def dr_majority(a: DualRail, b: DualRail, c: DualRail) -> DualRail:
    """3-input majority, the carry function: MAJ = (a AND b) OR ((a OR b) AND c)."""
    a1, a2 = dr_fanout(a, 2)
    b1, b2 = dr_fanout(b, 2)
    ab_and = dr_and(a1, b1)
    ab_or = dr_or(a2, b2)
    return dr_or(ab_and, dr_and(ab_or, c))


def dr_equals(a_bits: Sequence[DualRail], b_bits: Sequence[DualRail]) -> DualRail:
    """n-bit equality comparator: AND over per-bit XNORs."""
    if len(a_bits) != len(b_bits) or not a_bits:
        raise PylseError("dr_equals needs equal-length, non-empty operands")
    bit_eq = [dr_not(dr_xor(x, y)) for x, y in zip(a_bits, b_bits)]
    result = bit_eq[0]
    for nxt in bit_eq[1:]:
        result = dr_and(result, nxt)
    return result
