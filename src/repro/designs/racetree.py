"""A race tree (Section 5.2): a race-logic decision tree.

A race tree [Tzimpragos et al., ASPLOS '19] is a decision tree evaluated in
the temporal domain: feature values are encoded as pulse arrival times, and
each internal node tests "did the feature pulse arrive before the node's
threshold pulse?". We realize a depth-2 tree over two features with:

* one DRO_C per decision node — the feature pulse is stored, the threshold
  pulse reads it out: ``q`` fires if the feature arrived first (feature <
  threshold), ``qnot`` otherwise;
* splitters to share decision outcomes between leaves;
* one C element per leaf ANDing the decisions along its path;
* JTLs padding the root's outputs so both decision levels commit before the
  leaves are evaluated.

The fundamental correctness property (checked dynamically in Section 5.2) is
that exactly one of the four leaf labels ``a``/``b``/``c``/``d`` fires per
evaluation.

Timing constraint: a feature value must differ from every threshold it is
compared against by more than the DRO_C hold time (2.5 ps), otherwise the
feature pulse lands inside the decision cell's transition window and the
simulator reports a (legitimate) transition-time violation — the temporal
analogue of a comparator metastability window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.functions import c, dro_c, jtl, s


def race_tree(
    x1: Wire, t1: Wire, x2a: Wire, t2: Wire, x2b: Wire, t3: Wire
) -> Tuple[Wire, Wire, Wire, Wire]:
    """Build the depth-2 race tree; returns the leaf wires ``(a, b, c, d)``.

    * ``x1``/``t1`` — root feature and threshold;
    * ``x2a``/``t2`` — second feature and left-subtree threshold;
    * ``x2b``/``t3`` — second feature (second copy) and right threshold.

    ``x2a`` and ``x2b`` carry the same feature value; they are separate
    inputs so the caller controls the splitter topology (feed both from one
    ``split()`` to share a single source).

    Leaf semantics::

        a = (x1 < t1) and (x2 < t2)
        b = (x1 < t1) and (x2 >= t2)
        c = (x1 >= t1) and (x2 < t3)
        d = (x1 >= t1) and (x2 >= t3)
    """
    root_lt, root_ge = dro_c(x1, t1)
    left_lt, left_ge = dro_c(x2a, t2)
    right_lt, right_ge = dro_c(x2b, t3)

    # The root outcome gates two leaves on each side.
    root_lt_a, root_lt_b = s(jtl(root_lt))
    root_ge_c, root_ge_d = s(jtl(root_ge))

    leaf_a = c(root_lt_a, left_lt)
    leaf_b = c(root_lt_b, left_ge)
    leaf_c = c(root_ge_c, right_lt)
    leaf_d = c(root_ge_d, right_ge)
    return leaf_a, leaf_b, leaf_c, leaf_d


def race_tree_inputs(
    x1_value: float,
    x2_value: float,
    thresholds: Tuple[float, float, float] = (10.0, 10.0, 10.0),
    start: float = 5.0,
) -> Dict[str, float]:
    """Encode feature values as pulse times for a race-tree evaluation.

    Returns a mapping of input name to pulse time; feature pulses are offset
    by ``start`` so a zero value still produces a pulse. (Arrival *exactly*
    at the threshold reads as "not before".)
    """
    t1, t2, t3 = thresholds
    return {
        "x1": start + x1_value,
        "x2a": start + x2_value,
        "x2b": start + x2_value,
        "t1": start + t1,
        "t2": start + t2,
        "t3": start + t3,
    }


def expected_label(
    x1_value: float,
    x2_value: float,
    thresholds: Tuple[float, float, float] = (10.0, 10.0, 10.0),
) -> str:
    """The label the tree should produce for the given feature values."""
    t1, t2, t3 = thresholds
    if x1_value < t1:
        return "a" if x2_value < t2 else "b"
    return "c" if x2_value < t3 else "d"


# -- depth-d generalization (the explorer's "racetree" family) ----------

def _fan(wire: Wire, levels: int) -> List[Wire]:
    """Pad a decision with ``levels`` JTLs, then split it ``2**levels`` ways.

    The generalization of the depth-2 tree's root padding: a decision made
    ``levels`` levels above the leaves is delayed by one JTL per remaining
    level so deeper (less padded) decisions arrive at the leaf C elements
    first, serializing arrivals by ~16 ps per level — comfortably outside
    the C element's transition window.
    """
    for _ in range(levels):
        wire = jtl(wire)
    outs = [wire]
    while len(outs) < (1 << levels):
        outs = [leaf for out in outs for leaf in s(out)]
    return outs


def race_tree_depth(pairs: Sequence[Tuple[Wire, Wire]]) -> List[Wire]:
    """Build a depth-``d`` race tree from ``2**d - 1`` decision nodes.

    ``pairs`` lists one ``(feature, threshold)`` wire pair per internal
    node in heap order (node ``i``'s children are ``2i + 1`` / ``2i + 2``),
    so ``len(pairs)`` must be ``2**d - 1``. Returns the ``2**d`` leaf
    wires, left to right. Each node is one DRO_C (q fires iff the feature
    pulse beat the threshold pulse); each leaf is a cascade of C elements
    ANDing the ``d`` decisions along its path. ``d = 1`` degenerates to
    the bare DRO_C outputs.

    The fixed-topology :func:`race_tree` is the ``d = 2`` instance of this
    generator (kept verbatim: it is a registry design with a pinned
    structural hash).
    """
    n_nodes = len(pairs)
    depth = (n_nodes + 1).bit_length() - 1
    if n_nodes == 0 or (1 << depth) - 1 != n_nodes:
        raise PylseError(
            f"race_tree_depth needs 2**d - 1 decision pairs, got {n_nodes}"
        )
    n_leaves = 1 << depth
    decisions = [dro_c(x, t) for x, t in pairs]
    # leaf_inputs[j] collects the d path decisions arriving at leaf j.
    leaf_inputs: List[List[Wire]] = [[] for _ in range(n_leaves)]
    for level in range(depth):
        fan_levels = depth - 1 - level
        span = 1 << fan_levels          # leaves gated per decision output
        for i in range(1 << level):
            node = (1 << level) - 1 + i
            lt, ge = decisions[node]
            for side, wire in ((0, lt), (1, ge)):
                base = (2 * i + side) * span
                for offset, copy in enumerate(_fan(wire, fan_levels)):
                    leaf_inputs[base + offset].append(copy)
    leaves: List[Wire] = []
    for inputs in leaf_inputs:
        acc = inputs[0]
        for wire in inputs[1:]:
            acc = c(acc, wire)
        leaves.append(acc)
    return leaves


def race_tree_depth_inputs(
    depth: int,
    feature_values: Sequence[float],
    thresholds: Optional[Sequence[float]] = None,
    start: float = 5.0,
) -> Dict[str, float]:
    """Pulse schedule for one :func:`race_tree_depth` evaluation.

    One feature per level (an oblivious decision tree: every node at level
    ``l`` tests ``feature_values[l]``), one threshold per node in heap
    order (default 10.0 everywhere). Input names are ``x<i>`` / ``t<i>``
    for heap node ``i``. Feature values must differ from the thresholds
    they meet by more than the DRO_C hold time (see module docstring).
    """
    n_nodes = (1 << depth) - 1
    if len(feature_values) != depth:
        raise PylseError(
            f"depth-{depth} tree needs {depth} feature value(s), "
            f"got {len(feature_values)}"
        )
    if thresholds is None:
        thresholds = [10.0] * n_nodes
    if len(thresholds) != n_nodes:
        raise PylseError(
            f"depth-{depth} tree needs {n_nodes} threshold(s), "
            f"got {len(thresholds)}"
        )
    times: Dict[str, float] = {}
    for node in range(n_nodes):
        level = (node + 1).bit_length() - 1
        times[f"x{node}"] = start + feature_values[level]
        times[f"t{node}"] = start + thresholds[node]
    return times


def expected_leaf(
    depth: int,
    feature_values: Sequence[float],
    thresholds: Optional[Sequence[float]] = None,
) -> int:
    """Index of the single leaf that should fire for the given features."""
    n_nodes = (1 << depth) - 1
    if thresholds is None:
        thresholds = [10.0] * n_nodes
    node = 0
    for level in range(depth):
        go_right = feature_values[level] >= thresholds[node]
        node = 2 * node + 1 + int(go_right)
    return node - n_nodes
