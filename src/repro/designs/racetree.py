"""A race tree (Section 5.2): a race-logic decision tree.

A race tree [Tzimpragos et al., ASPLOS '19] is a decision tree evaluated in
the temporal domain: feature values are encoded as pulse arrival times, and
each internal node tests "did the feature pulse arrive before the node's
threshold pulse?". We realize a depth-2 tree over two features with:

* one DRO_C per decision node — the feature pulse is stored, the threshold
  pulse reads it out: ``q`` fires if the feature arrived first (feature <
  threshold), ``qnot`` otherwise;
* splitters to share decision outcomes between leaves;
* one C element per leaf ANDing the decisions along its path;
* JTLs padding the root's outputs so both decision levels commit before the
  leaves are evaluated.

The fundamental correctness property (checked dynamically in Section 5.2) is
that exactly one of the four leaf labels ``a``/``b``/``c``/``d`` fires per
evaluation.

Timing constraint: a feature value must differ from every threshold it is
compared against by more than the DRO_C hold time (2.5 ps), otherwise the
feature pulse lands inside the decision cell's transition window and the
simulator reports a (legitimate) transition-time violation — the temporal
analogue of a comparator metastability window.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.wire import Wire
from ..sfq.functions import c, dro_c, jtl, s


def race_tree(
    x1: Wire, t1: Wire, x2a: Wire, t2: Wire, x2b: Wire, t3: Wire
) -> Tuple[Wire, Wire, Wire, Wire]:
    """Build the depth-2 race tree; returns the leaf wires ``(a, b, c, d)``.

    * ``x1``/``t1`` — root feature and threshold;
    * ``x2a``/``t2`` — second feature and left-subtree threshold;
    * ``x2b``/``t3`` — second feature (second copy) and right threshold.

    ``x2a`` and ``x2b`` carry the same feature value; they are separate
    inputs so the caller controls the splitter topology (feed both from one
    ``split()`` to share a single source).

    Leaf semantics::

        a = (x1 < t1) and (x2 < t2)
        b = (x1 < t1) and (x2 >= t2)
        c = (x1 >= t1) and (x2 < t3)
        d = (x1 >= t1) and (x2 >= t3)
    """
    root_lt, root_ge = dro_c(x1, t1)
    left_lt, left_ge = dro_c(x2a, t2)
    right_lt, right_ge = dro_c(x2b, t3)

    # The root outcome gates two leaves on each side.
    root_lt_a, root_lt_b = s(jtl(root_lt))
    root_ge_c, root_ge_d = s(jtl(root_ge))

    leaf_a = c(root_lt_a, left_lt)
    leaf_b = c(root_lt_b, left_ge)
    leaf_c = c(root_ge_c, right_lt)
    leaf_d = c(root_ge_d, right_ge)
    return leaf_a, leaf_b, leaf_c, leaf_d


def race_tree_inputs(
    x1_value: float,
    x2_value: float,
    thresholds: Tuple[float, float, float] = (10.0, 10.0, 10.0),
    start: float = 5.0,
) -> Dict[str, float]:
    """Encode feature values as pulse times for a race-tree evaluation.

    Returns a mapping of input name to pulse time; feature pulses are offset
    by ``start`` so a zero value still produces a pulse. (Arrival *exactly*
    at the threshold reads as "not before".)
    """
    t1, t2, t3 = thresholds
    return {
        "x1": start + x1_value,
        "x2a": start + x2_value,
        "x2b": start + x2_value,
        "t1": start + t1,
        "t2": start + t2,
        "t3": start + t3,
    }


def expected_label(
    x1_value: float,
    x2_value: float,
    thresholds: Tuple[float, float, float] = (10.0, 10.0, 10.0),
) -> str:
    """The label the tree should produce for the given feature values."""
    t1, t2, t3 = thresholds
    if x1_value < t1:
        return "a" if x2_value < t2 else "b"
    return "c" if x2_value < t3 else "d"
