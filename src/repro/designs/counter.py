"""An n-bit binary pulse counter from T1 toggle chains.

The classic RSFQ counter: T1 cells divide the pulse rate by two per stage,
so stage k receives ``floor(N / 2^k)`` of the first ``N`` input pulses and
bit k of the binary count is that stage's input parity. Each stage's
parity is tracked by a set/reset latch — ``q0`` (odd pulses) sets it,
``q1`` (even pulses) clears it — and a split readout strobe dumps the
count into the output wires.

Built from the T1 library-extension cell plus standard DRO_SR latches; the
kind of design the paper's "templates for the creation of custom ones"
workflow targets.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.functions import dro_sr, s, split, t1


def divider_chain(a: Wire, stages: int) -> List[Wire]:
    """A chain of T1 frequency dividers.

    Returns the per-stage ``q1`` outputs: stage k pulses once per
    ``2^(k+1)`` input pulses (divide-by-2, -4, -8, ...).
    """
    if stages < 1:
        raise PylseError(f"divider_chain needs >= 1 stage, got {stages}")
    outputs: List[Wire] = []
    carry = a
    for _ in range(stages):
        _odd, even = t1(carry)
        outputs.append(even)
        carry = even
    return outputs


def binary_counter(
    a: Wire, clk: Wire, bits: int
) -> List[Wire]:
    """Count pulses on ``a``; strobe the binary count out on ``clk``.

    Returns the readout wires, LSB first: after ``N`` input pulses, a
    strobe produces a pulse on readout wire ``k`` iff bit ``k`` of ``N``
    is 1. Bit k's parity latch is a DRO_SR set by stage k's odd-pulse
    output and reset by its even-pulse output (which also carries into
    stage k+1).

    The strobe must arrive at least a setup time after the last count
    pulse has propagated through the chain (and DRO_SR readout is
    destructive, so use one strobe per count window).
    """
    if bits < 1:
        raise PylseError(f"binary_counter needs >= 1 bit, got {bits}")
    strobes = split(clk, n=bits) if bits > 1 else (clk,)
    readout: List[Wire] = []
    carry = a
    for k in range(bits):
        odd, even = t1(carry)
        if k + 1 < bits:
            # The even output both resets this bit's latch and carries into
            # the next stage — SCE fanout requires an explicit splitter.
            even_latch, carry = s(even)
        else:
            even_latch, carry = even, None
        readout.append(dro_sr(odd, even_latch, strobes[k]))
    return readout
