"""The min-max pair (Figure 11): a temporal comparator.

Inputs ``a`` and ``b`` are duplicated by splitters. One copy of each enters
the Inverted C Element, which fires ``low`` some delay after the *first*
input arrives; the other copies feed the C Element, whose output is delayed
by a JTL (path balancing) before emerging as ``high``.

With a splitter delay of 11, C delay of 12, Inverted C delay of 14 and a JTL
delay of 2.0, both paths take exactly 25 ps: the earlier input pulse
propagates to ``low`` after 11 + 14 = 25 and the later to ``high`` after
11 + 12 + 2 = 25.
"""

from __future__ import annotations

from typing import Tuple

from ..core.wire import Wire
from ..sfq.functions import c, c_inv, jtl, s

#: Nominal propagation delay of a min-max pair along both paths (ps).
MINMAX_DELAY = 25.0


def min_max(a: Wire, b: Wire) -> Tuple[Wire, Wire]:
    """Build a min-max pair; returns ``(low, high)`` wires.

    This is a verbatim transcription of Figure 11b.
    """
    a0, a1 = s(a)
    b0, b1 = s(b)
    low = c_inv(a0, b0)
    high = c(a1, b1)
    high = jtl(high, firing_delay=2.0)
    return low, high
