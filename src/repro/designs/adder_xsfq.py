"""An asynchronous dual-rail full adder in the style of xSFQ.

xSFQ [Tzimpragos et al., ISCA '21] is a clock-free SFQ logic family using
dual-rail alternating encoding: each logical bit travels as a pulse on
either its *true* or its *false* rail. Our adder follows that discipline
using the 2x2 Join (the dual-rail primitive of Section 5.2), mergers, and
splitters — no clock anywhere:

* a first join classifies the (a, b) pair; merging its outputs yields the
  complementary pair ``one`` (a XOR b) / ``even`` (a XNOR b);
* a second join combines that pair with the carry rails;
* mergers assemble the sum and carry-out rails from the join outputs.

(The paper's 83-cell adder follows the gate-level xSFQ netlist of the ISCA
paper, which is not public; this is a functionally equivalent dual-rail
design at 12 cells per bit — see DESIGN.md.)

This is the reproduction of Table 3's "Adder (xSFQ)" row.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.errors import PylseError
from ..core.wire import Wire
from ..sfq.functions import join, m, s

DualRail = Tuple[Wire, Wire]


def xsfq_full_adder(
    a: DualRail, b: DualRail, cin: DualRail
) -> Tuple[DualRail, DualRail]:
    """Build a dual-rail full adder; returns ``((sum_t, sum_f), (cout_t, cout_f))``.

    Each argument is a ``(true_rail, false_rail)`` pair; exactly one rail of
    each pair must pulse per operation, with dual-rail interleaving between
    consecutive operations.
    """
    a_t, a_f = a
    b_t, b_f = b
    c_t, c_f = cin

    both, a_only, b_only, neither = join(a_t, a_f, b_t, b_f)
    two_even, two_carry = s(both)        # a AND b: feeds 'even' and cout_t
    zero_even, zero_carry = s(neither)   # !a AND !b: feeds 'even' and cout_f
    one = m(a_only, b_only)              # a XOR b
    even = m(zero_even, two_even)        # a XNOR b

    one_c, one_nc, even_c, even_nc = join(one, even, c_t, c_f)
    one_c_sum, one_c_carry = s(one_c)    # (a XOR b) AND cin
    one_nc_sum, one_nc_carry = s(one_nc)  # (a XOR b) AND !cin

    sum_t = m(one_nc_sum, even_c)        # one&!c | even&c
    sum_f = m(one_c_sum, even_nc)        # one&c  | even&!c
    cout_t = m(two_carry, one_c_carry)   # two    | one&c
    cout_f = m(zero_carry, one_nc_carry)  # zero  | one&!c
    return (sum_t, sum_f), (cout_t, cout_f)


def xsfq_ripple_adder(
    a_bits: Sequence[DualRail],
    b_bits: Sequence[DualRail],
    cin: DualRail,
) -> Tuple[List[DualRail], DualRail]:
    """An n-bit dual-rail ripple-carry adder; LSB first.

    Returns the per-bit sum rails and the final carry-out rails.
    """
    if len(a_bits) != len(b_bits):
        raise PylseError(
            f"Operand widths differ: {len(a_bits)} vs {len(b_bits)}"
        )
    sums: List[DualRail] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        total, carry = xsfq_full_adder(a, b, carry)
        sums.append(total)
    return sums, carry


def cells_per_bit() -> int:
    """Cell count of one dual-rail full-adder bit (2 joins, 6 M, 4 S)."""
    return 12
