"""Self-contained HTML/SVG waveform rendering.

matplotlib is unavailable in this environment (see DESIGN.md), so besides
the ASCII renderer and the VCD exporter, this module draws the paper-style
pulse plots (Figures 10/12/16) as a dependency-free HTML file with inline
SVG — one row per wire, one vertical tick per pulse, hover titles with the
exact times.
"""

from __future__ import annotations

from html import escape
from typing import List

from .errors import PylseError
from .simulation import Events

ROW_HEIGHT = 34
LABEL_WIDTH = 120
PLOT_WIDTH = 760
PULSE_HEIGHT = 22
MARGIN = 12

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5em; }
h1 { font-size: 1.1em; }
svg { background: #fafafa; border: 1px solid #ddd; }
.wire-label { font-size: 12px; fill: #333; }
.baseline { stroke: #bbb; stroke-width: 1; }
.pulse { stroke: #0b63b5; stroke-width: 2; }
.axis { font-size: 10px; fill: #888; }
"""


def events_to_html(events: Events, title: str = "repro simulation") -> str:
    """Render the events dict as a standalone HTML page."""
    if not events:
        raise PylseError("No events to render")
    names = list(events)
    max_time = max((ts[-1] for ts in events.values() if ts), default=0.0)
    span = max(max_time * 1.05, 1e-9)

    def x_of(t: float) -> float:
        return LABEL_WIDTH + (t / span) * PLOT_WIDTH

    height = MARGIN * 2 + ROW_HEIGHT * len(names) + 20
    width = LABEL_WIDTH + PLOT_WIDTH + MARGIN
    rows: List[str] = []
    for k, name in enumerate(names):
        y0 = MARGIN + ROW_HEIGHT * k + ROW_HEIGHT - 6
        rows.append(
            f'<text class="wire-label" x="4" y="{y0 - 6}">{escape(name)}</text>'
        )
        rows.append(
            f'<line class="baseline" x1="{LABEL_WIDTH}" y1="{y0}" '
            f'x2="{LABEL_WIDTH + PLOT_WIDTH}" y2="{y0}"/>'
        )
        for t in events[name]:
            x = x_of(t)
            rows.append(
                f'<line class="pulse" x1="{x:.1f}" y1="{y0}" '
                f'x2="{x:.1f}" y2="{y0 - PULSE_HEIGHT}">'
                f"<title>{escape(name)} @ {t:g} ps</title></line>"
            )
    # Time axis ticks at ~8 round intervals.
    axis_y = MARGIN + ROW_HEIGHT * len(names) + 12
    step = _round_step(span / 8)
    ticks = []
    t = 0.0
    while t <= span:
        x = x_of(t)
        ticks.append(
            f'<text class="axis" x="{x:.1f}" y="{axis_y}" '
            f'text-anchor="middle">{t:g}</text>'
        )
        t += step
    svg = (
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg">'
        + "".join(rows)
        + "".join(ticks)
        + "</svg>"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><h1>{escape(title)}</h1>{svg}"
        "<p>One row per wire; each tick is an SFQ pulse (hover for the "
        "exact time, in ps).</p></body></html>"
    )


def _round_step(raw: float) -> float:
    """A 1/2/5-series step near ``raw``."""
    if raw <= 0:
        return 1.0
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 5, 10):
        if mult * magnitude >= raw:
            return mult * magnitude
    return 10 * magnitude


def save_html(events: Events, path: str, title: str = "repro simulation") -> None:
    """Write :func:`events_to_html` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(events_to_html(events, title))
