"""The Element protocol: anything that can sit at a node of a circuit.

Three families implement it (Section 4.1's design levels):

* :class:`repro.core.transitional.Transitional` — cells defined as PyLSE
  Machines (Cell Definition level);
* :class:`repro.core.functional.Functional` — "holes" wrapping plain Python
  (Hole Description level);
* :class:`InGen` — input generators created by ``inp``/``inp_at`` that feed
  externally supplied pulses into the network.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .errors import PylseError

#: An output firing: (output port name, delay after *now* at which the pulse
#: appears on the port's wire).
Firing = Tuple[str, float]


class Element:
    """Abstract node payload.

    Concrete elements expose ``inputs`` and ``outputs`` (ordered port-name
    lists), a ``name`` identifying the cell type, and
    :meth:`handle_inputs`, the simulator's entry point.
    """

    name: str = "<element>"
    inputs: Sequence[str] = ()
    outputs: Sequence[str] = ()

    def handle_inputs(self, active: Sequence[str], time: float) -> List[Firing]:
        """Process the set of input ports that pulsed simultaneously at ``time``.

        Returns the list of output firings this causes. Implementations may
        raise a :class:`~repro.core.errors.SimulationError` on timing
        violations.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Return the element to its initial configuration (for re-simulation)."""

    def validate_ports(self) -> None:
        """Sanity-check port name lists; shared by all element families."""
        for kind, ports in (("input", self.inputs), ("output", self.outputs)):
            seen = set()
            for port in ports:
                if not isinstance(port, str) or not port:
                    raise PylseError(
                        f"{self.name}: {kind} port names must be non-empty strings, "
                        f"got {port!r}"
                    )
                if port in seen:
                    raise PylseError(f"{self.name}: duplicate {kind} port {port!r}")
                seen.add(port)
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise PylseError(
                f"{self.name}: ports {sorted(overlap)} are both inputs and outputs"
            )


class InGen(Element):
    """Input generator: produces pulses at fixed, externally specified times.

    Created by :func:`repro.core.helpers.inp_at` and
    :func:`repro.core.helpers.inp`. It has a single output port ``out`` and no
    inputs; the simulator seeds its pulse heap from :attr:`times`.
    """

    name = "InGen"
    inputs: Sequence[str] = ()
    outputs = ("out",)

    def __init__(self, times: Sequence[float]):
        cleaned = []
        for t in times:
            t = float(t)
            if t < 0:
                raise PylseError(f"Input pulse times must be >= 0, got {t}")
            cleaned.append(t)
        self.times: Tuple[float, ...] = tuple(sorted(cleaned))

    def handle_inputs(self, active: Sequence[str], time: float) -> List[Firing]:
        raise PylseError("InGen elements do not accept inputs")

    def __repr__(self) -> str:
        preview = ", ".join(f"{t:g}" for t in self.times[:4])
        suffix = ", ..." if len(self.times) > 4 else ""
        return f"InGen([{preview}{suffix}])"
