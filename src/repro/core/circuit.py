"""The circuit workspace: a network of PyLSE Machines (Definition 3.2).

A circuit is a set of nodes (placed elements) and the wires connecting them.
Elaboration-through-execution (Section 4.1, Full-Circuit Design level) adds
nodes to an ambient *working circuit* as Python code runs; the
:class:`repro.core.simulation.Simulation` then simulates whatever workspace
it is given (the working circuit by default).

The circuit enforces the Section 4.2 structural checks:

* every wire has exactly one driver (an element output or an input
  generator);
* every wire feeds at most one element input — SCE outputs cannot fan out
  without an explicit splitter cell (:class:`~repro.core.errors.FanoutError`).
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .element import Element, InGen
from .errors import FanoutError, PylseError, WireError
from .node import Node
from .wire import Wire


class Circuit:
    """A network of elements connected by single-reader wires."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        #: per-cell-type instance counters for node naming (c0, s0, s1, ...)
        self._type_counts: Dict[str, int] = {}
        #: wire -> (node, output port) producing pulses on it
        self.source_of: Dict[Wire, Tuple[Node, str]] = {}
        #: wire -> (node, input port) consuming pulses from it
        self.dest_of: Dict[Wire, Tuple[Node, str]] = {}
        self._wires: List[Wire] = []
        #: name/alias -> wire index for O(1) find_wire; first registration of
        #: a non-user name wins, matching the old linear-scan semantics.
        self._wire_index: Dict[str, Wire] = {}
        #: per-circuit counter for anonymous wire names: auto-names are
        #: assigned when a wire first attaches to this circuit, so ``_0``,
        #: ``_1``, ... are reproducible per circuit regardless of how many
        #: wires other circuits in the process created before (the old
        #: class-global counter leaked across circuits, making serialized
        #: forms depend on what ran earlier in the process).
        self._anon_counter = itertools.count()
        #: mutation counter: bumped by every structural or naming change.
        #: ``repro.core.ir.compile_circuit`` memoizes its result against
        #: this, so a compiled view is reused until the circuit changes.
        self._version = 0
        #: the memoized :class:`repro.core.ir.CompiledCircuit`, if any.
        self._compiled_ir = None

    @property
    def version(self) -> int:
        """Mutation version; changes whenever the netlist or naming does."""
        return self._version

    def _mutated(self) -> None:
        """Record a structural/naming change, invalidating compiled views."""
        self._version += 1
        self._compiled_ir = None

    def _adopt_wire(self, wire: Wire) -> None:
        """Attach a wire to this circuit, assigning its per-circuit auto-name.

        Runs at the wire's *first* attachment (consumed or driven,
        whichever comes first), so attachment order — not the process-global
        creation counter — determines anonymous names.
        """
        if wire._circuit is not None:
            return
        wire._circuit = self
        if not wire._user_named:
            fresh = f"_{next(self._anon_counter)}"
            if wire.observed_as == wire.name:
                wire.observed_as = fresh
            wire.name = fresh

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        element: Element,
        input_wires: Sequence[Wire],
        output_wires: Optional[Sequence[Wire]] = None,
        name: Optional[str] = None,
    ) -> Node:
        """Place ``element`` in the circuit, wiring its ports.

        ``input_wires`` must already exist (they are outputs of other nodes or
        input generators). ``output_wires`` are created fresh when omitted.
        Returns the new :class:`Node`.
        """
        if output_wires is None:
            output_wires = [Wire() for _ in element.outputs]
        if name is None:
            count = self._type_counts.get(element.name, 0)
            self._type_counts[element.name] = count + 1
            name = f"{element.name.lower()}{count}"
        node = Node(element, input_wires, output_wires, name=name)

        for port, wire in node.input_wires.items():
            # A wire may be consumed before its driver is placed (feedback
            # loops); validate() checks every consumed wire ends up driven.
            if wire in self.dest_of:
                other_node, other_port = self.dest_of[wire]
                raise FanoutError(
                    f"Wire {wire.name!r} already connects to input '{other_port}' of "
                    f"'{other_node.element.name}'; SCE outputs cannot fan out — insert "
                    "a splitter (see split())"
                )
            self.dest_of[wire] = (node, port)
            self._adopt_wire(wire)

        for port, wire in node.output_wires.items():
            if wire in self.source_of:
                other_node, other_port = self.source_of[wire]
                raise WireError(
                    f"Wire {wire.name!r} is already driven by output '{other_port}' "
                    f"of '{other_node.element.name}'"
                )
            self.source_of[wire] = (node, port)
            self._wires.append(wire)
            self._adopt_wire(wire)
            self._index_wire(wire)

        self.nodes.append(node)
        self._mutated()
        return node

    def add_input(self, element: InGen, name: Optional[str] = None) -> Wire:
        """Place an input generator; returns its output wire."""
        wire = Wire(name)
        self.add_node(element, [], [wire])
        return wire

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def wires(self) -> List[Wire]:
        """All wires, in creation order."""
        return list(self._wires)

    def node_of_wire(self, wire: Wire) -> Optional[Tuple[Node, str]]:
        """The (node, input port) consuming this wire, or None (circuit output)."""
        return self.dest_of.get(wire)

    def output_wires(self) -> List[Wire]:
        """Wires with no consumer: the circuit's outputs."""
        return [w for w in self._wires if w not in self.dest_of]

    def input_nodes(self) -> List[Node]:
        """Nodes whose element is an input generator."""
        return [n for n in self.nodes if isinstance(n.element, InGen)]

    def cells(self) -> List[Node]:
        """Nodes that are actual cells (not input generators)."""
        return [n for n in self.nodes if not isinstance(n.element, InGen)]

    def _index_wire(self, wire: Wire) -> None:
        """Register a driven wire's name and alias in the lookup index.

        User-visible name collisions are rejected here (loudly, at
        construction time) rather than at :meth:`validate`; auto-generated
        names keep first-registration-wins lookup, matching the semantics of
        the old linear scan.
        """
        for label in {wire.name, wire.observed_as}:
            existing = self._wire_index.get(label)
            if existing is None:
                self._wire_index[label] = wire
            elif (existing is not wire and wire.is_user_named
                  and existing.is_user_named):
                raise WireError(
                    f"Two wires observed under the same name {label!r}; names must "
                    "be unique for simulation events to be unambiguous"
                )

    def _rename_wire(self, wire: Wire, name: str) -> None:
        """Re-alias an indexed wire, rejecting duplicate user-visible names.

        Called by :meth:`Wire.observe` before the alias changes. The index
        stays consistent through the rename: the new alias resolves
        immediately (also for consumed-but-not-yet-driven feedback wires,
        which used to stay unfindable until driven), the wire's own ``name``
        keeps resolving, and a superseded alias is dropped rather than left
        dangling. Colliding with an existing *auto-generated* entry keeps
        first-registration-wins, matching :meth:`_index_wire`.
        """
        existing = self._wire_index.get(name)
        if existing is not None and existing is not wire and existing.is_user_named:
            raise WireError(
                f"Two wires observed under the same name {name!r}; names must "
                "be unique for simulation events to be unambiguous"
            )
        old_alias = wire.observed_as
        if old_alias != wire.name and self._wire_index.get(old_alias) is wire:
            del self._wire_index[old_alias]
        if existing is None or existing is wire:
            self._wire_index[name] = wire
        self._mutated()

    def find_wire(self, name: str) -> Wire:
        """Look up a wire by its name or observation alias (O(1))."""
        wire = self._wire_index.get(name)
        if wire is None:
            raise WireError(f"No wire named {name!r} in this circuit")
        return wire

    def index_problems(self) -> List[str]:
        """Consistency audit of the wire-name index against the wire lists.

        Returns human-readable descriptions of every disagreement between
        ``_wire_index`` and the circuit's actual wires — an empty list means
        the index is sound. Exercised by the lint self-check in
        :func:`repro.lint.circuit_rules.lint_circuit` after rename/feedback
        patterns, and directly by tests.
        """
        problems: List[str] = []
        attached = set(map(id, self._wires))
        attached.update(id(w) for w in self.dest_of)
        for label, wire in self._wire_index.items():
            if id(wire) not in attached:
                problems.append(
                    f"index entry {label!r} points at wire {wire.name!r} "
                    "which is no longer attached to this circuit"
                )
            elif label not in (wire.name, wire.observed_as):
                problems.append(
                    f"index entry {label!r} points at wire {wire.name!r} "
                    f"(observed as {wire.observed_as!r}) which no longer "
                    "carries that label"
                )
        for wire in self._wires:
            for label in {wire.name, wire.observed_as}:
                entry = self._wire_index.get(label)
                if entry is None:
                    problems.append(
                        f"driven wire {wire.name!r} (observed as "
                        f"{wire.observed_as!r}) is missing from the index "
                        f"under {label!r}"
                    )
                elif entry is not wire and label not in (
                    entry.name, entry.observed_as
                ):
                    problems.append(
                        f"label {label!r} of wire {wire.name!r} resolves to "
                        f"wire {entry.name!r} which does not carry it"
                    )
        return problems

    def validate(self) -> None:
        """Run whole-circuit structural checks.

        Add-time checks already guarantee single-driver/single-reader; this
        re-verifies and additionally rejects empty circuits and duplicate
        observation names, which would make the events dict ambiguous.
        """
        if not self.nodes:
            raise PylseError("Circuit is empty: nothing to simulate")
        for wire, (node, port) in self.dest_of.items():
            if wire not in self.source_of:
                raise WireError(
                    f"Wire {wire.name!r} (input '{port}' of "
                    f"'{node.element.name}') has no driver; connect it to an "
                    "element output or an input generator"
                )
        seen: Dict[str, Wire] = {}
        for wire in self._wires:
            label = wire.observed_as
            if wire.is_user_named and label in seen:
                raise WireError(
                    f"Two wires observed under the same name {label!r}; names must "
                    "be unique for simulation events to be unambiguous"
                )
            if wire.is_user_named:
                seen[label] = wire

    def reset_elements(self) -> None:
        """Reset all element state so the circuit can be re-simulated."""
        for node in self.nodes:
            node.element.reset()

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"Circuit({len(self.nodes)} nodes, {len(self._wires)} wires)"


# ----------------------------------------------------------------------
# The ambient working circuit
# ----------------------------------------------------------------------
_working_circuit: Circuit = Circuit()


def working_circuit() -> Circuit:
    """The ambient circuit that the helper functions elaborate into."""
    return _working_circuit


def reset_working_circuit() -> Circuit:
    """Discard the working circuit and start a fresh one.

    Also restarts automatic wire/node naming so names like ``_0`` are stable
    across tests. Returns the new circuit.
    """
    global _working_circuit
    _working_circuit = Circuit()
    Wire._reset_names()
    Node._reset_ids()
    return _working_circuit


@contextlib.contextmanager
def fresh_circuit() -> Iterator[Circuit]:
    """Context manager giving a temporary, isolated working circuit.

    >>> with fresh_circuit() as circ:
    ...     pass  # build and simulate in isolation
    """
    global _working_circuit
    saved = _working_circuit
    _working_circuit = Circuit()
    try:
        yield _working_circuit
    finally:
        _working_circuit = saved
