"""The compiled circuit IR: one frozen, validated netlist for every backend.

PyLSE's pipeline is elaborate-once, consume-many (PLDI '22 Section 4): the
same network of PyLSE Machines feeds the discrete-event simulator, the
static timing analysis, the lint rules, and the timed-automata translation.
:func:`compile_circuit` runs the Section 4.2 structural checks **once** and
produces a :class:`CompiledCircuit` — an immutable view of the netlist with

* dense integer node and wire ids (position in elaboration order);
* topology arrays: per-wire source/destination, the circuit's outputs, a
  deterministic topological order with the feedback-edge set that had to be
  cut to obtain it, and the cyclic strongly-connected components;
* canonical name indexes (``node_index``, ``node_by_name``) replacing the
  per-backend ``{node.name: node}`` rebuilds;
* per-node dispatch specs and per-output nominal delay windows, precomputed
  so :meth:`repro.core.simulation.Simulation.simulate` and
  :mod:`repro.core.analysis` never re-derive them;
* the structurally identified clock inputs (every circuit input whose
  pulses reach a ``clk`` port);
* a stable :attr:`~CompiledCircuit.structural_hash`.

The compile result is memoized on the circuit (keyed by its mutation
version), so repeated ``simulate()`` / ``measure_yield()`` /
``critical_sigma()`` calls on the same design never recompile; it is also
picklable, which is how the parallel Monte-Carlo workers receive the
elaborated design exactly once (see :mod:`repro.core.parallel`).

The structural hash is a Weisfeiler–Lehman-style digest over element
behavior (machine transitions, hole delays, input schedules), port wiring,
and user-visible wire labels. It is computed from dense ids and sorted
neighbor multisets, so it is independent of the process-global anonymous
wire counter, of node insertion order for isomorphic builds, and of the
process it runs in — while any change to a delay, a transition, a
connection, or an observed label changes it. Auto-generated node names and
anonymous wire names deliberately do not participate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from .circuit import Circuit
from .element import Element, InGen
from .errors import PylseError
from .functional import Functional
from .node import Node
from .timing import Distribution, Normal, Uniform, nominal_delay
from .transitional import Transitional
from .wire import Wire

#: Rounds of neighborhood refinement in the structural hash. Three rounds
#: fold every node's 3-hop neighborhood into its label — enough to make any
#: single rewiring change the digest while keeping compilation O(rounds *
#: edges); the final digest also mixes in every edge explicitly, so even
#: changes beyond the refinement horizon cannot cancel out.
_HASH_ROUNDS = 3

#: Bumped whenever the hash recipe changes, so stale manifests fail loudly.
_HASH_VERSION = "repro-ir-v1"


@dataclass(frozen=True)
class OutSpec:
    """Static routing of one output port of one node."""

    port: str
    wire_id: int
    #: Dense id of the consuming node, or -1 for a circuit output.
    dest: int
    #: Input port on the consumer ('' for a circuit output).
    dest_port: str


@dataclass(frozen=True)
class NodeDispatch:
    """Everything ``simulate()`` needs to know about a node, decided once.

    ``uses_raw`` selects the delivery entry point (``raw_firings`` keeps
    distribution-valued delays for the drain loops to resolve;
    ``handle_inputs`` is the plain-element fallback), mirroring the
    ``isinstance`` checks the simulator used to repeat per call.
    """

    index: int
    name: str
    cell: str
    is_input: bool
    is_transitional: bool
    uses_raw: bool
    outs: Tuple[OutSpec, ...]


@dataclass(frozen=True)
class CompiledCircuit:
    """A frozen, validated, consume-many view of an elaborated circuit.

    Node and wire ids are dense integers in elaboration order, so every
    per-node or per-wire annotation is a tuple indexed by id. The dataclass
    is frozen: backends share one instance and none may mutate it.
    """

    circuit: Circuit
    #: Mutation version of ``circuit`` this compile reflects.
    version: int
    #: Whether ``Circuit.validate()`` has passed for this revision. Lint
    #: compiles tolerantly (``validate=False``) so it can report on broken
    #: circuits (undriven wires are its PL204 finding, not a crash); a later
    #: strict consumer re-validates once and flips this.
    validated: bool
    structural_hash: str

    # -- nodes ---------------------------------------------------------
    nodes: Tuple[Node, ...]
    node_index: Dict[str, int]
    cell_ids: Tuple[int, ...]
    input_ids: Tuple[int, ...]
    dispatch: Tuple[NodeDispatch, ...]

    # -- wires ---------------------------------------------------------
    wires: Tuple[Wire, ...]
    wire_index: Dict[str, int]
    labels: Tuple[str, ...]
    #: Per wire id: (driving node id, output port).
    wire_source: Tuple[Tuple[int, str], ...]
    #: Per wire id: (consuming node id, input port), or None (circuit output).
    wire_dest: Tuple[Optional[Tuple[int, str]], ...]
    output_wire_ids: Tuple[int, ...]

    # -- topology ------------------------------------------------------
    #: Every dataflow edge as (source node id, dest node id, wire id).
    edges: Tuple[Tuple[int, int, int], ...]
    #: All node ids in a deterministic topological order (feedback edges
    #: ignored); a valid dataflow order for the acyclic part.
    topo_order: Tuple[int, ...]
    #: The edges that point backwards in ``topo_order`` — empty iff acyclic.
    feedback_edges: FrozenSet[Tuple[int, int, int]]
    is_acyclic: bool
    #: Strongly-connected components containing a cycle, node ids sorted by
    #: node name (the order the lint rules report them in).
    cyclic_sccs: Tuple[Tuple[int, ...], ...]

    # -- precomputed annotations ---------------------------------------
    #: (cell node id, output port) -> (min, max) nominal firing delay.
    delay_windows: Dict[Tuple[int, str], Tuple[float, float]]
    #: Input label -> names of cells whose ``clk`` port its pulses reach.
    clock_wires: Dict[str, Tuple[str, ...]]
    #: Elements whose ``reset()`` actually does something (cheap re-runs).
    stateful_elements: Tuple[Element, ...]

    #: Per-instance scratch for lazily derived views (never pickled).
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_cache"] = {}
        return state

    # -- name lookups --------------------------------------------------
    def node(self, name: str) -> Node:
        """Node by name (the shared replacement for ``{n.name: n}`` maps)."""
        try:
            return self.nodes[self.node_index[name]]
        except KeyError:
            raise PylseError(f"No node named {name!r} in this circuit") from None

    @property
    def node_by_name(self) -> Dict[str, Node]:
        """Read-only name -> Node view (built once per compile)."""
        view = self._cache.get("node_by_name")
        if view is None:
            view = self._cache["node_by_name"] = {
                name: self.nodes[i] for name, i in self.node_index.items()
            }
        return view

    def cells(self) -> List[Node]:
        """Placed cells in elaboration order (matches ``Circuit.cells``)."""
        return [self.nodes[i] for i in self.cell_ids]

    def input_nodes(self) -> List[Node]:
        """Input generators in elaboration order."""
        return [self.nodes[i] for i in self.input_ids]

    def delay_window(self, node: Union[Node, str, int], port: str) -> Tuple[float, float]:
        """(min, max) nominal firing delay of an output port."""
        if isinstance(node, Node):
            node = self.node_index[node.name]
        elif isinstance(node, str):
            node = self.node_index[node]
        try:
            return self.delay_windows[(node, port)]
        except KeyError:
            name = self.nodes[node].name
            raise PylseError(
                f"{name}: output {port!r} is never fired by any transition"
            ) from None

    def topo_nodes(self) -> List[Node]:
        """Nodes in the compiled topological order."""
        return [self.nodes[i] for i in self.topo_order]

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"CompiledCircuit({len(self.nodes)} nodes, {len(self.wires)} "
            f"wires, hash {self.structural_hash[:12]})"
        )


# ----------------------------------------------------------------------
# Hashing helpers
# ----------------------------------------------------------------------
def _delay_token(delay) -> tuple:
    """A process-stable token for a delay value or distribution."""
    if isinstance(delay, Normal):
        return ("normal", repr(float(delay.mean)), repr(float(delay.stddev)))
    if isinstance(delay, Uniform):
        return ("uniform", repr(float(delay.low)), repr(float(delay.high)))
    if isinstance(delay, Distribution):  # user-defined distribution
        return ("dist", type(delay).__name__, repr(float(delay.nominal())))
    return ("const", repr(float(delay)))


def _element_signature(element: Element) -> tuple:
    """Behavioral identity of an element, independent of placement.

    Captures everything the simulator and the static analyses consume:
    machine transitions with their delays, constraints and priorities for
    cells; delays and port lists for holes; the pulse schedule for input
    generators. Functional holes hash by interface only — their Python body
    is opaque (the same caveat the serializer and the TA translation carry).
    """
    if isinstance(element, InGen):
        return ("in", tuple(repr(float(t)) for t in element.times))
    if isinstance(element, Transitional):
        machine = element.machine
        transitions = tuple(sorted(
            (
                t.source, t.trigger, t.dest, t.priority,
                repr(float(t.transition_time)),
                tuple(sorted(
                    (out, _delay_token(d)) for out, d in t.firing.items()
                )),
                tuple(sorted(
                    (sym, repr(float(dist)))
                    for sym, dist in t.past_constraints.items()
                )),
            )
            for t in machine.transitions
        ))
        return (
            "cell", element.name, machine.initial,
            tuple(machine.inputs), tuple(machine.outputs), transitions,
        )
    if isinstance(element, Functional):
        return (
            "hole", element.name, tuple(element.inputs),
            tuple(element.outputs),
            tuple(sorted(
                (out, _delay_token(d)) for out, d in element.delays.items()
            )),
        )
    return ("element", element.name, tuple(element.inputs), tuple(element.outputs))


def _digest(*parts) -> str:
    """sha256 over the repr of nested tuples of primitives (process-stable)."""
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def _structural_hash(
    nodes: Sequence[Node],
    in_edges: Sequence[List[Tuple[int, str, str, Optional[str]]]],
    out_edges: Sequence[List[Tuple[int, str, str, Optional[str]]]],
    open_outputs: Sequence[List[Tuple[str, Optional[str]]]],
) -> str:
    """Weisfeiler–Lehman digest of the netlist.

    ``in_edges[i]`` / ``out_edges[i]`` hold ``(neighbor id, my port, their
    port, wire label)`` per dataflow edge; ``open_outputs[i]`` holds
    ``(port, wire label)`` for outputs feeding no consumer. Wire labels are
    the user-visible observation names (None for anonymous wires), so a
    rename that changes the events dict changes the hash while the
    anonymous counter does not.
    """
    labels = [
        _digest(
            _element_signature(node.element),
            tuple(open_outputs[i]),
        )
        for i, node in enumerate(nodes)
    ]
    for _ in range(_HASH_ROUNDS):
        labels = [
            _digest(
                labels[i],
                tuple(sorted(
                    (labels[n], my_port, their_port, wlabel)
                    for n, my_port, their_port, wlabel in in_edges[i]
                )),
                tuple(sorted(
                    (labels[n], my_port, their_port, wlabel)
                    for n, my_port, their_port, wlabel in out_edges[i]
                )),
            )
            for i in range(len(nodes))
        ]
    edge_digest = tuple(sorted(
        (labels[i], my_port, labels[n], their_port, wlabel)
        for i in range(len(nodes))
        for n, my_port, their_port, wlabel in out_edges[i]
    ))
    return _digest(_HASH_VERSION, len(nodes), tuple(sorted(labels)), edge_digest)


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------
def _topological_order(
    n: int, edges: Sequence[Tuple[int, int, int]]
) -> Tuple[List[int], set]:
    """Kahn's algorithm with deterministic forcing on cycles.

    Returns ``(order, feedback)`` where ``order`` contains every node id
    exactly once (smallest-id-first among ready nodes) and ``feedback`` is
    the set of edges pointing backwards (or self-loops) in that order —
    empty iff the circuit is acyclic. Cycles are broken by forcing the
    smallest-id node whose remaining predecessors are all stuck, which
    keeps the order reproducible across processes.
    """
    import heapq

    indegree = [0] * n
    succs: List[List[int]] = [[] for _ in range(n)]
    for src, dst, _ in edges:
        if src != dst:
            indegree[dst] += 1
            succs[src].append(dst)
    ready = [i for i in range(n) if indegree[i] == 0]
    heapq.heapify(ready)
    order: List[int] = []
    placed = [False] * n
    remaining = n
    while remaining:
        if ready:
            i = heapq.heappop(ready)
            if placed[i]:
                continue
        else:
            # Cycle: force the smallest unplaced node.
            i = next(k for k in range(n) if not placed[k])
        placed[i] = True
        order.append(i)
        remaining -= 1
        for dst in succs[i]:
            if placed[dst]:
                continue
            indegree[dst] -= 1
            if indegree[dst] == 0:
                heapq.heappush(ready, dst)
    position = {node: k for k, node in enumerate(order)}
    feedback = {
        (src, dst, wid)
        for src, dst, wid in edges
        if position[src] >= position[dst]
    }
    return order, feedback


def _cyclic_sccs(
    n: int, edges: Sequence[Tuple[int, int, int]], names: Sequence[str]
) -> Tuple[Tuple[int, ...], ...]:
    """Strongly-connected components that contain a cycle (Tarjan).

    Components are returned with member ids sorted by node name and the
    component list sorted by its first member's name — the order the lint
    feedback-loop rule reports them in.
    """
    succs: List[List[int]] = [[] for _ in range(n)]
    self_loop = [False] * n
    for src, dst, _ in edges:
        if src == dst:
            self_loop[src] = True
        else:
            succs[src].append(dst)

    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    counter = [0]
    components: List[List[int]] = []

    def strongconnect(root: int) -> None:
        # Iterative Tarjan (deep pipelines would blow the recursion limit).
        work = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index_of[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for k in range(pi, len(succs[v])):
                w = succs[v][k]
                if index_of[w] == -1:
                    work[-1] = (v, k + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)

    for v in range(n):
        if index_of[v] == -1:
            strongconnect(v)

    cyclic = [
        tuple(sorted(component, key=lambda i: names[i]))
        for component in components
        if len(component) > 1 or self_loop[component[0]]
    ]
    cyclic.sort(key=lambda component: names[component[0]])
    return tuple(cyclic)


def _clock_wires(
    nodes: Sequence[Node],
    input_ids: Sequence[int],
    edges: Sequence[Tuple[int, int, int]],
    wire_source: Sequence[Tuple[int, str]],
    wire_dest: Sequence[Optional[Tuple[int, str]]],
) -> Dict[str, Tuple[str, ...]]:
    """Structural clock identification (same result as analysis.clock_wires).

    An input is a clock iff its pulses reach at least one cell input port
    named ``clk`` through any fabric; the value lists the clocked cells.
    """
    succs: List[List[int]] = [[] for _ in range(len(nodes))]
    for src, dst, _ in edges:
        succs[src].append(dst)
    # Source node id -> names of clk-consuming nodes it directly feeds.
    direct: Dict[int, set] = {}
    for wid, dest in enumerate(wire_dest):
        if dest is not None and dest[1] == "clk":
            direct.setdefault(wire_source[wid][0], set()).add(
                nodes[dest[0]].name
            )

    result: Dict[str, Tuple[str, ...]] = {}
    for input_id in input_ids:
        reached = {input_id}
        stack = [input_id]
        while stack:
            for w in succs[stack.pop()]:
                if w not in reached:
                    reached.add(w)
                    stack.append(w)
        clocked = sorted({
            name for src in reached & direct.keys() for name in direct[src]
        })
        if clocked:
            label = nodes[input_id].output_wires["out"].observed_as
            result[label] = tuple(clocked)
    return result


# ----------------------------------------------------------------------
# The compile pass
# ----------------------------------------------------------------------
def compile_circuit(circuit: Circuit, validate: bool = True) -> CompiledCircuit:
    """Validate once and freeze the netlist for every backend.

    The result is memoized on the circuit keyed by its mutation version
    (``Circuit.add_node`` and ``Wire.observe`` bump it), so calling this
    anywhere — ``simulate()``, ``lint_circuit()``, ``translate_circuit()``,
    ``circuit_to_json()`` — compiles at most once per circuit revision.

    ``validate=False`` compiles without the whole-circuit structural checks
    (lint uses this: an undriven wire is its PL204 *finding*, not a crash).
    Consumed-but-undriven wires then simply don't appear in the IR's wire
    tables, matching how the graph walks this replaces treated them. A
    strict call on a tolerantly-compiled memo re-validates once.
    """
    cached = getattr(circuit, "_compiled_ir", None)
    if cached is not None and cached.version == circuit.version:
        if validate and not cached.validated:
            circuit.validate()
            object.__setattr__(cached, "validated", True)
        return cached

    if validate:
        circuit.validate()
    version = circuit.version

    nodes = tuple(circuit.nodes)
    node_index: Dict[str, int] = {}
    for i, node in enumerate(nodes):
        if node.name in node_index:
            raise PylseError(
                f"Two nodes named {node.name!r}; node names must be unique "
                "for dispatch records and findings to be unambiguous"
            )
        node_index[node.name] = i

    wires = tuple(circuit.wires)
    wire_ids: Dict[int, int] = {id(w): k for k, w in enumerate(wires)}
    labels = tuple(w.observed_as for w in wires)
    wire_index: Dict[str, int] = {}
    for k, wire in enumerate(wires):
        for name in {wire.name, wire.observed_as}:
            wire_index.setdefault(name, k)

    wire_source = tuple(
        (node_index[circuit.source_of[w][0].name], circuit.source_of[w][1])
        for w in wires
    )
    wire_dest: List[Optional[Tuple[int, str]]] = []
    for wire in wires:
        dest = circuit.dest_of.get(wire)
        wire_dest.append(
            None if dest is None else (node_index[dest[0].name], dest[1])
        )
    output_wire_ids = tuple(
        k for k, dest in enumerate(wire_dest) if dest is None
    )

    cell_ids = tuple(
        i for i, node in enumerate(nodes) if not isinstance(node.element, InGen)
    )
    input_ids = tuple(
        i for i, node in enumerate(nodes) if isinstance(node.element, InGen)
    )

    # -- dispatch specs and hash adjacency ------------------------------
    dispatch: List[NodeDispatch] = []
    in_edges: List[List[Tuple[int, str, str, Optional[str]]]] = [
        [] for _ in nodes
    ]
    out_edges: List[List[Tuple[int, str, str, Optional[str]]]] = [
        [] for _ in nodes
    ]
    open_outputs: List[List[Tuple[str, Optional[str]]]] = [[] for _ in nodes]
    edges: List[Tuple[int, int, int]] = []
    for i, node in enumerate(nodes):
        element = node.element
        is_input = isinstance(element, InGen)
        is_transitional = isinstance(element, Transitional)
        outs: List[OutSpec] = []
        for port, wire in node.output_wires.items():
            wid = wire_ids[id(wire)]
            wlabel = wire.observed_as if wire.is_user_named else None
            dest = wire_dest[wid]
            if dest is None:
                outs.append(OutSpec(port, wid, -1, ""))
                open_outputs[i].append((port, wlabel))
            else:
                dest_id, dest_port = dest
                outs.append(OutSpec(port, wid, dest_id, dest_port))
                edges.append((i, dest_id, wid))
                out_edges[i].append((dest_id, port, dest_port, wlabel))
                in_edges[dest_id].append((i, dest_port, port, wlabel))
        dispatch.append(NodeDispatch(
            index=i,
            name=node.name,
            cell=element.name,
            is_input=is_input,
            is_transitional=is_transitional,
            uses_raw=is_transitional or isinstance(element, Functional),
            outs=tuple(outs),
        ))

    edges_tuple = tuple(edges)
    names = [node.name for node in nodes]
    order, feedback = _topological_order(len(nodes), edges_tuple)
    cyclic = _cyclic_sccs(len(nodes), edges_tuple, names)

    # -- per-output nominal delay windows -------------------------------
    delay_windows: Dict[Tuple[int, str], Tuple[float, float]] = {}
    for i in cell_ids:
        element = nodes[i].element
        if isinstance(element, Transitional):
            windows: Dict[str, Tuple[float, float]] = {}
            for t in element.machine.transitions:
                for out, delay in t.firing.items():
                    d = nominal_delay(delay)
                    lo, hi = windows.get(out, (d, d))
                    windows[out] = (min(lo, d), max(hi, d))
            for out, window in windows.items():
                delay_windows[(i, out)] = window
        elif isinstance(element, Functional):
            for out, delay in element.delays.items():
                d = nominal_delay(delay)
                delay_windows[(i, out)] = (d, d)

    clock_map = _clock_wires(
        nodes, input_ids, edges_tuple, wire_source, wire_dest
    )

    stateful = tuple(
        node.element for node in nodes
        if type(node.element).reset is not Element.reset
    )

    compiled = CompiledCircuit(
        circuit=circuit,
        version=version,
        validated=validate,
        structural_hash=_structural_hash(
            nodes, in_edges, out_edges, open_outputs
        ),
        nodes=nodes,
        node_index=node_index,
        cell_ids=cell_ids,
        input_ids=input_ids,
        dispatch=tuple(dispatch),
        wires=wires,
        wire_index=wire_index,
        labels=labels,
        wire_source=wire_source,
        wire_dest=tuple(wire_dest),
        output_wire_ids=output_wire_ids,
        edges=edges_tuple,
        topo_order=tuple(order),
        feedback_edges=frozenset(feedback),
        is_acyclic=not feedback,
        cyclic_sccs=cyclic,
        delay_windows=delay_windows,
        clock_wires=clock_map,
        stateful_elements=stateful,
    )
    circuit._compiled_ir = compiled
    return compiled


def structural_hash(circuit: Circuit) -> str:
    """The circuit's stable structural hash (compiles if needed)."""
    return compile_circuit(circuit).structural_hash


def result_cache_key(
    digest: str,
    *,
    sigma: float,
    n_seeds: int,
    seed0: int = 0,
    batch: Union[int, str, None] = None,
) -> Tuple[str, str, float, int, int, Union[int, str]]:
    """The canonical memo key for one Monte-Carlo yield measurement.

    Two measurements with equal keys are guaranteed to produce equal
    :class:`~repro.core.montecarlo.YieldResult` values (sigma, counts,
    failures), so the key is safe to use for cross-request result caching
    (:mod:`repro.serve`). The key covers exactly the inputs that determine
    the result:

    * ``digest`` — the circuit's :func:`structural_hash`, which already
      folds in element behavior, wiring, overrides, and input schedules;
    * ``sigma`` and the contiguous seed range ``seed0 .. seed0 + n_seeds``;
    * the normalized ``batch`` spec (``None``/``"auto"`` collapse to
      ``"auto"``: the auto-picked lane width is a pure function of the
      seed count, and batched results are element-wise identical to
      per-seed ones anyway — only ``batch=0`` selects the reference drain,
      which is also outcome-identical but kept distinct for auditability).

    ``workers`` and the engine policy are deliberately **not** part of the
    key: every backend path is bit-identical for the same seed list (the
    determinism contract of :mod:`repro.core.parallel`), so a result
    computed serially may be served to a pooled request and vice versa.

    The hash-recipe version is mixed in so caches survive across releases
    without ever serving a result computed under a different hash recipe.
    """
    if isinstance(n_seeds, bool) or not isinstance(n_seeds, int) or n_seeds < 1:
        raise PylseError(f"n_seeds must be a positive integer, got {n_seeds!r}")
    if isinstance(seed0, bool) or not isinstance(seed0, int):
        raise PylseError(f"seed0 must be an integer, got {seed0!r}")
    if batch in (None, "auto"):
        norm_batch: Union[int, str] = "auto"
    elif isinstance(batch, int) and not isinstance(batch, bool) and batch >= 0:
        norm_batch = batch
    else:
        raise PylseError(
            f"batch must be a non-negative integer, 'auto', or None, "
            f"got {batch!r}"
        )
    return (_HASH_VERSION, digest, float(sigma), n_seeds, seed0, norm_batch)


def lint_cache_key(
    digest: str,
    *,
    rules: Tuple[str, ...],
    tolerance: float,
    max_states: Optional[int],
    time_limit: Optional[float],
) -> Tuple[str, str, Tuple[str, ...], float, Optional[int], Optional[float]]:
    """The canonical memo key for one reachability-lint analysis (PL4xx).

    Same contract as :func:`result_cache_key` for the serve result cache:
    two analyses with equal keys produce equal findings, so a warm re-lint
    of an unchanged design is a dict hit. The key covers exactly the
    inputs that determine the analysis:

    * ``digest`` — the circuit's :func:`structural_hash` (element behavior,
      wiring, overrides, *and* input schedules — the environment TAs replay
      exactly the schedules the hash already folds in);
    * ``rules`` — the enabled PL4xx subset, normalized sorted (deselecting
      PL402 skips race collection and deselecting PL403 skips witness
      replay, so different subsets are genuinely different analyses);
    * ``tolerance`` — reserved for parity with the interval rules' knob
      (PL4xx findings are exact, but the key mirrors the documented
      ``(hash_version, structural_hash, rule-set, tolerance)`` contract);
    * the exploration budget — a truncated analysis at a small budget must
      never be served to a request with a larger one.

    The hash-recipe version is mixed in so caches survive across releases
    without ever serving findings computed under a different hash recipe.
    """
    if not isinstance(digest, str) or not digest:
        raise PylseError(f"digest must be a non-empty string, got {digest!r}")
    return (
        _HASH_VERSION,
        digest,
        tuple(sorted(rules)),
        float(tolerance),
        max_states,
        None if time_limit is None else float(time_limit),
    )


# ----------------------------------------------------------------------
# Dense dispatch arrays (structure-of-arrays view for batched drains)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DispatchArrays:
    """Flat structure-of-arrays view of the dispatch topology.

    The per-node :class:`NodeDispatch`/:class:`OutSpec` records are the
    object-shaped view ``simulate()`` walks; the batched Monte-Carlo drain
    (:mod:`repro.core.batchsim`) instead wants every successor decision as
    positional lookups over dense ids. Output ports are laid out CSR-style:
    node ``i``'s output slots are ``out_start[i] .. out_start[i + 1]``, and
    slot ``s`` routes port ``out_port[s]`` over wire ``out_wire[s]`` to
    dense node ``out_dest[s]`` (or ``-1`` for a circuit output).

    ``node_key[i]`` is the node's global placement id — the heap grouping
    key both drains order simultaneous pulse groups by — and
    ``out_dest_key[s]`` is the same for the consuming node, so a batched
    push never touches a ``Node`` object.
    """

    node_key: Tuple[int, ...]
    out_start: Tuple[int, ...]
    out_port: Tuple[str, ...]
    out_wire: Tuple[int, ...]
    out_dest: Tuple[int, ...]
    out_dest_key: Tuple[int, ...]
    out_dest_port: Tuple[str, ...]

    def slots(self, index: int) -> range:
        """The CSR slot range of node ``index``'s output ports."""
        return range(self.out_start[index], self.out_start[index + 1])


def dispatch_arrays(compiled: CompiledCircuit) -> DispatchArrays:
    """The (memoized) dense successor/port arrays of a compiled circuit."""
    arrays = compiled._cache.get("dispatch_arrays")
    if arrays is None:
        node_key = tuple(node.node_id for node in compiled.nodes)
        out_start = [0]
        out_port: List[str] = []
        out_wire: List[int] = []
        out_dest: List[int] = []
        out_dest_key: List[int] = []
        out_dest_port: List[str] = []
        for nd in compiled.dispatch:
            for o in nd.outs:
                out_port.append(o.port)
                out_wire.append(o.wire_id)
                out_dest.append(o.dest)
                out_dest_key.append(node_key[o.dest] if o.dest >= 0 else -1)
                out_dest_port.append(o.dest_port)
            out_start.append(len(out_port))
        arrays = compiled._cache["dispatch_arrays"] = DispatchArrays(
            node_key=node_key,
            out_start=tuple(out_start),
            out_port=tuple(out_port),
            out_wire=tuple(out_wire),
            out_dest=tuple(out_dest),
            out_dest_key=tuple(out_dest_key),
            out_dest_port=tuple(out_dest_port),
        )
    return arrays
