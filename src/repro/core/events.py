"""Pulse events and the pending-pulse heap.

The simulator of Section 4.3 "maintains a priority heap of pending pulses
tagged with their destination cells"; ``getSimPulses`` (Figure 6) extracts
the earliest set of simultaneous pulses destined for the same machine. This
module provides that heap with a deterministic tie-break (node id) where the
formal semantics allows a nondeterministic choice.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .node import Node


@dataclass(frozen=True)
class Pulse:
    """A pulse that will arrive at ``time`` on input ``port`` of ``node``."""

    time: float
    node: Node
    port: str


class PulseHeap:
    """Priority heap of pending pulses, ordered by (time, node id).

    Insertion order breaks any remaining ties so behaviour is reproducible.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Pulse]] = []
        self._counter = itertools.count()

    def push(self, pulse: Pulse) -> None:
        heapq.heappush(
            self._heap, (pulse.time, pulse.node.node_id, next(self._counter), pulse)
        )

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop_simultaneous(self) -> Tuple[Node, List[str], float]:
        """Implements ``getSimPulses``.

        Pops every pending pulse that shares the earliest time *and* the
        destination machine of the heap's top entry, returning
        ``(node, ports, time)``. Duplicate pulses on the same port at the
        same instant collapse into one (a port either pulses at an instant
        or it does not).
        """
        if not self._heap:
            raise IndexError("pop from empty pulse heap")
        time, node_id, _, first = self._heap[0]
        node = first.node
        ports: List[str] = []
        while self._heap:
            t, nid, _, pulse = self._heap[0]
            if t != time or nid != node_id:
                break
            heapq.heappop(self._heap)
            if pulse.port not in ports:
                ports.append(pulse.port)
        return node, ports, time
