"""Pulse events and the pending-pulse heap.

The simulator of Section 4.3 "maintains a priority heap of pending pulses
tagged with their destination cells"; ``getSimPulses`` (Figure 6) extracts
the earliest set of simultaneous pulses destined for the same machine. This
module provides that heap with a deterministic tie-break (node id) where the
formal semantics allows a nondeterministic choice.

Performance note: the heap stores flat primitive tuples
``(time, key, seq, payload, port)`` rather than per-pulse objects. ``key``
is the destination node id (grouping + tie-break), ``seq`` is a running
counter that breaks any remaining ties by insertion order, and ``payload``
is whatever the pusher wants back from :meth:`PulseHeap.pop_simultaneous`
(the destination :class:`~repro.core.node.Node` for normal use; the
simulator's fast path pushes its precomputed per-node dispatch record
instead). The :class:`Pulse` dataclass remains as the convenience wrapper
for :meth:`PulseHeap.push`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .node import Node


@dataclass(frozen=True)
class Pulse:
    """A pulse that will arrive at ``time`` on input ``port`` of ``node``."""

    time: float
    node: Node
    port: str


class PulseHeap:
    """Priority heap of pending pulses, ordered by (time, key, insertion).

    ``key`` is normally the destination node id; insertion order breaks any
    remaining ties so behaviour is reproducible.
    """

    __slots__ = ("_heap", "_seq", "max_depth")

    def __init__(self) -> None:
        #: flat entries: (time, key, seq, payload, port)
        self._heap: List[Tuple[float, int, int, Any, str]] = []
        self._seq = 0
        #: High-water mark of pending pulses, reported by the observability
        #: layer as ``max_heap_depth``. Maintained by the simulator's drain
        #: loops when an observer is attached (a per-push check here would
        #: tax the no-observer hot path); 0 otherwise.
        self.max_depth = 0

    def push(self, pulse: Pulse) -> None:
        """Push a :class:`Pulse`; the payload returned on pop is its node."""
        node = pulse.node
        self.push_raw(pulse.time, node.node_id, node, pulse.port)

    def push_raw(self, time: float, key: int, payload: Any, port: str) -> None:
        """Push a flat entry without constructing a :class:`Pulse`.

        ``payload`` is handed back verbatim by :meth:`pop_simultaneous`;
        entries sharing ``(time, key)`` are grouped there.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, key, seq, payload, port))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop_simultaneous(self) -> Tuple[Any, List[str], float]:
        """Implements ``getSimPulses``.

        Pops every pending pulse that shares the earliest time *and* the
        destination key of the heap's top entry, returning
        ``(payload, ports, time)``. Duplicate pulses on the same port at the
        same instant collapse into one (a port either pulses at an instant
        or it does not); a set shadows the ordered port list so the
        duplicate check stays O(1) per pop.
        """
        heap = self._heap
        if not heap:
            raise IndexError("pop from empty pulse heap")
        heappop = heapq.heappop
        time, key, _, payload, port = heappop(heap)
        ports = [port]
        seen = {port}
        while heap:
            top = heap[0]
            if top[0] != time or top[1] != key:
                break
            p = top[4]
            heappop(heap)
            if p not in seen:
                seen.add(p)
                ports.append(p)
        return payload, ports, time
