"""Wires: the stateless connections between PyLSE elements.

In SFQ logic, wires are stateless and gates stateful (Figure 1b of the
paper); a wire simply carries transient pulses from exactly one producer to
at most one consumer. Enforcing single-consumer is the circuit-level fanout
check of Section 4.2 and is done by :mod:`repro.core.circuit`.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .errors import WireError


class Wire:
    """A named, single-driver, single-reader pulse-carrying wire.

    Wires are given automatically generated names (``_0``, ``_1``, ...) when
    created anonymously; :func:`repro.core.helpers.inspect` or the ``name=``
    argument of the cell helper functions attach a user-visible name. The
    simulation's ``events`` mapping is keyed by these names.

    Anonymous names are provisional until the wire attaches to a circuit:
    :meth:`repro.core.circuit.Circuit._adopt_wire` re-assigns them from a
    *per-circuit* counter, so a circuit's ``_k`` names depend only on its
    own construction order — not on how many wires other circuits in the
    process created before (which used to leak through this class-global
    counter into goldens and serialized forms).
    """

    #: Fallback counter for wires that never join a circuit.
    _name_counter = itertools.count()

    __slots__ = ("name", "observed_as", "_user_named", "_circuit")

    def __init__(self, name: Optional[str] = None):
        if name is not None and not isinstance(name, str):
            raise WireError(f"Wire name must be a string, got {type(name).__name__}")
        if name is not None and name == "":
            raise WireError("Wire name must be a non-empty string")
        self._user_named = name is not None
        self.name = name if name is not None else f"_{next(Wire._name_counter)}"
        #: Alias set via inspect(); falls back to the wire's own name.
        self.observed_as: str = self.name
        #: The circuit this wire is registered with (set by Circuit.add_node)
        #: so observe() can reject duplicate user-visible names immediately.
        self._circuit = None

    @property
    def is_user_named(self) -> bool:
        """True if the wire was explicitly named by the user."""
        return self._user_named

    def observe(self, name: str) -> "Wire":
        """Attach a user-visible name for observation during simulation.

        If the wire already belongs to a circuit and ``name`` collides with
        another wire's user-visible name there, this raises
        :class:`~repro.core.errors.WireError` at the call site instead of
        deferring the ambiguity to :meth:`Circuit.validate`.
        """
        if not name or not isinstance(name, str):
            raise WireError(f"Observation name must be a non-empty string, got {name!r}")
        if self._circuit is not None:
            self._circuit._rename_wire(self, name)
        self.observed_as = name
        self._user_named = True
        return self

    def __repr__(self) -> str:
        if self.observed_as != self.name:
            return f"Wire({self.name!r} as {self.observed_as!r})"
        return f"Wire({self.name!r})"

    @classmethod
    def _reset_names(cls) -> None:
        """Restart automatic wire naming (used when resetting the workspace)."""
        cls._name_counter = itertools.count()
