"""Switching-activity energy estimation.

The paper's opening motivation is SCE's "sub-attojoule ultra-high-speed
switching": each Josephson junction dissipates roughly ``E_jj = Ic * PHI0``
per 2-pi phase slip (~2 x 10^-19 J at Ic = 0.1 mA). Combining the
simulator's switching-activity counters with each cell's ``jjs`` area
metric gives a first-order dynamic-energy estimate for a run:

    E(cell) ~= input pulses consumed * jjs(cell) * E_jj

(a worst-case model: every junction in the cell switches once per processed
pulse — real cells switch a subset, so this is an upper bound).

Beyond the dynamic estimate, :func:`cell_cost` / :func:`circuit_cost`
extend the same ``jjs`` attribute into a full first-order static cost
model — bias current, bias-network static power, and layout area — so the
design-space explorer (:mod:`repro.explore`) can trade cost against
latency and yield without simulating. All coefficients are per-junction:

* each junction is DC-biased at ``BIAS_FRACTION x Ic`` (~0.7 Ic, the
  classic RSFQ operating point), so cell bias current is
  ``jjs x 70 uA``;
* the resistor-ladder bias network drops ``V_BIAS`` (2.6 mV, the common
  RSFQ rail) across each tap, so static power is ``I_bias x V_BIAS``
  (~0.18 uW per junction — the dominant power term in RSFQ, orders of
  magnitude above the switching energy at GHz rates);
* layout area is ``AREA_PER_JJ_UM2`` per junction including its shunt
  resistor and bias tap.

These are first-order upper bounds, like the switching model: good for
*comparing* design points in a sweep, not for sign-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .errors import PylseError
from .simulation import Simulation

#: Flux quantum in J/A (Wb): 2.07e-15.
PHI0_WB = 2.067833848e-15

#: Default junction critical current (A), matching repro.analog's 0.1 mA.
DEFAULT_IC_A = 1e-4

#: Energy per junction switching event (J): Ic * PHI0 ~ 0.207 aJ.
E_JJ = DEFAULT_IC_A * PHI0_WB

#: Fraction of Ic each junction is DC-biased at (typical RSFQ bias point).
BIAS_FRACTION = 0.7

#: DC bias current per junction (A): 0.7 x 0.1 mA = 70 uA.
I_BIAS_PER_JJ_A = BIAS_FRACTION * DEFAULT_IC_A

#: Bias-network rail voltage (V): the common 2.6 mV RSFQ supply.
V_BIAS_V = 2.6e-3

#: Static bias power per junction (W): I_bias x V_bias ~ 0.18 uW.
P_STATIC_PER_JJ_W = I_BIAS_PER_JJ_A * V_BIAS_V

#: Layout area per junction (um^2), including shunt and bias tap.
AREA_PER_JJ_UM2 = 50.0


@dataclass(frozen=True)
class CellCost:
    """Static first-order costs of one cell type, derived from ``jjs``.

    ``switching_energy_j`` is the worst-case energy of processing one
    input pulse (every junction slips once); the other fields are
    always-on costs independent of activity.
    """

    cell: str
    jjs: int
    switching_energy_j: float
    bias_current_a: float
    static_power_w: float
    area_um2: float


def cell_cost(element) -> CellCost:
    """The static cost model for one placed element (holes cost zero).

    Accepts anything with a ``jjs`` attribute — an :class:`~repro.sfq.base.SFQ`
    instance or class; elements without ``jjs`` (Functional holes,
    ``InGen`` sources) are behavioral placeholders with no junctions yet
    and cost nothing.
    """
    jjs = getattr(element, "jjs", 0)
    if isinstance(jjs, bool) or not isinstance(jjs, int) or jjs < 0:
        raise PylseError(
            f"cell_cost: jjs must be a non-negative integer, got {jjs!r}"
        )
    return CellCost(
        cell=getattr(element, "name", type(element).__name__),
        jjs=jjs,
        switching_energy_j=jjs * E_JJ,
        bias_current_a=jjs * I_BIAS_PER_JJ_A,
        static_power_w=jjs * P_STATIC_PER_JJ_W,
        area_um2=jjs * AREA_PER_JJ_UM2,
    )


@dataclass(frozen=True)
class CircuitCost:
    """Whole-circuit static cost totals (the explorer's cost axis)."""

    cells: int
    jjs: int
    bias_current_a: float
    static_power_w: float
    area_um2: float
    by_cell_type: Dict[str, int]

    def render(self) -> str:
        lines = [
            f"cells: {self.cells}   junctions: {self.jjs}",
            f"bias current: {self.bias_current_a * 1e3:.3f} mA",
            f"static power: {self.static_power_w * 1e6:.3f} uW",
            f"area: {self.area_um2:.0f} um^2",
        ]
        for cell, count in sorted(self.by_cell_type.items()):
            lines.append(f"  {cell:<8} x{count}")
        return "\n".join(lines)


def circuit_cost(circuit) -> CircuitCost:
    """Sum :func:`cell_cost` over every placed cell — no simulation needed.

    ``circuit`` is a :class:`~repro.core.circuit.Circuit`; input
    generators are excluded (as in :meth:`Circuit.cells`) and holes
    contribute to the cell count but carry zero junctions.
    """
    cells = 0
    jjs = 0
    by_type: Dict[str, int] = {}
    for node in circuit.cells():
        cost = cell_cost(node.element)
        cells += 1
        jjs += cost.jjs
        by_type[cost.cell] = by_type.get(cost.cell, 0) + 1
    return CircuitCost(
        cells=cells,
        jjs=jjs,
        bias_current_a=jjs * I_BIAS_PER_JJ_A,
        static_power_w=jjs * P_STATIC_PER_JJ_W,
        area_um2=jjs * AREA_PER_JJ_UM2,
        by_cell_type=by_type,
    )


@dataclass
class CellEnergy:
    """Energy attributed to one placed cell in a simulation run."""

    node: str
    cell: str
    jjs: int
    pulses_in: int
    pulses_out: int
    energy_joules: float

    @property
    def energy_attojoules(self) -> float:
        return self.energy_joules * 1e18


@dataclass
class EnergyReport:
    """Whole-run energy summary."""

    cells: List[CellEnergy]
    total_joules: float

    @property
    def total_attojoules(self) -> float:
        return self.total_joules * 1e18

    def by_cell_type(self) -> Dict[str, float]:
        """Total joules per cell type, for area/energy breakdowns."""
        totals: Dict[str, float] = {}
        for cell in self.cells:
            totals[cell.cell] = totals.get(cell.cell, 0.0) + cell.energy_joules
        return totals

    def render(self) -> str:
        lines = [
            f"{'node':<12} {'cell':<8} {'jjs':>4} {'in':>5} {'out':>5} {'aJ':>9}"
        ]
        for cell in sorted(self.cells, key=lambda c: -c.energy_joules):
            lines.append(
                f"{cell.node:<12} {cell.cell:<8} {cell.jjs:>4} "
                f"{cell.pulses_in:>5} {cell.pulses_out:>5} "
                f"{cell.energy_attojoules:>9.3f}"
            )
        lines.append(f"total: {self.total_attojoules:.3f} aJ")
        return "\n".join(lines)


def energy_report(sim: Simulation, e_jj: float = E_JJ) -> EnergyReport:
    """Estimate dynamic switching energy for the last ``sim.simulate()`` run.

    Cells without a ``jjs`` attribute (holes) are counted with jjs = 0 —
    they are behavioral placeholders with no physical junctions yet.
    """
    if not sim.activity:
        raise PylseError("No activity recorded: run simulate() first")
    cells: List[CellEnergy] = []
    total = 0.0
    for node in sim.circuit.cells():
        pulses_in, pulses_out = sim.activity.get(node.name, [0, 0])
        jjs = getattr(node.element, "jjs", 0)
        energy = pulses_in * jjs * e_jj
        total += energy
        cells.append(
            CellEnergy(
                node=node.name,
                cell=node.element.name,
                jjs=jjs,
                pulses_in=pulses_in,
                pulses_out=pulses_out,
                energy_joules=energy,
            )
        )
    return EnergyReport(cells=cells, total_joules=total)
