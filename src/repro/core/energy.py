"""Switching-activity energy estimation.

The paper's opening motivation is SCE's "sub-attojoule ultra-high-speed
switching": each Josephson junction dissipates roughly ``E_jj = Ic * PHI0``
per 2-pi phase slip (~2 x 10^-19 J at Ic = 0.1 mA). Combining the
simulator's switching-activity counters with each cell's ``jjs`` area
metric gives a first-order dynamic-energy estimate for a run:

    E(cell) ~= input pulses consumed * jjs(cell) * E_jj

(a worst-case model: every junction in the cell switches once per processed
pulse — real cells switch a subset, so this is an upper bound; bias-network
static power is out of scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .errors import PylseError
from .simulation import Simulation

#: Flux quantum in J/A (Wb): 2.07e-15.
PHI0_WB = 2.067833848e-15

#: Default junction critical current (A), matching repro.analog's 0.1 mA.
DEFAULT_IC_A = 1e-4

#: Energy per junction switching event (J): Ic * PHI0 ~ 0.207 aJ.
E_JJ = DEFAULT_IC_A * PHI0_WB


@dataclass
class CellEnergy:
    """Energy attributed to one placed cell in a simulation run."""

    node: str
    cell: str
    jjs: int
    pulses_in: int
    pulses_out: int
    energy_joules: float

    @property
    def energy_attojoules(self) -> float:
        return self.energy_joules * 1e18


@dataclass
class EnergyReport:
    """Whole-run energy summary."""

    cells: List[CellEnergy]
    total_joules: float

    @property
    def total_attojoules(self) -> float:
        return self.total_joules * 1e18

    def by_cell_type(self) -> Dict[str, float]:
        """Total joules per cell type, for area/energy breakdowns."""
        totals: Dict[str, float] = {}
        for cell in self.cells:
            totals[cell.cell] = totals.get(cell.cell, 0.0) + cell.energy_joules
        return totals

    def render(self) -> str:
        lines = [
            f"{'node':<12} {'cell':<8} {'jjs':>4} {'in':>5} {'out':>5} {'aJ':>9}"
        ]
        for cell in sorted(self.cells, key=lambda c: -c.energy_joules):
            lines.append(
                f"{cell.node:<12} {cell.cell:<8} {cell.jjs:>4} "
                f"{cell.pulses_in:>5} {cell.pulses_out:>5} "
                f"{cell.energy_attojoules:>9.3f}"
            )
        lines.append(f"total: {self.total_attojoules:.3f} aJ")
        return "\n".join(lines)


def energy_report(sim: Simulation, e_jj: float = E_JJ) -> EnergyReport:
    """Estimate dynamic switching energy for the last ``sim.simulate()`` run.

    Cells without a ``jjs`` attribute (holes) are counted with jjs = 0 —
    they are behavioral placeholders with no physical junctions yet.
    """
    if not sim.activity:
        raise PylseError("No activity recorded: run simulate() first")
    cells: List[CellEnergy] = []
    total = 0.0
    for node in sim.circuit.cells():
        pulses_in, pulses_out = sim.activity.get(node.name, [0, 0])
        jjs = getattr(node.element, "jjs", 0)
        energy = pulses_in * jjs * e_jj
        total += energy
        cells.append(
            CellEnergy(
                node=node.name,
                cell=node.element.name,
                jjs=jjs,
                pulses_in=pulses_in,
                pulses_out=pulses_out,
                energy_joules=energy,
            )
        )
    return EnergyReport(cells=cells, total_joules=total)
