"""Optional graphical plotting backend.

The paper's ``sim.plot()`` produces matplotlib pulse plots (Figures 10, 12b,
16). matplotlib is not installed in this reproduction environment, so the
primary renderer is the ASCII one in :mod:`repro.core.simulation`; this
module provides the matplotlib path for environments that have it.
"""

from __future__ import annotations

from typing import Dict, List


def matplotlib_plot(events: Dict[str, List[float]], filename: str | None = None):
    """Plot each wire's pulse train as a row of impulse markers.

    Raises ImportError when matplotlib is unavailable; callers treat that as
    "fall back to ASCII".
    """
    import matplotlib  # noqa: F401  (raises if unavailable)
    import matplotlib.pyplot as plt

    names = list(events)
    fig, axes = plt.subplots(len(names), 1, sharex=True, squeeze=False)
    for ax_row, name in zip(axes, names):
        ax = ax_row[0]
        times = events[name]
        ax.vlines(times, 0, 1)
        ax.set_ylabel(name, rotation=0, ha="right", va="center")
        ax.set_yticks([])
    axes[-1][0].set_xlabel("time (ps)")
    if filename:
        fig.savefig(filename)
    return fig
