"""The discrete-event simulator (Section 4.3).

``Simulation.simulate`` runs the Network Relation of Figure 6 over the
working circuit (or an explicit one): a priority heap of pending pulses is
drained one simultaneous group at a time; each group is dispatched to its
destination element; newly fired pulses are pushed back onto the heap until
it is empty or the ``until`` target time is reached (needed for circuits
with feedback loops).

The result is the ``events`` dictionary mapping every named wire to the
ordered list of pulse times that appeared on it — the object the paper's
Section 5.2 dynamic-correctness checks are written against.

The inner loop is the hot path behind every workload in this repo (Table 2,
the bitonic scaling study, the Section 5.2 Monte-Carlo sweeps), so
``simulate`` front-loads all per-node decisions before draining the heap:

* each node gets a *dispatch record* carrying its bound deliver method
  (``raw_firings`` vs ``handle_inputs`` — no ``isinstance`` per group), its
  activity counters, and a per-output-port map to ``(event series,
  destination record)`` so ``emit`` costs one dict probe instead of two;
* the heap holds flat primitive tuples (see :mod:`repro.core.events`), not
  ``Pulse`` objects;
* variability, tracing, and per-group object bookkeeping live in a separate
  general loop — the common ``simulate()`` call with no noise and no trace
  pays for none of it. Both loops produce bit-identical events for the same
  inputs (the fast path is the reference semantics, minus the bookkeeping).

Observability (:mod:`repro.obs`) is threaded through *both* loops: pass
``observer=Observer()`` to record pulse provenance (every pulse's causal
parents, back to the circuit inputs) and per-cell metrics. The hook
protocol — which observer methods are called, in what order, with what
arguments — is identical in the two loops, so fast and general drains
build identical provenance graphs. With no observer the loops skip all of
it behind a single local flag check.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .circuit import Circuit, working_circuit
from .errors import PylseError, SimulationError
from .events import PulseHeap
from .functional import Functional
from .ir import CompiledCircuit, compile_circuit
from .node import Node
from .timing import Distribution, VariabilitySpec, sample_delay
from .transitional import Transitional
from .wire import Wire

Events = Dict[str, List[float]]

#: Per-node dispatch record indices (plain lists beat attribute access in
#: the inner loop): NODE is the placed node, DELIVER the bound dispatch
#: method, COUNTS the mutable [pulses_in, pulses_out] pair shared with
#: ``Simulation.activity``, OUTS the per-output-port emit map,
#: TRANSITIONAL whether the element carries machine state (trace
#: recording), and INDEX the dense IR index (the counter-noise stream id).
(
    _REC_NODE, _REC_DELIVER, _REC_COUNTS, _REC_OUTS, _REC_TRANSITIONAL,
    _REC_INDEX,
) = range(6)


@dataclass(frozen=True)
class TraceEntry:
    """One dispatch step: a simultaneous pulse group delivered to a node."""

    time: float
    node: str
    cell: str
    ports: Tuple[str, ...]
    state_before: Optional[str]
    state_after: Optional[str]
    fired: Tuple[Tuple[str, float], ...]   # (output port, absolute time)
    #: Provenance ids of the fired pulses, filled when an observer with
    #: provenance enabled accompanies ``record=True``; empty otherwise.
    fired_pids: Tuple[int, ...] = ()

    def __str__(self) -> str:
        ports = "+".join(self.ports)
        fired = (
            ", ".join(f"{port}@{t:g}" for port, t in self.fired) or "-"
        )
        state = (
            f" [{self.state_before} -> {self.state_after}]"
            if self.state_before is not None
            else ""
        )
        return f"t={self.time:g}: {self.node}({self.cell}) <- {ports}{state} => {fired}"


class Simulation:
    """Discrete-event simulation of a circuit of PyLSE Machines and holes.

    >>> from repro import inp_at, inp, and_s, Simulation
    >>> # ... build circuit ...
    >>> sim = Simulation()
    >>> events = sim.simulate()
    >>> print(sim.plot())           # ASCII waveform  # doctest: +SKIP
    """

    def __init__(self, circuit: Union[Circuit, CompiledCircuit, None] = None):
        if isinstance(circuit, CompiledCircuit):
            # A pre-compiled design (e.g. shipped to a Monte-Carlo worker):
            # simulate against its circuit; compile_circuit() will hit the
            # memoized view instead of recompiling.
            circuit = circuit.circuit
        self.circuit = circuit if circuit is not None else working_circuit()
        self.events: Events = {}
        self.until: Optional[float] = None
        self.pulses_processed: int = 0
        #: node name -> (input pulses consumed, output pulses emitted);
        #: filled during simulate() and consumed by repro.core.energy.
        self.activity: Dict[str, List[int]] = {}
        #: dispatch-level trace, filled when simulate(record=True).
        self.trace: List[TraceEntry] = []
        #: the observer of the last simulate(observer=...) call, if any.
        self.observer = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return this simulation (and its circuit) to a pre-run state.

        Clears every per-run artifact — events, trace, activity counters,
        pulse count, the attached observer — and resets element state, so
        the same ``Simulation`` object can be re-simulated as if freshly
        constructed. This is the reuse hook behind the Monte-Carlo
        backends (:mod:`repro.core.parallel`): elaborating and compiling a
        circuit once and resetting between seeds is bit-identical to
        building a fresh circuit per seed, because per-run state lives in
        ``simulate()`` (RNG, variability spec, event series) while the
        per-circuit dispatch topology lives in the memoized
        :class:`repro.core.ir.CompiledCircuit`. With a warm compile cache
        only the *stateful* elements are touched, making reset trivially
        cheap for fabric-heavy designs.
        """
        compiled = self.circuit._compiled_ir
        if compiled is not None and compiled.version == self.circuit.version:
            for element in compiled.stateful_elements:
                element.reset()
        else:
            self.circuit.reset_elements()
        self.events = {}
        self.until = None
        self.pulses_processed = 0
        self.activity = {}
        self.trace = []
        self.observer = None

    # ------------------------------------------------------------------
    def simulate(
        self,
        until: Optional[float] = None,
        variability: Union[bool, dict, Callable[[float, Node], float]] = False,
        seed: Optional[int] = None,
        record: bool = False,
        max_pulses: Optional[int] = 1_000_000,
        observer=None,
    ) -> Events:
        """Run the circuit until the heap drains or ``until`` is reached.

        ``variability`` adds Gaussian noise to firing delays (Section 5.2):
        ``True`` for all cells, a dict selecting ``cell_types`` /
        ``instances`` and the noise magnitude, or a callable
        ``f(delay, node) -> delay`` for full control. ``seed`` makes both
        variability and nondeterministic priority tie-breaks reproducible.
        ``record=True`` keeps a dispatch-level trace in ``self.trace`` (one
        :class:`TraceEntry` per simultaneous pulse group, with machine
        states before/after) — the debugging view of the Network Relation.
        ``max_pulses`` (default one million) guards against unbounded
        feedback loops simulated without an ``until`` horizon; pass None to
        disable. ``observer`` attaches a :class:`repro.obs.Observer` that
        collects pulse provenance and per-cell metrics from either drain
        loop; timing-violation errors then carry the causal chain of the
        offending pulse group.
        """
        circuit = self.circuit
        # Validates the circuit (once per revision) and yields the frozen
        # dispatch topology; repeated simulate() calls hit the memo.
        compiled = compile_circuit(circuit)
        for element in compiled.stateful_elements:
            element.reset()
        spec = VariabilitySpec.normalize(variability, seed)
        rng = random.Random(seed)
        tie_rng = random.Random(rng.random()) if seed is not None else None
        counter = None
        if spec.enabled and spec.scheme == "counter":
            # Counter-based per-(seed, node) noise streams: the width-1
            # form of the vectorized Monte-Carlo drain, bit-identical to
            # one lane of a batched pass over the same seed.
            from .batchsim import CounterNoise

            counter = CounterNoise.for_seeds([seed])

        # ---- instantiate the per-run dispatch plan --------------------
        # Wires sharing an observation label share one series list, exactly
        # as the previous per-emit dict lookup behaved; insertion order is
        # the wires' elaboration order (compiled.labels preserves it).
        events: Events = {}
        series_by_wire: List[List[float]] = [None] * len(compiled.labels)  # type: ignore[list-item]
        for wid, label in enumerate(compiled.labels):
            series = events.get(label)
            if series is None:
                series = events[label] = []
            series_by_wire[wid] = series

        nodes = compiled.nodes
        records: List[Optional[list]] = [None] * len(nodes)
        activity: Dict[str, List[int]] = {}
        for nd in compiled.dispatch:
            if nd.is_input:
                continue
            element = nodes[nd.index].element
            if nd.is_transitional:
                element.set_dispatch_rng(
                    counter.tie_rng(nd.index) if counter is not None
                    else tie_rng
                )
                # Attach (or clear, so no stale list keeps growing) the
                # taken-transition log the observer drains per group.
                element.set_transition_log([] if observer is not None else None)
            deliver = element.raw_firings if nd.uses_raw else element.handle_inputs
            counts = [0, 0]
            activity[nd.name] = counts
            records[nd.index] = [
                nodes[nd.index], deliver, counts, {}, nd.is_transitional,
                nd.index,
            ]
        for nd in compiled.dispatch:
            if nd.is_input:
                continue
            outs = records[nd.index][_REC_OUTS]
            for o in nd.outs:
                if o.dest < 0:
                    outs[o.port] = (
                        series_by_wire[o.wire_id], -1, None, "",
                        compiled.labels[o.wire_id],
                    )
                else:
                    # Heap key stays node.node_id (global placement id),
                    # not the dense IR index: pop ordering of simultaneous
                    # cross-node groups depends on it bit-for-bit.
                    outs[o.port] = (
                        series_by_wire[o.wire_id], nodes[o.dest].node_id,
                        records[o.dest], o.dest_port,
                        compiled.labels[o.wire_id],
                    )

        heap = PulseHeap()
        push = heap.push_raw
        self.pulses_processed = 0
        self.until = until
        self.activity = activity
        self.trace = []
        self.observer = observer
        if observer is not None:
            observer.begin(circuit)

        for i in compiled.input_ids:
            node = nodes[i]
            spec_out = compiled.dispatch[i].outs[0]
            series = series_by_wire[spec_out.wire_id]
            label = compiled.labels[spec_out.wire_id]
            if spec_out.dest < 0:
                series.extend(node.element.times)  # type: ignore[attr-defined]
                if observer is not None:
                    for t in node.element.times:  # type: ignore[attr-defined]
                        observer.on_input(node.name, label, t, -1, "")
                continue
            dkey = nodes[spec_out.dest].node_id
            drec = records[spec_out.dest]
            dport = spec_out.dest_port
            for t in node.element.times:  # type: ignore[attr-defined]
                series.append(t)
                push(t, dkey, drec, dport)
                if observer is not None:
                    observer.on_input(node.name, label, t, dkey, dport)

        try:
            if spec.enabled or record:
                self._drain_general(
                    heap, spec, rng, until, record, max_pulses, observer,
                    counter,
                )
            else:
                self._drain_fast(heap, rng, until, max_pulses, observer)
        finally:
            if observer is not None:
                observer.end(heap.max_depth, self.pulses_processed)

        for series in events.values():
            series.sort()
        self.events = events
        return events

    # ------------------------------------------------------------------
    def _drain_fast(
        self,
        heap: PulseHeap,
        rng: random.Random,
        until: Optional[float],
        max_pulses: Optional[int],
        observer=None,
    ) -> None:
        """Drain the heap with no variability and no trace recording.

        This is the hot path: no per-group objects, no spec/trace checks,
        scalar delays added directly (they were validated non-negative when
        the machine / hole was built). Distribution-valued delays are still
        sampled from ``rng``, matching the general path. An attached
        observer costs one local flag check per group and per firing when
        present, and nothing measurable when absent (``until`` and
        ``max_pulses`` are normalized to infinities so the common case
        drops two per-iteration None-checks in exchange).
        """
        pending = heap._heap
        pop = heap.pop_simultaneous
        push = heap.push_raw
        stop = math.inf if until is None else until
        limit = math.inf if max_pulses is None else max_pulses
        observe = observer is not None
        processed = self.pulses_processed
        # Heap high-water mark, sampled at the top of each iteration (i.e.
        # after the previous group's pushes) so the disabled path pays
        # nothing per push; identical checkpoints in both drain loops.
        max_depth = len(pending) if observe else 0
        while pending:
            if observe:
                depth = len(pending)
                if depth > max_depth:
                    max_depth = depth
            rec, ports, time = pop()
            if time > stop:
                break
            if processed >= limit:
                self._overflow(max_pulses, time)
            processed += len(ports)
            if observe:
                node = rec[_REC_NODE]
                parents = observer.group_parents(node.node_id, ports, time)
                try:
                    firings = rec[_REC_DELIVER](ports, time)
                except SimulationError as err:
                    self.pulses_processed = processed
                    heap.max_depth = max_depth
                    chain = observer.on_violation(
                        node.name, node.element.name, ports, time, parents, err
                    )
                    self._dispatch_error(node, ports, err, chain)
            else:
                try:
                    firings = rec[_REC_DELIVER](ports, time)
                except SimulationError as err:
                    self.pulses_processed = processed
                    self._dispatch_error(rec[_REC_NODE], ports, err)
            counts = rec[_REC_COUNTS]
            counts[0] += len(ports)
            counts[1] += len(firings)
            outs = rec[_REC_OUTS]
            if observe:
                emitted = []
                for out_port, delay in firings:
                    if isinstance(delay, Distribution):
                        delay = delay.sample(rng)
                        if delay < 0:
                            raise PylseError(
                                f"Resolved firing delay is negative: {delay}"
                            )
                    t = time + delay
                    series, dkey, drec, dport, label = outs[out_port]
                    series.append(t)
                    pushed = drec is not None
                    if pushed:
                        push(t, dkey, drec, dport)
                    emitted.append(
                        (out_port, label, t, delay, dkey, dport, pushed)
                    )
                element = node.element
                if rec[_REC_TRANSITIONAL]:
                    log = element._transition_log
                    tlabels = tuple(log)
                    log.clear()
                else:
                    tlabels = ()
                observer.record_group(
                    node.name, element.name, ports, time, tlabels, emitted,
                    parents,
                )
            else:
                for out_port, delay in firings:
                    if isinstance(delay, Distribution):
                        delay = delay.sample(rng)
                        if delay < 0:
                            raise PylseError(
                                f"Resolved firing delay is negative: {delay}"
                            )
                    t = time + delay
                    series, dkey, drec, dport, _label = outs[out_port]
                    series.append(t)
                    if drec is not None:
                        push(t, dkey, drec, dport)
        heap.max_depth = max_depth
        self.pulses_processed = processed

    def _drain_general(
        self,
        heap: PulseHeap,
        spec: VariabilitySpec,
        rng: random.Random,
        until: Optional[float],
        record: bool,
        max_pulses: Optional[int],
        observer=None,
        counter=None,
    ) -> None:
        """Drain the heap with variability and/or trace bookkeeping on.

        Observer hooks fire at the same points, in the same order, with
        the same arguments as in :meth:`_drain_fast`, so both loops build
        identical provenance graphs and metrics for the same stimulus.
        ``counter`` (a width-1 :class:`repro.core.batchsim.CounterNoise`)
        replaces the python-rng delay resolution when the variability spec
        selects the counter scheme.
        """
        pending = heap._heap
        pop = heap.pop_simultaneous
        push = heap.push_raw
        stop = math.inf if until is None else until
        limit = math.inf if max_pulses is None else max_pulses
        observe = observer is not None
        max_depth = len(pending) if observe else 0
        while pending:
            if observe:
                depth = len(pending)
                if depth > max_depth:
                    max_depth = depth
            rec, ports, time = pop()
            if time > stop:
                break
            if self.pulses_processed >= limit:
                self._overflow(max_pulses, time)
            self.pulses_processed += len(ports)
            node = rec[_REC_NODE]
            is_transitional = rec[_REC_TRANSITIONAL]
            state_before = node.element.state if record and is_transitional else None
            parents = (
                observer.group_parents(node.node_id, ports, time)
                if observe else ()
            )
            try:
                firings = rec[_REC_DELIVER](ports, time)
            except SimulationError as err:
                heap.max_depth = max_depth
                chain = (
                    observer.on_violation(
                        node.name, node.element.name, ports, time, parents, err
                    )
                    if observe else None
                )
                self._dispatch_error(node, ports, err, chain)
            counts = rec[_REC_COUNTS]
            counts[0] += len(ports)
            counts[1] += len(firings)
            outs = rec[_REC_OUTS]
            emitted: List[Tuple[str, float]] = []
            obs_emitted = [] if observe else None
            for out_port, delay in firings:
                if counter is not None:
                    resolved = counter.resolve_scalar(
                        delay, rec[_REC_INDEX], node, spec, rng
                    )
                else:
                    resolved = self._resolve_delay(delay, node, spec, rng)
                t = time + resolved
                emitted.append((out_port, t))
                series, dkey, drec, dport, label = outs[out_port]
                series.append(t)
                pushed = drec is not None
                if pushed:
                    push(t, dkey, drec, dport)
                if observe:
                    obs_emitted.append(
                        (out_port, label, t, resolved, dkey, dport, pushed)
                    )
            fired_pids: Tuple[int, ...] = ()
            if observe:
                element = node.element
                if is_transitional:
                    log = element._transition_log
                    tlabels = tuple(log)
                    log.clear()
                else:
                    tlabels = ()
                pids = observer.record_group(
                    node.name, element.name, ports, time, tlabels,
                    obs_emitted, parents,
                )
                if pids:
                    fired_pids = tuple(pids)
            if record:
                self.trace.append(
                    TraceEntry(
                        time=time,
                        node=node.name,
                        cell=node.element.name,
                        ports=tuple(ports),
                        state_before=state_before,
                        state_after=(
                            node.element.state if is_transitional else None
                        ),
                        fired=tuple(emitted),
                        fired_pids=fired_pids,
                    )
                )
        heap.max_depth = max_depth

    # ------------------------------------------------------------------
    def _overflow(self, max_pulses: int, time: float) -> None:
        raise SimulationError(
            f"Simulation exceeded {max_pulses} pulses at t={time:g} "
            "without draining; a feedback loop probably needs an "
            "'until' horizon (or raise max_pulses)"
        )

    def _dispatch_error(
        self,
        node: Node,
        ports: Sequence[str],
        err: SimulationError,
        chain: Optional[str] = None,
    ) -> None:
        """Re-raise a dispatch failure with node/port context attached.

        When an observer recorded provenance, ``chain`` is the causal
        chain of the offending pulse group; it is appended to the message
        and kept on the raised error's ``provenance`` attribute.
        """
        first_out = next(iter(node.output_wires.values()), None)
        where = f"'{first_out.name}'" if first_out is not None else "(no output)"
        inputs = ", ".join(f"'{p}'" for p in ports)
        message = (
            f"Error while sending input(s) {inputs} to the node with output "
            f"wire {where}:\n{err}"
        )
        if chain is not None:
            message += f"\nCausal chain:\n{chain}"
        wrapped = type(err)(message)
        wrapped.provenance = chain
        raise wrapped from None

    def _deliver(self, node: Node, ports: Sequence[str], time: float):
        """Send a simultaneous pulse group to a node, with error context.

        Kept as the standalone (un-precomputed) form of the dispatch the
        drain loops perform via per-node records; used by external callers
        and tests exercising a single node.
        """
        element = node.element
        try:
            if isinstance(element, (Transitional, Functional)):
                return element.raw_firings(ports, time)
            return element.handle_inputs(ports, time)
        except SimulationError as err:
            self._dispatch_error(node, ports, err)

    def _resolve_delay(
        self,
        delay,
        node: Node,
        spec: VariabilitySpec,
        rng: random.Random,
    ) -> float:
        value = sample_delay(delay, rng)
        if not isinstance(delay, Distribution) and spec.applies_to(
            node.element.name, node.name
        ):
            value = spec.perturb(value, node)
        if value < 0:
            raise PylseError(f"Resolved firing delay is negative: {value}")
        return value

    @staticmethod
    def _label(wire: Wire) -> str:
        return wire.observed_as

    # ------------------------------------------------------------------
    def render_trace(self, provenance: bool = False) -> str:
        """The recorded dispatch trace as text (one line per group).

        With ``provenance=True`` (requires ``simulate(record=True,
        observer=Observer())``), each fired pulse is followed by its full
        causal chain back to the circuit inputs.
        """
        if not self.trace:
            raise PylseError(
                "No trace recorded: run simulate(record=True) first"
            )
        if not provenance:
            return "\n".join(str(entry) for entry in self.trace)
        graph = self.observer.graph if self.observer is not None else None
        if graph is None:
            raise PylseError(
                "render_trace(provenance=True) needs simulate(record=True, "
                "observer=Observer()) with provenance enabled"
            )
        from ..obs.provenance import format_chain

        lines = []
        for entry in self.trace:
            lines.append(str(entry))
            for pid in entry.fired_pids:
                lines.append(format_chain(graph, pid, indent="    "))
        return "\n".join(lines)

    def render_chain(self, label: str, occurrence: int = -1) -> str:
        """Causal chain of the n-th pulse on a wire (default: the last).

        Requires the previous ``simulate()`` call to have run with an
        observer collecting provenance.
        """
        if self.observer is None or self.observer.graph is None:
            raise PylseError(
                "No provenance recorded: run simulate(observer=Observer()) "
                "first"
            )
        return self.observer.chain(label, occurrence)

    def plot(self, width: int = 72, file=None) -> str:
        """Render the last simulation's pulses as an ASCII waveform.

        Each named wire gets a row; ``|`` marks a pulse. The rendering is
        returned and also printed to ``file`` (stdout by default) to match
        the paper's ``sim.plot()`` usage. (The paper uses matplotlib — see
        DESIGN.md; an optional matplotlib backend is used if importable.)
        """
        if not self.events:
            raise PylseError("Nothing to plot: run simulate() first")
        rendering = render_waveforms(self.events, width=width)
        print(rendering, file=file)
        self._try_matplotlib()
        return rendering

    def _try_matplotlib(self) -> None:
        try:
            from . import plot as _plot
        except ImportError:
            return
        try:
            _plot.matplotlib_plot(self.events)
        except ImportError:
            # matplotlib itself is an optional dependency; anything else
            # (a genuine plotting bug) propagates to the caller.
            return


def render_waveforms(events: Events, width: int = 72) -> str:
    """Draw pulse trains as fixed-width ASCII art.

    Each wire is one row; ``|`` marks a pulse, positioned proportionally to
    its time within the simulation span, with the pulse times listed after.
    """
    max_time = max((ts[-1] for ts in events.values() if ts), default=0.0)
    span = max(max_time, 1e-9)
    name_width = max((len(k) for k in events), default=4)
    lines = []
    for name, times in events.items():
        row = ["_"] * width
        for t in times:
            col = min(width - 1, int(t / span * (width - 1)))
            row[col] = "|"
        stamps = ", ".join(f"{t:g}" for t in times[:8])
        if len(times) > 8:
            stamps += ", ..."
        count = f"{len(times)} pulse{'s' if len(times) != 1 else ''}"
        detail = f" ({count}: {stamps})" if times else " (no pulses)"
        lines.append(f"{name:<{name_width}} {''.join(row)}{detail}")
    return "\n".join(lines)
