"""The discrete-event simulator (Section 4.3).

``Simulation.simulate`` runs the Network Relation of Figure 6 over the
working circuit (or an explicit one): a priority heap of pending pulses is
drained one simultaneous group at a time; each group is dispatched to its
destination element; newly fired pulses are pushed back onto the heap until
it is empty or the ``until`` target time is reached (needed for circuits
with feedback loops).

The result is the ``events`` dictionary mapping every named wire to the
ordered list of pulse times that appeared on it — the object the paper's
Section 5.2 dynamic-correctness checks are written against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .circuit import Circuit, working_circuit
from .element import InGen
from .errors import PylseError, SimulationError
from .events import Pulse, PulseHeap
from .functional import Functional
from .node import Node
from .timing import Distribution, VariabilitySpec, sample_delay
from .transitional import Transitional
from .wire import Wire

Events = Dict[str, List[float]]


@dataclass(frozen=True)
class TraceEntry:
    """One dispatch step: a simultaneous pulse group delivered to a node."""

    time: float
    node: str
    cell: str
    ports: Tuple[str, ...]
    state_before: Optional[str]
    state_after: Optional[str]
    fired: Tuple[Tuple[str, float], ...]   # (output port, absolute time)

    def __str__(self) -> str:
        ports = "+".join(self.ports)
        fired = (
            ", ".join(f"{port}@{t:g}" for port, t in self.fired) or "-"
        )
        state = (
            f" [{self.state_before} -> {self.state_after}]"
            if self.state_before is not None
            else ""
        )
        return f"t={self.time:g}: {self.node}({self.cell}) <- {ports}{state} => {fired}"


class Simulation:
    """Discrete-event simulation of a circuit of PyLSE Machines and holes.

    >>> from repro import inp_at, inp, and_s, Simulation
    >>> # ... build circuit ...
    >>> sim = Simulation()
    >>> events = sim.simulate()
    >>> print(sim.plot())           # ASCII waveform  # doctest: +SKIP
    """

    def __init__(self, circuit: Optional[Circuit] = None):
        self.circuit = circuit if circuit is not None else working_circuit()
        self.events: Events = {}
        self.until: Optional[float] = None
        self.pulses_processed: int = 0
        #: node name -> (input pulses consumed, output pulses emitted);
        #: filled during simulate() and consumed by repro.core.energy.
        self.activity: Dict[str, List[int]] = {}
        #: dispatch-level trace, filled when simulate(record=True).
        self.trace: List[TraceEntry] = []

    # ------------------------------------------------------------------
    def simulate(
        self,
        until: Optional[float] = None,
        variability: Union[bool, dict, Callable[[float, Node], float]] = False,
        seed: Optional[int] = None,
        record: bool = False,
        max_pulses: Optional[int] = 1_000_000,
    ) -> Events:
        """Run the circuit until the heap drains or ``until`` is reached.

        ``variability`` adds Gaussian noise to firing delays (Section 5.2):
        ``True`` for all cells, a dict selecting ``cell_types`` /
        ``instances`` and the noise magnitude, or a callable
        ``f(delay, node) -> delay`` for full control. ``seed`` makes both
        variability and nondeterministic priority tie-breaks reproducible.
        ``record=True`` keeps a dispatch-level trace in ``self.trace`` (one
        :class:`TraceEntry` per simultaneous pulse group, with machine
        states before/after) — the debugging view of the Network Relation.
        ``max_pulses`` (default one million) guards against unbounded
        feedback loops simulated without an ``until`` horizon; pass None to
        disable.
        """
        circuit = self.circuit
        circuit.validate()
        circuit.reset_elements()
        spec = VariabilitySpec.normalize(variability, seed)
        rng = random.Random(seed)
        tie_rng = random.Random(rng.random()) if seed is not None else None
        for node in circuit.cells():
            if isinstance(node.element, Transitional):
                node.element.set_dispatch_rng(tie_rng)

        events: Events = {self._label(w): [] for w in circuit.wires}
        heap = PulseHeap()
        self.pulses_processed = 0
        self.until = until
        self.activity = {node.name: [0, 0] for node in circuit.cells()}
        self.trace = []

        def emit(wire: Wire, time: float) -> None:
            events[self._label(wire)].append(time)
            dest = circuit.dest_of.get(wire)
            if dest is not None:
                node, port = dest
                heap.push(Pulse(time, node, port))

        for node in circuit.input_nodes():
            out_wire = node.output_wires["out"]
            for t in node.element.times:  # type: ignore[attr-defined]
                emit(out_wire, t)

        while heap:
            node, ports, time = heap.pop_simultaneous()
            if until is not None and time > until:
                break
            if max_pulses is not None and self.pulses_processed >= max_pulses:
                raise SimulationError(
                    f"Simulation exceeded {max_pulses} pulses at t={time:g} "
                    "without draining; a feedback loop probably needs an "
                    "'until' horizon (or raise max_pulses)"
                )
            self.pulses_processed += len(ports)
            state_before = (
                node.element.state
                if record and isinstance(node.element, Transitional)
                else None
            )
            firings = self._deliver(node, ports, time)
            counts = self.activity[node.name]
            counts[0] += len(ports)
            counts[1] += len(firings)
            emitted: List[Tuple[str, float]] = []
            for out_port, delay in firings:
                resolved = self._resolve_delay(delay, node, spec, rng)
                emitted.append((out_port, time + resolved))
                emit(node.output_wires[out_port], time + resolved)
            if record:
                state_after = (
                    node.element.state
                    if isinstance(node.element, Transitional)
                    else None
                )
                self.trace.append(
                    TraceEntry(
                        time=time,
                        node=node.name,
                        cell=node.element.name,
                        ports=tuple(ports),
                        state_before=state_before,
                        state_after=state_after,
                        fired=tuple(emitted),
                    )
                )

        for series in events.values():
            series.sort()
        self.events = events
        return events

    # ------------------------------------------------------------------
    def _deliver(self, node: Node, ports: Sequence[str], time: float):
        """Send a simultaneous pulse group to a node, with error context."""
        element = node.element
        try:
            if isinstance(element, (Transitional, Functional)):
                return element.raw_firings(ports, time)
            return element.handle_inputs(ports, time)
        except SimulationError as err:
            first_out = next(iter(node.output_wires.values()), None)
            where = f"'{first_out.name}'" if first_out is not None else "(no output)"
            inputs = ", ".join(f"'{p}'" for p in ports)
            raise type(err)(
                f"Error while sending input(s) {inputs} to the node with output "
                f"wire {where}:\n{err}"
            ) from None

    def _resolve_delay(
        self,
        delay,
        node: Node,
        spec: VariabilitySpec,
        rng: random.Random,
    ) -> float:
        value = sample_delay(delay, rng)
        if not isinstance(delay, Distribution) and spec.applies_to(
            node.element.name, node.name
        ):
            value = spec.perturb(value, node)
        if value < 0:
            raise PylseError(f"Resolved firing delay is negative: {value}")
        return value

    @staticmethod
    def _label(wire: Wire) -> str:
        return wire.observed_as

    # ------------------------------------------------------------------
    def render_trace(self) -> str:
        """The recorded dispatch trace as text (one line per group)."""
        if not self.trace:
            raise PylseError(
                "No trace recorded: run simulate(record=True) first"
            )
        return "\n".join(str(entry) for entry in self.trace)

    def plot(self, width: int = 72, file=None) -> str:
        """Render the last simulation's pulses as an ASCII waveform.

        Each named wire gets a row; ``|`` marks a pulse. The rendering is
        returned and also printed to ``file`` (stdout by default) to match
        the paper's ``sim.plot()`` usage. (The paper uses matplotlib — see
        DESIGN.md; an optional matplotlib backend is used if importable.)
        """
        if not self.events:
            raise PylseError("Nothing to plot: run simulate() first")
        rendering = render_waveforms(self.events, width=width)
        print(rendering, file=file)
        self._try_matplotlib()
        return rendering

    def _try_matplotlib(self) -> None:
        try:
            from . import plot as _plot

            _plot.matplotlib_plot(self.events)
        except Exception:
            pass


def render_waveforms(events: Events, width: int = 72) -> str:
    """Draw pulse trains as fixed-width ASCII art.

    Each wire is one row; ``|`` marks a pulse, positioned proportionally to
    its time within the simulation span, with the pulse times listed after.
    """
    interesting = {k: v for k, v in events.items()}
    max_time = max((ts[-1] for ts in interesting.values() if ts), default=0.0)
    span = max(max_time, 1e-9)
    name_width = max((len(k) for k in interesting), default=4)
    lines = []
    for name in interesting:
        times = interesting[name]
        row = ["_"] * width
        for t in times:
            col = min(width - 1, int(t / span * (width - 1)))
            row[col] = "|"
        stamps = ", ".join(f"{t:g}" for t in times[:8])
        if len(times) > 8:
            stamps += ", ..."
        count = f"{len(times)} pulse{'s' if len(times) != 1 else ''}"
        detail = f" ({count}: {stamps})" if times else " (no pulses)"
        lines.append(f"{name:<{name_width}} {''.join(row)}{detail}")
    return "\n".join(lines)
