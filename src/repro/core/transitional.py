"""The Cell Definition level: ``Transitional`` elements (Section 4.1).

An SCE cell is modeled as a class implementing :class:`Transitional`, giving
input/output names and a list of transitions as class attributes. Each
transition is a Python dictionary matching Figure 4's anatomy::

    {'src': 'idle', 'trigger': 'clk', 'dst': 'idle',
     'transition_time': 3.0,               # tau_tran (hold time)
     'firing': 'q',                        # outputs emitted (tau_fire below)
     'past_constraints': {'*': 2.8},       # tau_dist (setup time)
     'priority': 0}                        # optional; defaults to list order

``trigger`` may be a single input or a list of inputs (expanded into one
transition each). ``firing`` may be an output name, a list of names (delays
taken from the cell's ``firing_delay``), or a dict mapping outputs to
explicit delays. ``past_constraints`` may be a number (meaning ``'*'``) or a
dict keyed by input names and/or ``'*'``.

Class-level parsing performs the Section 4.2 well-formedness checks and
builds an immutable :class:`~repro.core.machine.PylseMachine`; instances act
as stateful circuit elements around a current configuration.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .element import Element, Firing
from .errors import WellFormednessError
from .machine import Configuration, PylseMachine, Transition
from .timing import DelayLike, nominal_delay

_TRANSITION_FIELDS = {
    "src",
    "source",
    "trigger",
    "dst",
    "dest",
    "transition_time",
    "firing",
    "past_constraints",
    "priority",
}

RawTransition = Mapping[str, object]
FiringDelaySpec = Union[DelayLike, Mapping[str, DelayLike], None]


def _resolve_firing(
    cls_name: str,
    index: int,
    firing: object,
    outputs: Sequence[str],
    firing_delay: FiringDelaySpec,
) -> Dict[str, DelayLike]:
    """Normalize a transition's ``firing`` field into ``{output: delay}``."""

    def default_delay(out: str) -> DelayLike:
        if firing_delay is None:
            raise WellFormednessError(
                f"{cls_name}: transition {index} fires {out!r} but the cell "
                "defines no 'firing_delay' and the transition gives no "
                "explicit delay"
            )
        if isinstance(firing_delay, Mapping):
            try:
                return firing_delay[out]
            except KeyError:
                raise WellFormednessError(
                    f"{cls_name}: 'firing_delay' dict has no entry for output "
                    f"{out!r}"
                ) from None
        return firing_delay

    if firing is None:
        return {}
    if isinstance(firing, str):
        return {firing: default_delay(firing)}
    if isinstance(firing, Mapping):
        return dict(firing)
    if isinstance(firing, (list, tuple, set, frozenset)):
        result: Dict[str, DelayLike] = {}
        for out in firing:
            if not isinstance(out, str):
                raise WellFormednessError(
                    f"{cls_name}: transition {index} 'firing' list must contain "
                    f"output names, got {out!r}"
                )
            result[out] = default_delay(out)
        return result
    raise WellFormednessError(
        f"{cls_name}: transition {index} has invalid 'firing' value {firing!r}; "
        "expected an output name, list of names, or dict of name -> delay"
    )


def _resolve_past_constraints(
    cls_name: str, index: int, constraints: object
) -> Dict[str, float]:
    if constraints is None:
        return {}
    if isinstance(constraints, (int, float)):
        return {"*": float(constraints)}
    if isinstance(constraints, Mapping):
        result = {}
        for sym, dist in constraints.items():
            if not isinstance(sym, str):
                raise WellFormednessError(
                    f"{cls_name}: transition {index} 'past_constraints' keys must "
                    f"be input names or '*', got {sym!r}"
                )
            if not isinstance(dist, (int, float)):
                raise WellFormednessError(
                    f"{cls_name}: transition {index} 'past_constraints' value for "
                    f"{sym!r} must be a number, got {dist!r}"
                )
            result[sym] = float(dist)
        return result
    raise WellFormednessError(
        f"{cls_name}: transition {index} has invalid 'past_constraints' "
        f"{constraints!r}; expected a number or a dict"
    )


def parse_transitions(
    cls_name: str,
    outputs: Sequence[str],
    raw_transitions: Sequence[RawTransition],
    firing_delay: FiringDelaySpec = None,
    transition_time_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
) -> List[Transition]:
    """Expand and normalize the user's transition dictionaries.

    Returns the flat list of :class:`Transition` objects ready to build a
    :class:`PylseMachine`. ``transition_time_overrides`` maps
    ``(src, trigger)`` pairs to replacement transition times (the
    per-instance override mechanism of Section 4.1).
    """
    if not isinstance(raw_transitions, (list, tuple)):
        raise WellFormednessError(
            f"{cls_name}: 'transitions' must be a list of dicts"
        )
    overrides = dict(transition_time_overrides or {})
    parsed: List[Transition] = []
    for raw_index, raw in enumerate(raw_transitions):
        if not isinstance(raw, Mapping):
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} must be a dict, got "
                f"{type(raw).__name__}"
            )
        unknown = set(raw) - _TRANSITION_FIELDS
        if unknown:
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} has unrecognized field(s) "
                f"{sorted(unknown)}; recognized fields are "
                f"{sorted(_TRANSITION_FIELDS)}"
            )
        if "src" in raw and "source" in raw or "dst" in raw and "dest" in raw:
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} gives both long and short "
                "forms of src/dst"
            )
        src = raw.get("src", raw.get("source"))
        dst = raw.get("dst", raw.get("dest"))
        trigger = raw.get("trigger")
        if not isinstance(src, str) or not isinstance(dst, str):
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} needs string 'src' and 'dst'"
            )
        if trigger is None:
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} is missing its 'trigger'"
            )
        triggers = [trigger] if isinstance(trigger, str) else list(trigger)
        if not triggers:
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} has an empty trigger list"
            )
        priority = raw.get("priority", raw_index)
        if not isinstance(priority, int) or priority < 0:
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} priority must be a "
                f"non-negative integer, got {priority!r}"
            )
        transition_time = raw.get("transition_time", 0.0)
        if not isinstance(transition_time, (int, float)):
            raise WellFormednessError(
                f"{cls_name}: transition {raw_index} 'transition_time' must be a "
                f"number, got {transition_time!r}"
            )
        firing = _resolve_firing(
            cls_name, raw_index, raw.get("firing"), outputs, firing_delay
        )
        constraints = _resolve_past_constraints(
            cls_name, raw_index, raw.get("past_constraints")
        )
        for trig in triggers:
            if not isinstance(trig, str):
                raise WellFormednessError(
                    f"{cls_name}: transition {raw_index} trigger list must "
                    f"contain input names, got {trig!r}"
                )
            tt = overrides.get((src, trig), float(transition_time))
            parsed.append(
                Transition(
                    id=len(parsed),
                    source=src,
                    trigger=trig,
                    dest=dst,
                    priority=priority,
                    transition_time=tt,
                    firing=firing,
                    past_constraints=constraints,
                )
            )
    return parsed


class Transitional(Element):
    """Base class for cells defined as PyLSE Machines.

    Subclasses set class attributes ``name``, ``inputs``, ``outputs``, and
    ``transitions`` (the raw dict form above), plus optionally
    ``firing_delay``. Instances are stateful circuit elements; the shared,
    validated :class:`PylseMachine` is built once per class (or per instance
    when timing overrides are supplied).

    Per-instance keyword overrides (Section 4.1, Full-Circuit level):

    * ``firing_delay=`` — scalar, distribution, or ``{output: delay}`` dict;
    * ``transition_time=`` — ``{(src, trigger): time}`` dict;
    * ``name_override=`` — a different cell-type label for this instance.
    """

    #: Required class attributes (checked on first instantiation).
    name: str
    inputs: Sequence[str]
    outputs: Sequence[str]
    transitions: Sequence[RawTransition]
    firing_delay: FiringDelaySpec = None

    _machine_cache: Optional[PylseMachine] = None

    def __init__(
        self,
        firing_delay: FiringDelaySpec = None,
        transition_time: Optional[Mapping[Tuple[str, str], float]] = None,
        name_override: Optional[str] = None,
        **extra,
    ):
        if extra:
            raise WellFormednessError(
                f"{type(self).__name__}: unknown instantiation option(s) "
                f"{sorted(extra)}"
            )
        self._check_class_attrs()
        if name_override is not None:
            self.name = name_override
        self.validate_ports()
        #: Creation-time overrides, kept verbatim for serialization.
        self.overrides: Dict[str, object] = {}
        if firing_delay is not None:
            self.overrides["firing_delay"] = firing_delay
        if transition_time is not None:
            self.overrides["transition_time"] = dict(transition_time)
        if name_override is not None:
            self.overrides["name_override"] = name_override
        overridden = firing_delay is not None or transition_time is not None
        if overridden:
            delay_spec = (
                firing_delay if firing_delay is not None else type(self).firing_delay
            )
            self.machine = self._build_machine(delay_spec, transition_time)
        else:
            self.machine = self._class_machine()
        self._rng: Optional[random.Random] = None
        #: When not None, ``_step_fast`` appends the label of every taken
        #: transition here; the simulator drains it per dispatch group when
        #: an observer (:mod:`repro.obs`) is attached. ``None`` (the default)
        #: keeps the hot path at a single local None-check per step.
        self._transition_log: Optional[List[str]] = None
        # Mutable configuration mirror (state, tau_done, theta): the formal
        # semantics is immutable Configurations (machine.step), but a placed
        # element steps many thousands of times per simulation, so the
        # instance keeps its configuration as plain mutable fields and only
        # materializes a Configuration on demand.
        self._state: str = self.machine.initial
        self._tau_done: float = 0.0
        self._theta: Dict[str, float] = self.machine._init_theta.copy()

    # ------------------------------------------------------------------
    # machine construction
    # ------------------------------------------------------------------
    def _check_class_attrs(self) -> None:
        for attr in ("name", "inputs", "outputs", "transitions"):
            if not hasattr(type(self), attr) or getattr(type(self), attr) is None:
                raise WellFormednessError(
                    f"{type(self).__name__}: Transitional subclasses must define "
                    f"the {attr!r} class attribute"
                )

    @classmethod
    def _build_machine_for_class(cls) -> PylseMachine:
        parsed = parse_transitions(
            cls.__name__, cls.outputs, cls.transitions, cls.firing_delay
        )
        return PylseMachine(
            name=cls.name,
            inputs=cls.inputs,
            outputs=cls.outputs,
            transitions=parsed,
        )

    @classmethod
    def _class_machine(cls) -> PylseMachine:
        if cls.__dict__.get("_machine_cache") is None:
            cls._machine_cache = cls._build_machine_for_class()
        return cls._machine_cache  # type: ignore[return-value]

    def _build_machine(
        self,
        firing_delay: FiringDelaySpec,
        transition_time: Optional[Mapping[Tuple[str, str], float]],
    ) -> PylseMachine:
        parsed = parse_transitions(
            type(self).__name__,
            self.outputs,
            self.transitions,
            firing_delay,
            transition_time,
        )
        return PylseMachine(
            name=self.name,
            inputs=self.inputs,
            outputs=self.outputs,
            transitions=parsed,
        )

    # ------------------------------------------------------------------
    # Element protocol
    # ------------------------------------------------------------------
    @property
    def configuration(self) -> Configuration:
        """The current ``<q, tau_done, Theta>`` configuration."""
        return Configuration(
            state=self._state,
            tau_done=self._tau_done,
            theta=dict(self._theta),
        )

    @property
    def state(self) -> str:
        return self._state

    def reset(self) -> None:
        self._state = self.machine.initial
        self._tau_done = 0.0
        self._theta = self.machine._init_theta.copy()

    def set_dispatch_rng(self, rng: Optional[random.Random]) -> None:
        """Install a random source for nondeterministic priority ties."""
        self._rng = rng

    def set_transition_log(self, log: Optional[List[str]]) -> None:
        """Attach (or detach, with ``None``) a taken-transition label log."""
        self._transition_log = log

    def handle_inputs(self, active: Sequence[str], time: float) -> List[Firing]:
        """Dispatch a simultaneous input set, mutating the configuration.

        Returns raw ``(output, firing delay)`` pairs; the simulator converts
        them to absolute pulse times (applying variability if enabled).
        """
        return [
            (out, nominal_delay(delay))
            for out, delay in self.raw_firings(active, time)
        ]

    def _step_fast(self, symbol: str, time: float):
        """One transition via the machine's precomputed dispatch table.

        Mutates the instance configuration in place and returns the fired
        ``(output, delay)`` tuple. Timing violations are re-raised through
        :meth:`PylseMachine.step` so the error messages stay canonical.
        """
        entry = self.machine._fast.get((self._state, symbol))
        if entry is None:
            self.machine.delta(self._state, symbol)  # raises PylseError
        dest, transition_time, firing, constraints, _transition, label = entry
        theta = self._theta
        if time < self._tau_done:
            self.machine.step(self.configuration, symbol, time)
        for constrained, tau_dist in constraints:
            if time < theta[constrained] + tau_dist:
                self.machine.step(self.configuration, symbol, time)
        log = self._transition_log
        if log is not None:
            log.append(label)
        theta[symbol] = time
        self._state = dest
        self._tau_done = transition_time + time
        return firing

    def raw_firings(self, active: Sequence[str], time: float) -> List[Tuple[str, DelayLike]]:
        """Like :meth:`handle_inputs` but keeps distribution-valued delays."""
        if len(active) == 1:
            return list(self._step_fast(active[0], time))
        remaining = set(active)
        outs: List[Tuple[str, DelayLike]] = []
        while remaining:
            if len(remaining) == 1:
                symbol = remaining.pop()
            else:
                symbol = self.machine.choose(
                    self._state, frozenset(remaining), self._rng
                )
                remaining.discard(symbol)
            outs.extend(self._step_fast(symbol, time))
        return outs

    def __repr__(self) -> str:
        return f"{type(self).__name__}(state={self._state!r})"
