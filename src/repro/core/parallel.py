"""Parallel Monte-Carlo execution: a seed-sharded process-pool backend.

Section 5.2's yield sweeps re-run the same design once per seed; every run
is independent, so the sweep shards its seed list into contiguous chunks
and farms them out to a ``concurrent.futures`` process pool. Each worker
elaborates a *fresh* circuit per seed via the caller's ``CircuitFactory``
(element state and instance naming are per-circuit, so nothing is shared),
classifies the run, and sends back one outcome token per seed.

Determinism contract: chunks are contiguous slices of the caller's seed
list and results are merged back in chunk order, so the outcome sequence —
and therefore every :class:`~repro.core.montecarlo.YieldResult` field,
including the insertion order of the ``failures`` dict — is bit-identical
to running the same seed list sequentially. The sequential path in
:mod:`repro.core.montecarlo` stays the reference implementation
(``workers=1``).

Process pools pickle their tasks, so ``factory`` and ``predicate`` must be
module-level callables (or otherwise picklable objects); lambdas and
closures are rejected up front with a clear error instead of a mid-pool
traceback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from .errors import PylseError, SimulationError
from .simulation import Events, Simulation

if TYPE_CHECKING:  # layering: core never imports repro.obs at runtime
    from ..obs.metrics import SimMetrics

#: Outcome tokens, one per seed. ``OK`` counts toward yield; the other two
#: are recorded in ``YieldResult.failures``.
OK = "ok"
MIS_BEHAVED = "mis-behaved"
VIOLATION = "violation"


def classify_seed(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seed: int,
) -> str:
    """One Monte-Carlo trial: build, simulate under noise, judge.

    This is the unit of work shared by the sequential and parallel
    backends, which is what makes their results definitionally identical.
    """
    circuit = factory()
    try:
        events = Simulation(circuit).simulate(
            variability={"stddev": sigma}, seed=seed
        )
    except SimulationError:
        return VIOLATION
    return OK if predicate(events) else MIS_BEHAVED


def run_chunk(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> List[str]:
    """Classify a contiguous chunk of seeds (the per-worker task)."""
    return [classify_seed(factory, predicate, sigma, seed) for seed in seeds]


def classify_seed_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seed: int,
) -> Tuple[str, "SimMetrics"]:
    """:func:`classify_seed` plus this run's per-cell metrics.

    A fresh metrics-only observer (provenance would grow a graph per run
    for nothing) rides along on the simulation; its ``SimMetrics`` is
    returned even when the run ends in a timing violation, so violation
    counts and the partial activity leading up to the failure are kept.
    """
    from ..obs import Observer

    observer = Observer(provenance=False, metrics=True)
    circuit = factory()
    try:
        events = Simulation(circuit).simulate(
            variability={"stddev": sigma}, seed=seed, observer=observer
        )
    except SimulationError:
        return VIOLATION, observer.metrics
    outcome = OK if predicate(events) else MIS_BEHAVED
    return outcome, observer.metrics


def run_chunk_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> Tuple[List[str], List["SimMetrics"]]:
    """Stats-collecting per-worker task: outcomes plus *per-seed* metrics.

    Metrics are deliberately not pre-merged inside the chunk: histogram
    totals are float sums, so the merge association order matters for
    bit-determinism. Shipping one ``SimMetrics`` per seed lets the parent
    fold them in seed order — the same association the sequential backend
    uses (see :func:`merge_stats`).
    """
    outcomes: List[str] = []
    stats: List["SimMetrics"] = []
    for seed in seeds:
        outcome, metrics = classify_seed_stats(factory, predicate, sigma, seed)
        outcomes.append(outcome)
        stats.append(metrics)
    return outcomes, stats


def merge_stats(stats: Sequence["SimMetrics"]) -> Optional["SimMetrics"]:
    """Fold per-run metrics left-to-right into the first one (or None).

    Both Monte-Carlo backends aggregate through this helper, in seed
    order, which is what makes parallel stats bit-identical to sequential
    ones.
    """
    merged: Optional["SimMetrics"] = None
    for metrics in stats:
        if merged is None:
            merged = metrics
        else:
            merged.merge(metrics)
    return merged


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` argument to a concrete positive count.

    ``None`` or ``0`` means "one per available CPU"; negative counts are
    rejected.
    """
    if workers is None or workers == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # platforms without affinity support
            return max(1, os.cpu_count() or 1)
    if not isinstance(workers, int) or workers < 0:
        raise PylseError(
            f"workers must be a non-negative integer or None, got {workers!r}"
        )
    return workers


def chunk_seeds(seeds: Sequence[int], chunks: int) -> List[Sequence[int]]:
    """Split ``seeds`` into at most ``chunks`` contiguous, near-equal slices.

    Contiguity is what keeps the merged outcome order identical to the
    sequential backend's.
    """
    if chunks < 1:
        raise PylseError(f"chunk count must be >= 1, got {chunks}")
    n = len(seeds)
    chunks = min(chunks, n) or 1
    size, extra = divmod(n, chunks)
    out: List[Sequence[int]] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < extra else 0)
        out.append(seeds[start:stop])
        start = stop
    return out


def _require_picklable(factory, predicate) -> None:
    try:
        pickle.dumps((factory, predicate))
    except Exception as err:
        raise PylseError(
            "Parallel Monte-Carlo needs a picklable factory and predicate "
            "(module-level functions, not lambdas or closures) so they can "
            f"be shipped to worker processes; pickling failed with: {err}"
        ) from None


def run_seeds_parallel(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    workers: int,
    chunks_per_worker: int = 1,
) -> List[str]:
    """Classify every seed using a process pool; outcomes in seed order.

    ``chunks_per_worker > 1`` trades merge determinism for nothing (order
    is preserved either way) but improves load balance when per-seed cost
    varies, e.g. when some seeds hit early timing violations.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    _require_picklable(factory, predicate)
    chunks = chunk_seeds(seeds, workers * max(1, chunks_per_worker))
    outcomes: List[str] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_chunk, factory, predicate, sigma, chunk)
            for chunk in chunks
        ]
        for future in futures:  # submission order == seed order
            outcomes.extend(future.result())
    return outcomes


def run_seeds_parallel_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    workers: int,
    chunks_per_worker: int = 1,
) -> Tuple[List[str], Optional["SimMetrics"]]:
    """:func:`run_seeds_parallel` that also aggregates per-cell metrics.

    Workers return one ``SimMetrics`` per seed; the parent folds them in
    seed order via :func:`merge_stats`, so the aggregate is bit-identical
    to ``workers=1`` for the same seed list. Returns ``(outcomes,
    merged_stats)``; stats is None for an empty seed list.
    """
    seeds = list(seeds)
    if not seeds:
        return [], None
    _require_picklable(factory, predicate)
    chunks = chunk_seeds(seeds, workers * max(1, chunks_per_worker))
    outcomes: List[str] = []
    per_seed: List["SimMetrics"] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_chunk_stats, factory, predicate, sigma, chunk)
            for chunk in chunks
        ]
        for future in futures:  # submission order == seed order
            chunk_outcomes, chunk_stats = future.result()
            outcomes.extend(chunk_outcomes)
            per_seed.extend(chunk_stats)
    return outcomes, merge_stats(per_seed)
