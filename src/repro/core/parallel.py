"""Parallel Monte-Carlo execution: a persistent seed-sharded worker pool.

Section 5.2's yield sweeps re-run the same design once per seed; every run
is independent, so the sweep shards its seed list into contiguous chunks
and farms them out to a ``concurrent.futures`` process pool.

The pool lives inside a :class:`YieldEngine`, which is built to be
*reused*: one ``ProcessPoolExecutor`` is created lazily on the first
parallel run and kept warm across every subsequent ``measure_yield`` /
``yield_curve`` / ``critical_sigma`` call that uses the same engine (the
module-level :func:`default_engine` cache, keyed by worker count, makes
this automatic). Re-creating a pool per call — the pre-engine design —
made 200-seed sweeps *slower* than sequential on multi-core hosts because
interpreter spawn plus per-chunk pickling of the circuit factory swamped
the simulation work.

Three further costs are amortized away:

* ``factory`` and ``predicate`` are shipped to each worker **once**, via
  the pool ``initializer``, instead of being pickled into every chunk;
* each worker elaborates the circuit **once** and re-simulates it per
  seed through the :meth:`~repro.core.simulation.Simulation.reset` hook
  (element state is per-run, so a reset run is bit-identical to a fresh
  elaboration — ``tests/test_determinism.py`` locks this);
* an adaptive serial fallback runs small sweeps in-process when the
  estimated work (seeds x a per-task calibrated per-seed cost) cannot
  amortize pool overhead, so parallel mode is never a pessimization.

Robustness: a worker crash (``BrokenProcessPool``) triggers a loud
warning, one retry on a fresh pool, and — if that also fails — graceful
degradation to the sequential reference path for the remaining chunks
(and for subsequent calls on the same engine).

Determinism contract: chunks are contiguous slices of the caller's seed
list and results are merged back in chunk order, so the outcome sequence —
and therefore every :class:`~repro.core.montecarlo.YieldResult` field,
including the insertion order of the ``failures`` dict — is bit-identical
to running the same seed list sequentially, on every backend path
(warm pool, cold pool, calibration prefix, serial fallback, crash
degradation). The sequential path in :mod:`repro.core.montecarlo` stays
the reference implementation (``workers=1``).

Process pools pickle their tasks, so ``factory`` and ``predicate`` must be
module-level callables (or otherwise picklable objects); lambdas and
closures are rejected up front with a clear error instead of a mid-pool
traceback.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .batchsim import (
    MIS_BEHAVED,
    OK,
    VIOLATION,
    BatchReport,
    batch_eligible,
    run_batch,
)
from .errors import PylseError, SimulationError
from .ir import compile_circuit
from .simulation import Events, Simulation

if TYPE_CHECKING:  # layering: core never imports repro.obs at runtime
    from ..obs.metrics import SimMetrics


def mc_variability(circuit, sigma: float) -> dict:
    """The ``variability`` argument every Monte-Carlo backend passes.

    Batch-eligible designs (see :func:`repro.core.batchsim.batch_eligible`)
    get the counter noise scheme — the per-(seed, node) streams the
    vectorized drain consumes — so batched, per-seed, pooled, and serial
    sweeps all draw identical noise for identical seeds and stay mutually
    bit-identical. Ineligible designs keep the original python-rng scheme
    on every backend.
    """
    if batch_eligible(compile_circuit(circuit)):
        return {"stddev": sigma, "scheme": "counter"}
    return {"stddev": sigma}


def classify_seed(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seed: int,
) -> str:
    """One Monte-Carlo trial: build, simulate under noise, judge.

    This is the unit of work shared by the sequential and parallel
    backends, which is what makes their results definitionally identical.
    """
    circuit = factory()
    try:
        events = Simulation(circuit).simulate(
            variability=mc_variability(circuit, sigma), seed=seed
        )
    except SimulationError:
        return VIOLATION
    return OK if predicate(events) else MIS_BEHAVED


def run_chunk(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> List[str]:
    """Classify a contiguous chunk of seeds (the reference per-chunk task)."""
    return [classify_seed(factory, predicate, sigma, seed) for seed in seeds]


def classify_seed_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seed: int,
) -> Tuple[str, "SimMetrics"]:
    """:func:`classify_seed` plus this run's per-cell metrics.

    A fresh metrics-only observer (provenance would grow a graph per run
    for nothing) rides along on the simulation; its ``SimMetrics`` is
    returned even when the run ends in a timing violation, so violation
    counts and the partial activity leading up to the failure are kept.
    """
    from ..obs import Observer

    observer = Observer(provenance=False, metrics=True)
    circuit = factory()
    try:
        events = Simulation(circuit).simulate(
            variability=mc_variability(circuit, sigma), seed=seed,
            observer=observer,
        )
    except SimulationError:
        return VIOLATION, observer.metrics
    outcome = OK if predicate(events) else MIS_BEHAVED
    return outcome, observer.metrics


def run_chunk_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> Tuple[List[str], List["SimMetrics"]]:
    """Stats-collecting reference chunk task: outcomes plus *per-seed* metrics.

    Metrics are deliberately not pre-merged inside the chunk: histogram
    totals are float sums, so the merge association order matters for
    bit-determinism. Shipping one ``SimMetrics`` per seed lets the parent
    fold them in seed order — the same association the sequential backend
    uses (see :func:`merge_stats`).
    """
    outcomes: List[str] = []
    stats: List["SimMetrics"] = []
    for seed in seeds:
        outcome, metrics = classify_seed_stats(factory, predicate, sigma, seed)
        outcomes.append(outcome)
        stats.append(metrics)
    return outcomes, stats


def run_chunk_reused(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> List[str]:
    """:func:`run_chunk` that elaborates and compiles the circuit once.

    Each seed re-simulates the same :class:`Simulation` through its
    ``reset`` hook — bit-identical to a fresh ``factory()`` per seed
    (locked by ``tests/test_determinism.py``) while paying elaboration and
    ``compile_circuit`` exactly once per chunk. This is the in-process
    sequential path used by the engine and ``measure_yield(workers=1)``;
    :func:`run_chunk` stays as the definitional reference.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    sim = Simulation(factory())
    variability = mc_variability(sim.circuit, sigma)
    outcomes: List[str] = []
    for seed in seeds:
        sim.reset()
        try:
            events = sim.simulate(variability=variability, seed=seed)
        except SimulationError:
            outcomes.append(VIOLATION)
            continue
        outcomes.append(OK if predicate(events) else MIS_BEHAVED)
    return outcomes


def run_chunk_stats_reused(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
) -> Tuple[List[str], List["SimMetrics"]]:
    """:func:`run_chunk_reused` plus one fresh ``SimMetrics`` per seed."""
    from ..obs import Observer

    seeds = list(seeds)
    if not seeds:
        return [], []
    sim = Simulation(factory())
    variability = mc_variability(sim.circuit, sigma)
    outcomes: List[str] = []
    stats: List["SimMetrics"] = []
    for seed in seeds:
        sim.reset()
        observer = Observer(provenance=False, metrics=True)
        try:
            events = sim.simulate(
                variability=variability, seed=seed, observer=observer
            )
        except SimulationError:
            outcomes.append(VIOLATION)
            stats.append(observer.metrics)
            continue
        outcomes.append(OK if predicate(events) else MIS_BEHAVED)
        stats.append(observer.metrics)
    return outcomes, stats


def run_chunk_batched(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    batch: Union[int, str, None] = None,
) -> Tuple[List[str], BatchReport]:
    """:func:`run_chunk_reused` through the vectorized batched drain.

    Element-wise identical to the per-seed path (divergent lanes replay on
    the reference drain; ``tests/test_differential.py`` locks this) and
    ~an order of magnitude faster on batch-eligible designs. This is the
    ``measure_yield(workers=1)`` production path.
    """
    seeds = list(seeds)
    if not seeds:
        return [], BatchReport()
    sim = Simulation(factory())
    outcomes, _stats, report = run_batch(
        sim, predicate, sigma, seeds, collect_stats=False, batch=batch
    )
    return outcomes, report


def run_chunk_stats_batched(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    batch: Union[int, str, None] = None,
) -> Tuple[List[str], List["SimMetrics"], BatchReport]:
    """:func:`run_chunk_batched` plus one ``SimMetrics`` per seed."""
    seeds = list(seeds)
    if not seeds:
        return [], [], BatchReport()
    sim = Simulation(factory())
    return run_batch(
        sim, predicate, sigma, seeds, collect_stats=True, batch=batch
    )


def merge_stats(stats: Sequence["SimMetrics"]) -> Optional["SimMetrics"]:
    """Fold per-run metrics left-to-right into a fresh aggregate (or None).

    Both Monte-Carlo backends aggregate through this helper, in seed
    order, which is what makes parallel stats bit-identical to sequential
    ones. The fold starts from a zeroed accumulator
    (:meth:`repro.obs.metrics.SimMetrics.fold`) so the caller's per-seed
    metrics objects are never mutated — important now that engine workers
    may be asked to re-ship metrics on a chunk retry.
    """
    items = list(stats)
    if not items:
        return None
    # Dispatch through the instance's class: core stays free of runtime
    # imports of repro.obs (layering), yet the fold lives with SimMetrics.
    return type(items[0]).fold(items)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` argument to a concrete positive count.

    ``None`` or ``0`` means "one per available CPU"; negative counts and
    booleans are rejected (``True`` would otherwise pass the ``int`` check
    and ``False`` would silently mean "one per CPU").
    """
    if isinstance(workers, bool):
        raise PylseError(
            f"workers must be a non-negative integer or None, got {workers!r} "
            "(a bool); use workers=0 or workers=None for one per CPU"
        )
    if workers is None or workers == 0:
        return available_cpus()
    if not isinstance(workers, int) or workers < 0:
        raise PylseError(
            f"workers must be a non-negative integer or None, got {workers!r}"
        )
    return workers


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without affinity support
        return max(1, os.cpu_count() or 1)


def chunk_seeds(seeds: Sequence[int], chunks: int) -> List[Sequence[int]]:
    """Split ``seeds`` into at most ``chunks`` contiguous, near-equal slices.

    Contiguity is what keeps the merged outcome order identical to the
    sequential backend's.
    """
    if chunks < 1:
        raise PylseError(f"chunk count must be >= 1, got {chunks}")
    n = len(seeds)
    chunks = min(chunks, n) or 1
    size, extra = divmod(n, chunks)
    out: List[Sequence[int]] = []
    start = 0
    for index in range(chunks):
        stop = start + size + (1 if index < extra else 0)
        out.append(seeds[start:stop])
        start = stop
    return out


def _require_picklable(factory, predicate) -> None:
    try:
        pickle.dumps((factory, predicate))
    except Exception as err:
        raise PylseError(
            "Parallel Monte-Carlo needs a picklable factory and predicate "
            "(module-level functions, not lambdas or closures) so they can "
            f"be shipped to worker processes; pickling failed with: {err}"
        ) from None


def _check_chunk(
    index: int,
    seeds_chunk: Sequence[int],
    got: int,
    what: str = "outcomes",
) -> None:
    """Refuse short (or long) chunk results instead of mis-attributing them.

    ``zip(seeds, outcomes)`` would silently drop the tail of whichever
    side is shorter, shifting every later outcome onto the wrong seed;
    this names the offending chunk so the failure is diagnosable.
    """
    expected = len(seeds_chunk)
    if got != expected:
        raise PylseError(
            f"parallel Monte-Carlo chunk {index} (seeds "
            f"{seeds_chunk[0]}..{seeds_chunk[-1]}, {expected} seeds) "
            f"returned {got} {what}; refusing to mis-attribute results "
            "to seeds — this indicates a worker bug or truncated result"
        )


def run_seeds_parallel(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    workers: int,
    chunks_per_worker: int = 1,
) -> List[str]:
    """Classify every seed using a throwaway process pool; seed order kept.

    This is the original one-shot backend, kept as the simple reference
    for the pooled path: :class:`YieldEngine` is the production backend
    (persistent pool, initializer-shipped task, adaptive fallback) and is
    what ``measure_yield(..., workers=N)`` uses.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    _require_picklable(factory, predicate)
    chunks = chunk_seeds(seeds, workers * max(1, chunks_per_worker))
    outcomes: List[str] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_chunk, factory, predicate, sigma, chunk)
            for chunk in chunks
        ]
        for index, future in enumerate(futures):  # submission order == seed order
            chunk_outcomes = future.result()
            _check_chunk(index, chunks[index], len(chunk_outcomes))
            outcomes.extend(chunk_outcomes)
    return outcomes


def run_seeds_parallel_stats(
    factory: Callable[[], object],
    predicate: Callable[[Events], bool],
    sigma: float,
    seeds: Sequence[int],
    workers: int,
    chunks_per_worker: int = 1,
) -> Tuple[List[str], Optional["SimMetrics"]]:
    """:func:`run_seeds_parallel` that also aggregates per-cell metrics.

    Workers return one ``SimMetrics`` per seed; the parent folds them in
    seed order via :func:`merge_stats`, so the aggregate is bit-identical
    to ``workers=1`` for the same seed list. Returns ``(outcomes,
    merged_stats)``; stats is None for an empty seed list.
    """
    seeds = list(seeds)
    if not seeds:
        return [], None
    _require_picklable(factory, predicate)
    chunks = chunk_seeds(seeds, workers * max(1, chunks_per_worker))
    outcomes: List[str] = []
    per_seed: List["SimMetrics"] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_chunk_stats, factory, predicate, sigma, chunk)
            for chunk in chunks
        ]
        for index, future in enumerate(futures):  # submission order == seed order
            chunk_outcomes, chunk_stats = future.result()
            _check_chunk(index, chunks[index], len(chunk_outcomes))
            _check_chunk(
                index, chunks[index], len(chunk_stats), what="metrics"
            )
            outcomes.extend(chunk_outcomes)
            per_seed.extend(chunk_stats)
    return outcomes, merge_stats(per_seed)


# ----------------------------------------------------------------------
# The persistent YieldEngine
# ----------------------------------------------------------------------

#: Estimated pool startup cost per worker process (interpreter fork/spawn
#: plus one circuit elaboration in the initializer). Deliberately
#: conservative: over-estimating keeps small sweeps on the serial path,
#: which is the "never slower than sequential" invariant.
POOL_STARTUP_PER_WORKER_S = 0.030

#: Estimated per-call dispatch overhead when the pool is already warm
#: (future plumbing + chunk/result pickling of outcome tokens).
WARM_DISPATCH_OVERHEAD_S = 0.005

#: Required predicted advantage before the pool is chosen: estimated pool
#: time must be below this fraction of the estimated serial time.
PARALLEL_MARGIN = 0.9

#: Weight of the newest per-seed cost sample in the per-task EWMA.
COST_EWMA_WEIGHT = 0.5


class _WorkerContext:
    """Per-worker-process task state, installed by the pool initializer."""

    __slots__ = ("predicate", "circuit", "sim")

    def __init__(self, circuit, predicate):
        self.predicate = predicate
        self.circuit = circuit
        self.sim = Simulation(circuit)


_WORKER_CTX: Optional[_WorkerContext] = None


def _engine_worker_init(init_blob: bytes) -> None:
    """Pool initializer: install the design once per worker process.

    ``init_blob`` is either ``("compiled", CompiledCircuit, predicate)`` —
    the parent elaborated and compiled the design exactly once and ships
    the frozen IR, so workers never re-run the factory or the compile
    pass (the unpickled circuit arrives with its compile memo warm) — or
    the fallback ``("factory", factory, predicate)`` for designs whose
    circuit does not pickle (e.g. closure-bodied holes), where each
    worker elaborates once. Afterwards every chunk task is just
    ``(sigma, seeds)``.
    """
    global _WORKER_CTX
    kind, payload, predicate = pickle.loads(init_blob)
    if kind == "compiled":
        circuit = payload.circuit
    else:
        circuit = payload()  # elaborate once per worker
    _WORKER_CTX = _WorkerContext(circuit, predicate)


def _engine_chunk(
    sigma: float, seeds: Sequence[int], batch: Union[int, str, None] = None
) -> Tuple[List[str], BatchReport]:
    """Classify a chunk against the worker's pre-elaborated circuit.

    Each worker drains its chunk as one (or a few) batched passes —
    multiplicative with the pool parallelism. ``Simulation.reset``
    restores the initial element configuration, so each seed sees exactly
    the state a fresh ``factory()`` circuit would have — the re-simulation
    stability locked by ``tests/test_determinism.py`` plus the batched ==
    sequential property of ``tests/test_differential.py`` is what makes
    this bit-identical to :func:`run_chunk`.
    """
    ctx = _WORKER_CTX
    outcomes, _stats, report = run_batch(
        ctx.sim, ctx.predicate, sigma, seeds, collect_stats=False,
        batch=batch,
    )
    return outcomes, report


def _engine_chunk_stats(
    sigma: float, seeds: Sequence[int], batch: Union[int, str, None] = None
) -> Tuple[List[str], List["SimMetrics"], BatchReport]:
    """:func:`_engine_chunk` plus one fresh ``SimMetrics`` per seed."""
    ctx = _WORKER_CTX
    return run_batch(
        ctx.sim, ctx.predicate, sigma, seeds, collect_stats=True, batch=batch
    )


class YieldEngine:
    """A persistent, reusable parallel Monte-Carlo backend.

    One process pool, created lazily on the first parallel run and kept
    warm for every later call with the same ``(factory, predicate)`` task
    (a different task tears the pool down and builds a fresh one, since
    the task is shipped through the pool initializer). Use as a context
    manager, or rely on the module-level :func:`default_engine` cache —
    ``measure_yield(..., workers=N)`` does the latter automatically::

        with YieldEngine(workers=4) as engine:
            for sigma in sigmas:
                measure_yield(factory, ok, sigma, seeds, engine=engine)

    ``adaptive=True`` (default) calibrates the per-seed cost on the first
    seed of each call (classified in-process, so its outcome is free) and
    falls back to the sequential reference path whenever the estimated
    pool time — startup or dispatch overhead plus work divided by worker
    count — is not comfortably below the estimated serial time. Pass
    ``adaptive=False`` (or ``policy="pool"`` per call) to force the pool.

    Concurrent :meth:`run` calls from different threads serialize on an
    internal lock (one pool, one in-flight sweep at a time), so a single
    engine — in particular the :func:`default_engine` cache — can safely
    be shared by the request-handler threads of :mod:`repro.serve`. The
    observability counters (``last_backend``, ``last_report``) describe
    the most recently *completed* run.

    Counters for observability and tests: ``pools_created``,
    ``fallbacks`` (crash degradations), ``last_backend`` (``"serial"`` /
    ``"pool"`` / ``"degraded"`` for the most recent run), and
    ``last_report`` (the merged :class:`~repro.core.batchsim.BatchReport`
    of the most recent run — batched lane count, replayed seeds, and
    per-cause divergence tallies).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        chunks_per_worker: int = 4,
        min_seeds_parallel: Optional[int] = None,
        adaptive: bool = True,
    ):
        self.workers = resolve_workers(workers)
        if chunks_per_worker < 1:
            raise PylseError(
                f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
            )
        self.chunks_per_worker = chunks_per_worker
        self.min_seeds_parallel = min_seeds_parallel
        self.adaptive = adaptive
        self.pools_created = 0
        self.fallbacks = 0
        self.last_backend: Optional[str] = None
        self.last_report = BatchReport()
        self.parallel_disabled = False
        self.closed = False
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Serializes run() across threads: the pool, the cost model, and
        #: the last_* observability fields are all single-sweep state.
        self._run_lock = threading.RLock()
        self._task_key: Optional[bytes] = None
        self._cost_by_task: Dict[bytes, float] = {}
        #: task blob -> pool-initializer payload (compiled design when the
        #: circuit pickles, factory fallback otherwise), built at most once
        #: per task so repeated runs never re-elaborate in the parent.
        self._init_blob_by_task: Dict[bytes, bytes] = {}

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "YieldEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down and mark the engine unusable.

        Takes the run lock, so a close racing a sweep on another thread
        waits for the sweep to finish instead of killing its pool.
        """
        with self._run_lock:
            self._shutdown_pool()
            self.closed = True

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._task_key = None

    def _ensure_pool(
        self, task_blob: bytes, init_blob: bytes
    ) -> ProcessPoolExecutor:
        if self._pool is not None and self._task_key == task_blob:
            return self._pool
        self._shutdown_pool()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_engine_worker_init,
            initargs=(init_blob,),
        )
        self._task_key = task_blob
        self.pools_created += 1
        return self._pool

    def _task_init_blob(self, factory, predicate, task_blob: bytes) -> bytes:
        """The initializer payload for a task, built (at most) once.

        Prefers shipping the parent-compiled :class:`CompiledCircuit` —
        one elaboration + compile for the whole sweep, with every worker
        receiving the design pre-validated and its compile memo warm.
        Node placement ids are assigned per elaboration, but only their
        *relative* order matters for heap pop ordering, and a pickled
        circuit preserves it — so worker results stay bit-identical to
        the factory path. Falls back to shipping the factory when the
        circuit itself does not pickle.
        """
        blob = self._init_blob_by_task.get(task_blob)
        if blob is None:
            try:
                compiled = compile_circuit(factory())
                blob = pickle.dumps(("compiled", compiled, predicate))
            except Exception:
                blob = pickle.dumps(("factory", factory, predicate))
            self._init_blob_by_task[task_blob] = blob
        return blob

    # -- the run entry point -------------------------------------------
    def run(
        self,
        factory: Callable[[], object],
        predicate: Callable[[Events], bool],
        sigma: float,
        seeds: Sequence[int],
        collect_stats: bool = False,
        policy: Optional[str] = None,
        min_seeds_parallel: Optional[int] = None,
        batch: Union[int, str, None] = None,
    ) -> Tuple[List[str], Optional["SimMetrics"]]:
        """Classify every seed; returns ``(outcomes, merged_stats_or_None)``.

        ``policy`` overrides the adaptive choice for this call:
        ``"pool"`` forces the process pool, ``"serial"`` forces the
        sequential reference path, ``None`` lets the engine decide.
        ``min_seeds_parallel`` overrides the engine-level floor below
        which the pool is never considered. ``batch`` is the batched-drain
        lane width each worker uses per chunk (``None``/``"auto"`` picks
        it, ``0`` disables batching); the run's merged
        :class:`~repro.core.batchsim.BatchReport` lands on
        ``self.last_report``.
        """
        if policy not in (None, "pool", "serial"):
            raise PylseError(
                f"unknown engine policy {policy!r}: expected 'pool', "
                "'serial', or None"
            )
        with self._run_lock:
            if self.closed:
                raise PylseError("YieldEngine is closed; create a new one")
            seeds = list(seeds)
            self.last_report = BatchReport()
            if not seeds:
                return [], None
            if (
                policy == "serial"
                or self.workers <= 1
                or len(seeds) < 2
                or self.parallel_disabled
            ):
                return self._run_serial(factory, predicate, sigma, seeds,
                                        collect_stats, batch)
            # From here on the pool is a possibility: reject unpicklable
            # tasks up front, exactly like the one-shot backend does.
            _require_picklable(factory, predicate)
            task_blob = pickle.dumps((factory, predicate))
            if policy == "pool" or not self.adaptive:
                return self._run_pool(
                    factory, predicate, task_blob, sigma, seeds,
                    collect_stats, batch=batch,
                )
            return self._run_adaptive(
                factory, predicate, task_blob, sigma, seeds, collect_stats,
                min_seeds_parallel, batch,
            )

    # -- backends ------------------------------------------------------
    def _serial_chunk(
        self, factory, predicate, sigma, seeds, collect_stats, batch=None
    ) -> Tuple[List[str], List["SimMetrics"]]:
        """In-process batched classification, timing fed to the cost model."""
        started = time.perf_counter()
        if collect_stats:
            outcomes, per_seed, report = run_chunk_stats_batched(
                factory, predicate, sigma, seeds, batch
            )
        else:
            outcomes, report = run_chunk_batched(
                factory, predicate, sigma, seeds, batch
            )
            per_seed = []
        self.last_report.merge(report)
        if seeds:
            task_blob = (
                pickle.dumps((factory, predicate))
                if _is_picklable(factory, predicate)
                else None
            )
            self._update_cost(
                task_blob, (time.perf_counter() - started) / len(seeds)
            )
        return outcomes, per_seed

    def _run_serial(
        self, factory, predicate, sigma, seeds, collect_stats, batch=None
    ) -> Tuple[List[str], Optional["SimMetrics"]]:
        self.last_backend = "serial"
        outcomes, per_seed = self._serial_chunk(
            factory, predicate, sigma, seeds, collect_stats, batch
        )
        return outcomes, merge_stats(per_seed) if collect_stats else None

    def _run_adaptive(
        self, factory, predicate, task_blob, sigma, seeds, collect_stats,
        min_seeds_parallel, batch=None,
    ) -> Tuple[List[str], Optional["SimMetrics"]]:
        floor = min_seeds_parallel
        if floor is None:
            floor = self.min_seeds_parallel
        if floor is None:
            floor = 2 * self.workers
        if len(seeds) < floor:
            return self._run_serial(factory, predicate, sigma, seeds,
                                    collect_stats, batch)
        # Calibrate on the first seed, in-process. Its outcome (and
        # metrics) are kept, so calibration costs nothing extra and the
        # cost estimate tracks the actual design being swept.
        started = time.perf_counter()
        if collect_stats:
            first_outcome, first_metrics = classify_seed_stats(
                factory, predicate, sigma, seeds[0]
            )
            prefix_stats: List["SimMetrics"] = [first_metrics]
        else:
            first_outcome = classify_seed(factory, predicate, sigma, seeds[0])
            prefix_stats = []
        sample = time.perf_counter() - started
        cost = self._update_cost(task_blob, sample)
        # The calibration seed was classified per-seed, outside any batch:
        # account for it in the report (no divergence cause — nothing
        # diverged, it simply never entered a batch).
        self.last_report.fallback_seeds.append(seeds[0])
        rest = seeds[1:]
        est_serial = cost * len(rest)
        warm = self._pool is not None and self._task_key == task_blob
        overhead = (
            WARM_DISPATCH_OVERHEAD_S
            if warm
            else POOL_STARTUP_PER_WORKER_S * self.workers
        )
        est_pool = overhead + est_serial / self.workers
        if est_pool < est_serial * PARALLEL_MARGIN:
            return self._run_pool(
                factory, predicate, task_blob, sigma, rest, collect_stats,
                prefix_outcomes=[first_outcome], prefix_stats=prefix_stats,
                batch=batch,
            )
        self.last_backend = "serial"
        rest_outcomes, rest_per_seed = self._serial_chunk(
            factory, predicate, sigma, rest, collect_stats, batch
        )
        outcomes = [first_outcome] + rest_outcomes
        if not collect_stats:
            return outcomes, None
        # One fold over the full per-seed list keeps the association
        # order exactly seed order (prefix aggregate + rest aggregate
        # would associate the float sums differently).
        return outcomes, merge_stats(prefix_stats + rest_per_seed)

    def _run_pool(
        self,
        factory,
        predicate,
        task_blob: bytes,
        sigma: float,
        seeds: Sequence[int],
        collect_stats: bool,
        prefix_outcomes: Optional[List[str]] = None,
        prefix_stats: Optional[List["SimMetrics"]] = None,
        batch: Union[int, str, None] = None,
    ) -> Tuple[List[str], Optional["SimMetrics"]]:
        """Pool execution with per-chunk retry-once and crash degradation."""
        self.last_backend = "pool"
        outcomes: List[str] = list(prefix_outcomes or [])
        per_seed: List["SimMetrics"] = list(prefix_stats or [])
        if not seeds:
            return outcomes, merge_stats(per_seed) if collect_stats else None
        chunks = chunk_seeds(seeds, self.workers * self.chunks_per_worker)
        task = _engine_chunk_stats if collect_stats else _engine_chunk
        retried = False
        index = 0
        futures: List = []
        need_submit = True  # (re)submit chunks[index:] before reading results
        while index < len(chunks):
            chunk = chunks[index]
            try:
                # A broken pool surfaces either at submit time (workers
                # already dead) or at result time, so both live under the
                # same failure handling.
                if need_submit:
                    pool = self._ensure_pool(
                        task_blob,
                        self._task_init_blob(factory, predicate, task_blob),
                    )
                    futures[index:] = [
                        pool.submit(task, sigma, c, batch)
                        for c in chunks[index:]
                    ]
                    need_submit = False
                result = futures[index].result()
            except (BrokenProcessPool, OSError, pickle.PicklingError) as err:
                self._shutdown_pool()
                if not retried:
                    retried = True
                    need_submit = True
                    warnings.warn(
                        f"parallel Monte-Carlo worker failure on chunk "
                        f"{index} (seeds {chunk[0]}..{chunk[-1]}): {err!r}; "
                        "retrying once on a fresh pool",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    continue
                # Retry also failed: degrade to the sequential reference
                # path for this and every remaining chunk, and stop trying
                # to parallelize on this engine (the task evidently kills
                # workers; thrashing pools would be worse than serial).
                warnings.warn(
                    f"parallel Monte-Carlo worker failure persisted after "
                    f"retry ({err!r}); degrading to the sequential "
                    "reference path for the remaining "
                    f"{len(chunks) - index} chunk(s) and disabling the "
                    "pool on this engine",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.fallbacks += 1
                self.parallel_disabled = True
                self.last_backend = "degraded"
                for tail in chunks[index:]:
                    if collect_stats:
                        tail_outcomes, tail_stats, tail_report = (
                            run_chunk_stats_batched(
                                factory, predicate, sigma, tail, batch
                            )
                        )
                        per_seed.extend(tail_stats)
                    else:
                        tail_outcomes, tail_report = run_chunk_batched(
                            factory, predicate, sigma, tail, batch
                        )
                    self.last_report.merge(tail_report)
                    outcomes.extend(tail_outcomes)
                break
            if collect_stats:
                chunk_outcomes, chunk_stats, chunk_report = result
                _check_chunk(index, chunk, len(chunk_outcomes))
                _check_chunk(index, chunk, len(chunk_stats), what="metrics")
                per_seed.extend(chunk_stats)
            else:
                chunk_outcomes, chunk_report = result
                _check_chunk(index, chunk, len(chunk_outcomes))
            self.last_report.merge(chunk_report)
            outcomes.extend(chunk_outcomes)
            index += 1
        return outcomes, merge_stats(per_seed) if collect_stats else None

    # -- cost model ----------------------------------------------------
    def _update_cost(self, task_blob: Optional[bytes], sample: float) -> float:
        """Fold a measured per-seed cost into the per-task EWMA."""
        if task_blob is None:
            return sample
        previous = self._cost_by_task.get(task_blob)
        cost = (
            sample
            if previous is None
            else (1 - COST_EWMA_WEIGHT) * previous + COST_EWMA_WEIGHT * sample
        )
        self._cost_by_task[task_blob] = cost
        return cost


def _is_picklable(factory, predicate) -> bool:
    try:
        pickle.dumps((factory, predicate))
    except Exception:
        return False
    return True


# ----------------------------------------------------------------------
# Module-level default engines, keyed by worker count
# ----------------------------------------------------------------------
_DEFAULT_ENGINES: Dict[int, YieldEngine] = {}


def default_engine(workers: Optional[int] = None) -> YieldEngine:
    """The shared, cached engine for a worker count (created on demand).

    ``measure_yield(..., workers=N)`` routes through this cache, so
    repeated calls — a ``yield_curve`` sweep, every ``critical_sigma``
    bisection iteration — reuse one warm pool instead of spawning a pool
    per call. Engines are shut down at interpreter exit.
    """
    count = resolve_workers(workers)
    engine = _DEFAULT_ENGINES.get(count)
    if engine is None or engine.closed:
        engine = _DEFAULT_ENGINES[count] = YieldEngine(count)
    return engine


def shutdown_default_engines() -> None:
    """Close every cached default engine (used by tests and atexit)."""
    for engine in _DEFAULT_ENGINES.values():
        engine.close()
    _DEFAULT_ENGINES.clear()


atexit.register(shutdown_default_engines)


EnginePolicy = Union["YieldEngine", str, None]
