"""The single numpy import point for the whole package.

numpy is a declared core dependency (``pyproject.toml``): the analog
backend, the model-checking DBMs, and the vectorized Monte-Carlo drain
(:mod:`repro.core.batchsim`) all need it. Importing it in exactly one
place means a missing/broken numpy fails with one clear message instead
of a different traceback per subsystem, and grepping for ``from
.._np import np`` finds every consumer.

Usage::

    from repro.core._np import np
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as _err:  # pragma: no cover - depends on environment
    raise ImportError(
        "repro requires numpy (a declared core dependency, see "
        "pyproject.toml [project] dependencies); it is used by the "
        "vectorized Monte-Carlo drain, the analog solver, and the "
        "model-checking DBMs. Install it with: pip install numpy"
    ) from _err

__all__ = ["np"]
