"""The Hole Description level: ``Functional`` elements (Section 4.1).

Holes wrap pure Python in a pulse-communicating interface so abstract
behavioral models can be mixed with transition-based cells ("fostering agile
development"). A hole does *not* follow the formal semantics of Section 3 —
it is called whenever pulses arrive, with a ``1`` for each input port that
pulsed at that instant, a ``0`` for the others, and the current time as the
final argument. Truthy return values produce output pulses after the hole's
firing delay.

Two entry points:

* subclass :class:`Functional`, or
* decorate a plain function with :func:`hole` (Figure 9's memory example).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from .circuit import working_circuit
from .element import Element, Firing
from .errors import HoleError
from .timing import DelayLike, nominal_delay
from .wire import Wire

HoleFn = Callable[..., object]
DelaySpec = Union[DelayLike, Mapping[str, DelayLike]]


class Functional(Element):
    """A non-transition-based element driven by a Python callable.

    Parameters mirror the paper: a callable mapping time-tagged input pulses
    to output pulses, the input and output port names, and the firing delay
    for each output (a single value or an ``{output: delay}`` dict).
    """

    def __init__(
        self,
        func: HoleFn,
        inputs: Sequence[str],
        outputs: Sequence[str],
        delay: DelaySpec,
        name: Optional[str] = None,
    ):
        if not callable(func):
            raise HoleError(f"Functional element needs a callable, got {func!r}")
        if not outputs:
            raise HoleError("Functional element must declare at least one output")
        self.func = func
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.name = name or getattr(func, "__name__", "hole")
        self.validate_ports()
        self.delays: Dict[str, DelayLike] = self._normalize_delays(delay)

    def _normalize_delays(self, delay: DelaySpec) -> Dict[str, DelayLike]:
        if isinstance(delay, Mapping):
            missing = set(self.outputs) - set(delay)
            if missing:
                raise HoleError(
                    f"{self.name}: delay dict is missing output(s) {sorted(missing)}"
                )
            extra = set(delay) - set(self.outputs)
            if extra:
                raise HoleError(
                    f"{self.name}: delay dict names unknown output(s) {sorted(extra)}"
                )
            delays = dict(delay)
        else:
            delays = {out: delay for out in self.outputs}
        for out, d in delays.items():
            if nominal_delay(d) < 0:
                raise HoleError(f"{self.name}: negative delay for output {out!r}")
        return delays

    def handle_inputs(self, active: Sequence[str], time: float) -> List[Firing]:
        args = [1 if port in active else 0 for port in self.inputs]
        result = self.func(*args, time)
        values = self._normalize_result(result)
        return [
            (out, nominal_delay(self.delays[out]))
            for out, value in zip(self.outputs, values)
            if value
        ]

    def raw_firings(self, active: Sequence[str], time: float):
        """Same as handle_inputs but keeps distribution-valued delays."""
        args = [1 if port in active else 0 for port in self.inputs]
        result = self.func(*args, time)
        values = self._normalize_result(result)
        return [
            (out, self.delays[out])
            for out, value in zip(self.outputs, values)
            if value
        ]

    def _normalize_result(self, result: object) -> Sequence[object]:
        if result is None:
            return [0] * len(self.outputs)
        if isinstance(result, (list, tuple)):
            if len(result) != len(self.outputs):
                raise HoleError(
                    f"{self.name}: hole returned {len(result)} value(s) but has "
                    f"{len(self.outputs)} output(s)"
                )
            return result
        if len(self.outputs) != 1:
            raise HoleError(
                f"{self.name}: hole returned a single value but has "
                f"{len(self.outputs)} outputs; return a sequence"
            )
        return [result]

    def __repr__(self) -> str:
        return f"Functional({self.name!r})"


def hole(
    delay: DelaySpec,
    inputs: Sequence[str],
    outputs: Sequence[str],
    name: Optional[str] = None,
) -> Callable[[HoleFn], Callable[..., object]]:
    """Decorator turning a Python function into an instantiable hole.

    The decorated function, when called with input :class:`Wire` objects,
    places a fresh :class:`Functional` node in the working circuit and
    returns its output wire(s) — one wire if there is a single output, a
    tuple otherwise::

        @hole(delay=5.0, inputs=['a', 'b'], outputs=['q'])
        def or_model(a, b, time):
            return a or b

        q = or_model(w1, w2)
    """

    def decorate(func: HoleFn) -> Callable[..., object]:
        def instantiate(*wires: Wire, **overrides):
            if len(wires) != len(inputs):
                raise HoleError(
                    f"{func.__name__}: expected {len(inputs)} input wire(s), "
                    f"got {len(wires)}"
                )
            for w in wires:
                if not isinstance(w, Wire):
                    raise HoleError(
                        f"{func.__name__}: inputs must be Wire objects, got {w!r}"
                    )
            element = Functional(
                func,
                inputs,
                outputs,
                overrides.pop("delay", delay),
                name=name or func.__name__,
            )
            out_names = overrides.pop("names", None)
            if overrides:
                raise HoleError(
                    f"{func.__name__}: unknown option(s) {sorted(overrides)}"
                )
            if out_names is None:
                out_wires = [Wire() for _ in outputs]
            else:
                out_names = (
                    out_names.split() if isinstance(out_names, str) else list(out_names)
                )
                if len(out_names) != len(outputs):
                    raise HoleError(
                        f"{func.__name__}: expected {len(outputs)} output name(s)"
                    )
                out_wires = [Wire(n) for n in out_names]
            working_circuit().add_node(element, list(wires), out_wires)
            if len(out_wires) == 1:
                return out_wires[0]
            return tuple(out_wires)

        instantiate.__name__ = func.__name__
        instantiate.__doc__ = func.__doc__
        instantiate.hole_func = func
        instantiate.hole_inputs = tuple(inputs)
        instantiate.hole_outputs = tuple(outputs)
        return instantiate

    return decorate
